//! A hand-rolled Rust lexer: just enough token structure for the lint rules.
//!
//! The goal is *not* a full grammar — it is to be reliably smarter than grep:
//! string literals (including raw and byte strings), char literals versus
//! lifetimes, nested block comments and line comments are recognized so a
//! banned pattern inside a string or comment never fires, and `#[cfg(test)]`
//! / `#[test]` items are marked so test-only code is exempt from the
//! production-code lints.

/// Token classes the lints care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Single punctuation character.
    Punct,
}

/// One token, with its byte span, source line and test-region flag.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of the token start.
    pub line: u32,
    /// `true` when the token is inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// A `//` line comment (the carrier for `graf-lint: allow(…)` annotations).
#[derive(Clone, Debug)]
pub struct LineComment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Byte span of the comment text (after the `//`).
    pub start: usize,
    /// End of the comment text.
    pub end: usize,
}

/// Lexer output: the token stream plus the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All line comments, in source order.
    pub comments: Vec<LineComment>,
    /// `true` when the file carries an inner `#![cfg(test)]`-style attribute,
    /// making the entire file test-only.
    pub file_is_test: bool,
}

impl Lexed {
    /// The token's text within `src`.
    pub fn text<'s>(&self, src: &'s str, tok: &Token) -> &'s str {
        &src[tok.start..tok.end]
    }
}

/// Strips the `r#` raw-identifier prefix, if present: `r#type` → `type`.
pub fn strip_raw_ident(text: &str) -> &str {
    text.strip_prefix("r#").unwrap_or(text)
}

/// Lexes `src`, marking test regions.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(LineComment { line, start, end: j });
                i = j;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (end, newlines) = skip_raw_string(bytes, i);
                out.tokens.push(tok(TokenKind::Str, i, end, line));
                line += newlines;
                i = end;
            }
            // Raw identifier (`r#type`): one Ident token spanning the prefix,
            // so `r#` never splits into `r` + `#` and confuses attribute and
            // item scanning. Consumers normalize with [`strip_raw_ident`].
            b'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes.get(i + 2).is_some_and(|c| *c == b'_' || c.is_ascii_alphabetic()) =>
            {
                let mut j = i + 3;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(tok(TokenKind::Ident, i, j, line));
                i = j;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let (end, newlines) = skip_quoted(bytes, i + 1, b'"');
                out.tokens.push(tok(TokenKind::Str, i, end, line));
                line += newlines;
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let (end, newlines) = skip_quoted(bytes, i + 1, b'\'');
                out.tokens.push(tok(TokenKind::Char, i, end, line));
                line += newlines;
                i = end;
            }
            b'"' => {
                let (end, newlines) = skip_quoted(bytes, i, b'"');
                out.tokens.push(tok(TokenKind::Str, i, end, line));
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a` not followed by `'`) versus char literal.
                let is_lifetime = match bytes.get(i + 1) {
                    Some(&c) if c == b'_' || c.is_ascii_alphabetic() => {
                        let mut j = i + 2;
                        while j < bytes.len()
                            && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric())
                        {
                            j += 1;
                        }
                        bytes.get(j) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric())
                    {
                        j += 1;
                    }
                    out.tokens.push(tok(TokenKind::Lifetime, i, j, line));
                    i = j;
                } else {
                    let (end, newlines) = skip_quoted(bytes, i, b'\'');
                    out.tokens.push(tok(TokenKind::Char, i, end, line));
                    line += newlines;
                    i = end;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(tok(TokenKind::Ident, i, j, line));
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Loose numeric scan; suffixes and hex digits fold in, and a
                // fractional dot is consumed so `1.0` is not `1 . 0`.
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || (bytes[j] == b'.'
                            && bytes.get(j + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    j += 1;
                }
                out.tokens.push(tok(TokenKind::Number, i, j, line));
                i = j;
            }
            _ => {
                out.tokens.push(tok(TokenKind::Punct, i, i + 1, line));
                i += 1;
            }
        }
    }
    out.file_is_test = mark_test_regions(src, &mut out.tokens);
    out
}

fn tok(kind: TokenKind, start: usize, end: usize, line: u32) -> Token {
    Token { kind, start, end, line, in_test: false }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, br"…", br#"…"# (any number of hashes).
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Skips a raw string starting at `i`; returns (end offset, newline count).
fn skip_raw_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if bytes[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return (j + 1 + hashes, newlines);
            }
        }
        j += 1;
    }
    (j, newlines)
}

/// Skips a quoted literal starting at the quote `bytes[i]`; handles `\`
/// escapes. Returns (end offset, newline count).
fn skip_quoted(bytes: &[u8], i: usize, quote: u8) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            c if c == quote => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Marks tokens belonging to `#[cfg(test)]` / `#[test]` items, returning
/// `true` when an inner `#![cfg(test)]` makes the whole file test-only.
///
/// Heuristic: an attribute is "test-ish" when it contains the bare identifier
/// `test` (covers `cfg(test)`, `test`, `cfg(all(test, …))`) and does *not*
/// contain `not` (so `cfg(not(test))` production code stays linted).
fn mark_test_regions(src: &str, tokens: &mut [Token]) -> bool {
    let mut file_is_test = false;
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokenKind::Punct && src[tokens[i].start..].starts_with('#')) {
            i += 1;
            continue;
        }
        let inner = matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct && src[t.start..].starts_with('!'));
        let lb = if inner { i + 2 } else { i + 1 };
        if !matches!(tokens.get(lb), Some(t) if t.kind == TokenKind::Punct && src[t.start..].starts_with('['))
        {
            i += 1;
            continue;
        }
        let Some((close, is_testish)) = scan_attribute(src, tokens, lb) else {
            break;
        };
        if inner {
            if is_testish {
                file_is_test = true;
            }
            i = close + 1;
            continue;
        }
        if !is_testish {
            i = close + 1;
            continue;
        }
        // Consume any further outer attributes on the same item.
        let mut j = close + 1;
        while j < tokens.len()
            && tokens[j].kind == TokenKind::Punct
            && src[tokens[j].start..].starts_with('#')
            && matches!(tokens.get(j + 1), Some(t) if t.kind == TokenKind::Punct && src[t.start..].starts_with('['))
        {
            match scan_attribute(src, tokens, j + 1) {
                Some((c, _)) => j = c + 1,
                None => break,
            }
        }
        // Skip the annotated item: through the matching `}` of its body, or
        // to a terminating `;` for body-less items.
        let mut depth = 0i32;
        let mut end = j;
        while end < tokens.len() {
            if tokens[end].kind == TokenKind::Punct {
                match &src[tokens[end].start..tokens[end].start + 1] {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            end += 1;
        }
        let stop = end.min(tokens.len() - 1);
        for t in tokens[i..=stop].iter_mut() {
            t.in_test = true;
        }
        i = end + 1;
    }
    file_is_test
}

/// From the `[` at `tokens[lb]`, finds the matching `]`. Returns its index
/// and whether the attribute looks test-only.
fn scan_attribute(src: &str, tokens: &[Token], lb: usize) -> Option<(usize, bool)> {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = lb;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct => match &src[t.start..t.start + 1] {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((j, has_test && !has_not));
                    }
                }
                _ => {}
            },
            TokenKind::Ident => {
                let text = &src[t.start..t.end];
                if text == "test" {
                    has_test = true;
                } else if text == "not" {
                    has_not = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<(String, bool)> {
        let lx = lex(src);
        lx.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (lx.text(src, t).to_string(), t.in_test))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
fn f() {
    let s = "Instant::now() inside a string";
    let r = r#"HashMap "raw" string"#;
    // Instant::now() in a line comment
    /* nested /* block */ Instant::now() */
    let c = '"';
    real_ident();
}
"##;
        let ids: Vec<String> = idents(src).into_iter().map(|(s, _)| s).collect();
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn char_literal_versus_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let q = 'x'; let nl = '\\n'; }";
        let lx = lex(src);
        let lifetimes: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| lx.text(src, t))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = lx.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "
fn prod() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn prod2() { z.unwrap(); }
";
        let marks = idents(src);
        let get = |name: &str| marks.iter().find(|(s, _)| s == name).map(|(_, t)| *t);
        assert_eq!(get("x"), Some(false));
        assert_eq!(get("y"), Some(true));
        assert_eq!(get("z"), Some(false));
    }

    #[test]
    fn test_attribute_on_fn_is_marked() {
        let src = "
#[test]
fn unit() { a.unwrap(); }
fn prod() { b.unwrap(); }
";
        let marks = idents(src);
        let get = |name: &str| marks.iter().find(|(s, _)| s == name).map(|(_, t)| *t);
        assert_eq!(get("a"), Some(true));
        assert_eq!(get("b"), Some(false));
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        let src = "#[cfg(not(test))]\nfn prod() { a.unwrap(); }";
        let marks = idents(src);
        assert!(marks.iter().any(|(s, t)| s == "a" && !t));
    }

    #[test]
    fn inner_file_attribute_detected() {
        let lx = lex("#![cfg(test)]\nfn anything() {}");
        assert!(lx.file_is_test);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nbreak\";\nlet b = 1;";
        let lx = lex(src);
        let b = lx
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident && lx.text(src, t) == "b")
            .expect("token b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let src = "fn f() {}\n// graf-lint: allow(unwrap, test helper)\nfn g() {}";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 2);
        assert!(src[lx.comments[0].start..lx.comments[0].end].contains("graf-lint"));
    }
}
