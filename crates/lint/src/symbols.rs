//! Workspace symbol table: function ids, lookup indexes and call resolution.
//!
//! Resolution is best-effort and deliberately over-approximates where the
//! token stream underdetermines the target (see DESIGN.md §13):
//!
//! * `self.m(…)` resolves to methods named `m` on the surrounding impl type
//!   (same crate first, then any crate — impls may be split across files),
//! * `Type::m(…)` resolves to methods named `m` on `Type` anywhere in the
//!   workspace (dynamic dispatch through `dyn Trait` thus fans out to every
//!   implementor that names the method — conservative),
//! * `expr.m(…)` on an unknown receiver resolves to *every* workspace impl
//!   method named `m`,
//! * bare `f(…)` resolves same-file first, then crate-wide, then through
//!   this file's `use` imports,
//! * `std::`/`core::`/`alloc::` paths resolve to nothing (std is modeled by
//!   the allocation/trait patterns, not by nodes).

use std::collections::BTreeMap;

use crate::parse::{Call, CallKind, FileModel, FnDef};

/// Index of a function in the flattened workspace list.
pub type FnId = usize;

/// The symbol table over a set of parsed files.
#[derive(Debug, Default)]
pub struct Symbols {
    /// FnId → (file index, fn index within the file).
    pub ids: Vec<(usize, usize)>,
    /// FnId → stable node id: `<file>::<Type>::<fn>` / `<file>::<fn>`.
    pub node_ids: Vec<String>,
    by_crate_name: BTreeMap<(String, String), Vec<FnId>>,
    by_type_method: BTreeMap<(String, String), Vec<FnId>>,
    by_method: BTreeMap<String, Vec<FnId>>,
    by_file_name: BTreeMap<(String, String), Vec<FnId>>,
}

/// Path roots that belong to std (or std-shaped vendored crates): a
/// qualified call starting with one of these never targets workspace code.
/// Without this, `Vec::new()` would fall through the in-crate fallback and
/// resolve to every workspace `new` — a graph-poisoning over-approximation.
const STD_PATH_ROOTS: [&str; 36] = [
    "std",
    "core",
    "alloc",
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "str",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Option",
    "Result",
    "Some",
    "None",
    "Ok",
    "Err",
    "Arc",
    "Rc",
    "Cell",
    "RefCell",
    "Mutex",
    "RwLock",
    "Instant",
    "Duration",
    "SystemTime",
    "Ordering",
    "Layout",
    "System",
    "Reverse",
    "Wrapping",
    "PhantomData",
    "Cow",
    "Default",
];

/// Method names so ubiquitous on std containers/iterators/options that a
/// receiver-unknown `.name(…)` call is overwhelmingly a std call. These are
/// excluded from the workspace-wide method fallback; the cost is a missed
/// edge when a workspace type reuses such a name *and* is called through a
/// field or local (documented conservatism — `self.m()` and `Type::m()`
/// still resolve).
const STD_METHODS: [&str; 72] = [
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "clear",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "extend",
    "drain",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "last",
    "first",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "min",
    "max",
    "sum",
    "take",
    "swap",
    "fill",
    "resize",
    "reserve",
    "truncate",
    "entry",
    "or_insert",
    "or_default",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "push_str",
    "split",
    "join",
    "collect",
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "expect",
    "retain",
    "dedup",
    "rev",
    "zip",
    "enumerate",
    "filter",
    "fold",
    "any",
    "all",
    "find",
    "position",
    "count",
    "copied",
    "cloned",
    "swap_remove",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "write",
    "read",
    "flush",
    "abs",
];

/// Maps a path's leading segment to a workspace crate key, if it names one:
/// `graf_sim` → `sim`, `graf` → `graf`, `crate` → the current crate.
fn crate_of_segment(seg: &str, current: &str) -> Option<String> {
    if seg == "crate" || seg == "self" || seg == "super" {
        // `super` is approximated as the current crate (file-level modules
        // are flattened).
        return Some(current.to_string());
    }
    if seg == "graf" {
        return Some("graf".to_string());
    }
    seg.strip_prefix("graf_").map(|k| k.to_string())
}

impl Symbols {
    /// Builds the table. Test functions are not indexed.
    pub fn build(files: &[FileModel]) -> Symbols {
        let mut s = Symbols::default();
        for (fi, file) in files.iter().enumerate() {
            for (gi, def) in file.fns.iter().enumerate() {
                if def.in_test {
                    continue;
                }
                let id = s.ids.len();
                s.ids.push((fi, gi));
                s.node_ids.push(format!("{}::{}", file.path, def.qualified()));
                s.by_crate_name.entry((file.krate.clone(), def.name.clone())).or_default().push(id);
                s.by_file_name.entry((file.path.clone(), def.name.clone())).or_default().push(id);
                if let Some(ty) = &def.self_type {
                    s.by_type_method.entry((ty.clone(), def.name.clone())).or_default().push(id);
                    s.by_method.entry(def.name.clone()).or_default().push(id);
                }
            }
        }
        s
    }

    /// The (file index, fn index) behind a FnId.
    pub fn def<'m>(&self, files: &'m [FileModel], id: FnId) -> (&'m FileModel, &'m FnDef) {
        let (fi, gi) = self.ids[id];
        (&files[fi], &files[fi].fns[gi])
    }

    /// Resolves a `<file>.rs::<fn>` / `<file>.rs::<Type>::<fn>` spec, as used
    /// by `entry-points` and `alloc-allowed` in `lint.toml`.
    pub fn resolve_spec(&self, files: &[FileModel], spec: &str) -> Vec<FnId> {
        let Some(pos) = spec.find(".rs::") else {
            return Vec::new();
        };
        let (file, rest) = (&spec[..pos + 3], &spec[pos + 5..]);
        let mut out: Vec<FnId> = Vec::new();
        for id in 0..self.ids.len() {
            let (f, def) = self.def(files, id);
            if f.path == file && (def.qualified() == rest || def.name == rest) {
                out.push(id);
            }
        }
        out
    }

    /// Resolves one call site to candidate targets. `file_idx` and `def` give
    /// the calling context.
    pub fn resolve_call(
        &self,
        files: &[FileModel],
        file_idx: usize,
        def: &FnDef,
        call: &Call,
    ) -> Vec<FnId> {
        let file = &files[file_idx];
        let mut out = match call.kind {
            CallKind::SelfMethod => {
                let name = &call.segments[0];
                match &def.self_type {
                    Some(ty) => self.type_method(ty, name, &file.krate),
                    None => self.method(name),
                }
            }
            CallKind::Method => self.method(&call.segments[0]),
            CallKind::Bare => {
                let name = &call.segments[0];
                let mut v = self
                    .by_file_name
                    .get(&(file.path.clone(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
                if v.is_empty() {
                    v = self
                        .by_crate_name
                        .get(&(file.krate.clone(), name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
                if v.is_empty() {
                    if let Some(u) = file.uses.iter().find(|u| u.alias == *name) {
                        v = self.resolve_path(files, file_idx, def, &u.segments);
                    }
                }
                v
            }
            CallKind::Path => self.resolve_path(files, file_idx, def, &call.segments),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn method(&self, name: &str) -> Vec<FnId> {
        if STD_METHODS.contains(&name) {
            return Vec::new();
        }
        self.by_method.get(name).cloned().unwrap_or_default()
    }

    /// `Type::m` — same-crate impls first; cross-crate only when the type has
    /// no same-crate impl (impls of one type can span files, not crates, in
    /// this workspace).
    fn type_method(&self, ty: &str, name: &str, krate: &str) -> Vec<FnId> {
        let all = self
            .by_type_method
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default();
        let same: Vec<FnId> =
            all.iter().copied().filter(|&id| self.krate_of(id) == krate).collect();
        if same.is_empty() {
            all
        } else {
            same
        }
    }

    fn krate_of(&self, id: FnId) -> &str {
        // node id starts with the file path; crate is not stored per id, so
        // recompute from the path prefix.
        let path = &self.node_ids[id];
        if let Some(rest) = path.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("")
        } else {
            "graf"
        }
    }

    fn resolve_path(
        &self,
        files: &[FileModel],
        file_idx: usize,
        def: &FnDef,
        segments: &[String],
    ) -> Vec<FnId> {
        let file = &files[file_idx];
        if segments.is_empty() {
            return Vec::new();
        }
        let mut segs: Vec<String> = segments.to_vec();
        // `Self::m` → the surrounding impl type.
        if segs[0] == "Self" {
            match &def.self_type {
                Some(ty) => segs[0] = ty.clone(),
                None => return Vec::new(),
            }
        }
        // Expand a leading `use` alias (`World::go` with `use graf_sim::world::World;`).
        if let Some(u) = file.uses.iter().find(|u| u.alias == segs[0]) {
            let mut full = u.segments.clone();
            full.extend(segs[1..].iter().cloned());
            segs = full;
        }
        let first = segs[0].as_str();
        if STD_PATH_ROOTS.contains(&first) {
            return Vec::new();
        }
        let last = segs[segs.len() - 1].clone();
        if let Some(krate) = crate_of_segment(first, &file.krate) {
            // Qualified into a workspace crate: try `Type::fn` then a free fn.
            if segs.len() >= 2 {
                let second_last = segs[segs.len() - 2].clone();
                let typed: Vec<FnId> = self
                    .by_type_method
                    .get(&(second_last, last.clone()))
                    .map(|v| v.iter().copied().filter(|&id| self.krate_of(id) == krate).collect())
                    .unwrap_or_default();
                if !typed.is_empty() {
                    return typed;
                }
            }
            return self.by_crate_name.get(&(krate, last)).cloned().unwrap_or_default();
        }
        // `Type::m` in the current crate. A capitalized head that implements
        // nothing in the workspace is a foreign type (`Layout::new`) — it
        // must NOT fall through to the name-based fallback, which would wire
        // `Foreign::new` to every workspace `new`.
        let head_is_type = first.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if head_is_type {
            let ty = segs[segs.len() - 2].clone();
            return self.type_method(&ty, &last, &file.krate);
        }
        // `module::Type::m` within the current crate — same rule.
        if segs.len() >= 3 {
            let ty = segs[segs.len() - 2].clone();
            if ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                return self.type_method(&ty, &last, &file.krate);
            }
        }
        // `module::f` within the current crate.
        self.by_crate_name.get(&(file.krate.clone(), last)).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn two_files() -> Vec<FileModel> {
        vec![
            parse_file(
                "crates/sim/src/world.rs",
                "sim",
                "pub struct World;\n\
                 impl World {\n    pub fn run_until(&mut self) { self.dispatch(); helper(); }\n\
                 fn dispatch(&mut self) { graf_trace::store::push_raw(1); }\n}\n\
                 fn helper() {}\n",
            ),
            parse_file(
                "crates/trace/src/store.rs",
                "trace",
                "pub fn push_raw(x: u32) {}\npub struct TraceStore;\n\
                 impl TraceStore {\n    pub fn push_span(&mut self) {}\n}\n",
            ),
        ]
    }

    #[test]
    fn self_method_and_bare_resolve_in_crate() {
        let files = two_files();
        let s = Symbols::build(&files);
        let (f0, run) = (0usize, &files[0].fns[0]);
        assert_eq!(run.name, "run_until");
        let dispatch: Vec<FnId> = s.resolve_call(&files, f0, run, &run.calls[0]);
        // Calls are sorted by segments: dispatch < helper.
        assert_eq!(dispatch.len(), 1);
        assert!(s.node_ids[dispatch[0]].ends_with("World::dispatch"));
    }

    #[test]
    fn cross_crate_path_resolves() {
        let files = two_files();
        let s = Symbols::build(&files);
        let dispatch = &files[0].fns[1];
        let targets = s.resolve_call(&files, 0, dispatch, &dispatch.calls[0]);
        assert_eq!(targets.len(), 1);
        assert!(s.node_ids[targets[0]].starts_with("crates/trace/src/store.rs"));
    }

    #[test]
    fn method_fallback_is_workspace_wide() {
        let files = two_files();
        let s = Symbols::build(&files);
        let m = s.method("push_span");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn resolve_spec_finds_methods_and_free_fns() {
        let files = two_files();
        let s = Symbols::build(&files);
        assert_eq!(s.resolve_spec(&files, "crates/sim/src/world.rs::run_until").len(), 1);
        assert_eq!(s.resolve_spec(&files, "crates/sim/src/world.rs::World::run_until").len(), 1);
        assert_eq!(s.resolve_spec(&files, "crates/sim/src/world.rs::helper").len(), 1);
        assert!(s.resolve_spec(&files, "crates/sim/src/world.rs::nope").is_empty());
    }
}
