//! Reachability checks over the call graph: determinism taint and
//! transitive hot-path allocation.
//!
//! *Determinism taint* walks forward from the entry points declared in
//! `lint.toml` (`[analyze] entry-points`) and reports every reachable
//! non-determinism evidence site: wall-clock reads, RNG construction outside
//! the seeded home, `std::thread` use outside the blessed ordered-reduction
//! files, and unordered-map iteration. The finding is anchored at the sink
//! line and carries the call chain from the entry point, so the report reads
//! as a proof sketch rather than a bare location.
//!
//! *Transitive hot alloc* walks forward from every `[[hot]]` function and
//! reports constructor-class allocations in the (non-root) subtree. Functions
//! in `[analyze] alloc-allowed` are subtree barriers — recognized init/growth
//! paths that are cold by construction — as are the exempt crates.

use std::collections::{BTreeMap, VecDeque};

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lints::{Finding, DETERMINISM_TAINT, TRANSITIVE_HOT_ALLOC};
use crate::parse::{FileModel, Site};
use crate::symbols::{FnId, Symbols};

/// Output of the reachability passes.
#[derive(Debug, Default)]
pub struct TaintReport {
    /// Taint and transitive-alloc findings, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
    /// Functions reachable from the deterministic entry points.
    pub reachable_from_entries: usize,
    /// Functions reachable from the `[[hot]]` roots (barriers excluded).
    pub reachable_from_hot: usize,
    /// Human-readable sink descriptions (one line each, sorted) for
    /// `--summary` / `scripts/analyze.sh`: the taint frontier *before*
    /// suppression, so allow-justified sinks stay visible in the report.
    pub frontier: Vec<String>,
}

/// BFS parent forest: `parent[v]` is the predecessor on the first discovered
/// path, `None` for roots and unreached nodes (`visited` disambiguates).
struct Walk {
    visited: Vec<bool>,
    parent: Vec<Option<FnId>>,
    /// Root each visited node was discovered from.
    root_of: Vec<Option<FnId>>,
}

fn bfs(graph: &CallGraph, roots: &[FnId], barred: &dyn Fn(FnId) -> bool) -> Walk {
    let n = graph.nodes.len();
    let mut w = Walk { visited: vec![false; n], parent: vec![None; n], root_of: vec![None; n] };
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &r in roots {
        if !w.visited[r] && !barred(r) {
            w.visited[r] = true;
            w.root_of[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &t in &graph.edges[v] {
            if w.visited[t] || barred(t) {
                continue;
            }
            w.visited[t] = true;
            w.parent[t] = Some(v);
            w.root_of[t] = w.root_of[v];
            queue.push_back(t);
        }
    }
    w
}

/// `entry → … → sink` as qualified names, for finding messages.
fn chain(graph: &CallGraph, walk: &Walk, sink: FnId) -> String {
    let mut names: Vec<&str> = Vec::new();
    let mut v = sink;
    loop {
        names.push(graph.nodes[v].qualified.as_str());
        match walk.parent[v] {
            Some(p) => v = p,
            None => break,
        }
    }
    names.reverse();
    names.join(" → ")
}

/// Runs both reachability passes. `sources` maps repo-relative paths to file
/// contents (for finding snippets). Errors on an `entry-points` or
/// `alloc-allowed` spec that resolves to nothing — a renamed function must
/// fail CI loudly, not silently shrink the analyzed surface.
pub fn analyze(
    files: &[FileModel],
    graph: &CallGraph,
    cfg: &Config,
    sources: &BTreeMap<String, String>,
) -> Result<TaintReport, String> {
    // FnIds in `symbols` align with `graph.nodes`: both come from
    // `Symbols::build` over the same pre-sorted file list.
    let symbols = Symbols::build(files);
    let mut report = TaintReport::default();

    let exempt = |id: FnId| cfg.analyze.exempt_crates.iter().any(|c| *c == graph.nodes[id].krate);
    let snippet = |path: &str, line: u32| -> String {
        sources
            .get(path)
            .and_then(|src| src.lines().nth(line.saturating_sub(1) as usize))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    // ---- determinism taint -------------------------------------------------
    let mut entries: Vec<FnId> = Vec::new();
    for spec in &cfg.analyze.entry_points {
        let ids = symbols.resolve_spec(files, spec);
        if ids.is_empty() {
            return Err(format!(
                "[analyze] entry-points: `{spec}` resolves to no function \
                 (renamed or moved? update lint.toml)"
            ));
        }
        entries.extend(ids);
    }
    entries.sort_unstable();
    entries.dedup();

    let det = bfs(graph, &entries, &exempt);
    report.reachable_from_entries = det.visited.iter().filter(|v| **v).count();
    for id in 0..graph.nodes.len() {
        if !det.visited[id] {
            continue;
        }
        let n = &graph.nodes[id];
        let in_ordered = cfg.analyze.ordered_reduction_files.contains(&n.file);
        let in_rng_home = cfg.rng_home.contains(&n.file);
        let mut sinks: Vec<(&Site, &str)> = Vec::new();
        for s in &n.traits_.wallclock {
            sinks.push((s, "wall-clock read"));
        }
        if !in_rng_home {
            for s in &n.traits_.rng {
                sinks.push((s, "RNG construction"));
            }
        }
        if !in_ordered {
            for s in &n.traits_.thread {
                sinks.push((s, "thread use outside an ordered-reduction file"));
            }
        }
        for s in &n.traits_.unordered_iter {
            sinks.push((s, "unordered-map iteration"));
        }
        if sinks.is_empty() {
            continue;
        }
        let entry = det.root_of[id].expect("visited node has a root");
        let via = chain(graph, &det, id);
        for (site, what) in sinks {
            report.findings.push(Finding {
                lint: DETERMINISM_TAINT,
                path: n.file.clone(),
                line: site.line,
                message: format!(
                    "{what} `{}` reachable from deterministic entry `{}` via {via}",
                    site.what, graph.nodes[entry].qualified
                ),
                snippet: snippet(&n.file, site.line),
            });
            report
                .frontier
                .push(format!("taint {}:{} {} `{}` via {via}", n.file, site.line, what, site.what));
        }
    }

    // ---- transitive hot alloc ----------------------------------------------
    let mut allowed: Vec<FnId> = Vec::new();
    for spec in &cfg.analyze.alloc_allowed {
        let ids = symbols.resolve_spec(files, spec);
        if ids.is_empty() {
            return Err(format!(
                "[analyze] alloc-allowed: `{spec}` resolves to no function \
                 (renamed or moved? update lint.toml)"
            ));
        }
        allowed.extend(ids);
    }
    let mut hot_roots: Vec<FnId> = Vec::new();
    for region in &cfg.hot {
        for id in 0..graph.nodes.len() {
            let n = &graph.nodes[id];
            if n.file == region.file && region.functions.contains(&n.name) {
                hot_roots.push(id);
            }
        }
    }
    hot_roots.sort_unstable();
    hot_roots.dedup();
    let is_root = |id: FnId| hot_roots.binary_search(&id).is_ok();

    let hot = bfs(graph, &hot_roots, &|id| exempt(id) || allowed.contains(&id));
    report.reachable_from_hot = hot.visited.iter().filter(|v| **v).count();
    for id in 0..graph.nodes.len() {
        // Direct allocations in the roots themselves are the token-level
        // `hot-path-alloc` lint's job; this pass owns the subtree.
        if !hot.visited[id] || is_root(id) {
            continue;
        }
        let n = &graph.nodes[id];
        if n.traits_.alloc.is_empty() {
            continue;
        }
        let root = hot.root_of[id].expect("visited node has a root");
        let via = chain(graph, &hot, id);
        for site in &n.traits_.alloc {
            report.findings.push(Finding {
                lint: TRANSITIVE_HOT_ALLOC,
                path: n.file.clone(),
                line: site.line,
                message: format!(
                    "`{}` reachable from hot `{}` via {via}; reuse caller buffers \
                     or list the cold callee in [analyze] alloc-allowed",
                    site.what, graph.nodes[root].qualified
                ),
                snippet: snippet(&n.file, site.line),
            });
            report
                .frontier
                .push(format!("hot-alloc {}:{} `{}` via {via}", n.file, site.line, site.what));
        }
    }

    report.findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    report.frontier.sort_unstable();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HotRegion;
    use crate::parse::parse_file;

    fn setup(srcs: &[(&str, &str, &str)]) -> (Vec<FileModel>, CallGraph, BTreeMap<String, String>) {
        let files: Vec<FileModel> =
            srcs.iter().map(|(rel, krate, src)| parse_file(rel, krate, src)).collect();
        let graph = CallGraph::build(&files);
        let sources = srcs.iter().map(|(rel, _, src)| (rel.to_string(), src.to_string())).collect();
        (files, graph, sources)
    }

    #[test]
    fn taint_crosses_call_edges_with_a_chain() {
        let (files, graph, sources) = setup(&[(
            "crates/sim/src/world.rs",
            "sim",
            "pub fn run_until() { step(); }\n\
             fn step() { leaf(); }\n\
             fn leaf() { let t = std::time::Instant::now(); }\n",
        )]);
        let mut cfg = Config::default();
        cfg.analyze.entry_points = vec!["crates/sim/src/world.rs::run_until".into()];
        let report = analyze(&files, &graph, &cfg, &sources).expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(f.lint, DETERMINISM_TAINT);
        assert_eq!(f.line, 3);
        assert!(f.message.contains("run_until → step → leaf"), "msg: {}", f.message);
        assert!(f.snippet.contains("Instant::now"));
    }

    #[test]
    fn unreachable_sinks_do_not_fire() {
        let (files, graph, sources) = setup(&[(
            "crates/sim/src/world.rs",
            "sim",
            "pub fn run_until() {}\n\
             fn orphan() { let t = std::time::Instant::now(); }\n",
        )]);
        let mut cfg = Config::default();
        cfg.analyze.entry_points = vec!["crates/sim/src/world.rs::run_until".into()];
        let report = analyze(&files, &graph, &cfg, &sources).expect("analyzes");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn ordered_reduction_file_blesses_threads_but_not_wallclock() {
        let src = "pub fn train_step() { std::thread::scope(|s| {}); helper(); }\n\
                   fn helper() { let t = std::time::Instant::now(); }\n";
        let (files, graph, sources) = setup(&[("crates/gnn/src/model.rs", "gnn", src)]);
        let mut cfg = Config::default();
        cfg.analyze.entry_points = vec!["crates/gnn/src/model.rs::train_step".into()];
        cfg.analyze.ordered_reduction_files = vec!["crates/gnn/src/model.rs".into()];
        let report = analyze(&files, &graph, &cfg, &sources).expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("wall-clock"));
    }

    #[test]
    fn exempt_crates_are_barriers() {
        let (files, graph, sources) = setup(&[
            ("crates/sim/src/world.rs", "sim", "pub fn run_until() { graf_obs::record(); }\n"),
            (
                "crates/obs/src/lib.rs",
                "obs",
                "pub fn record() { let t = std::time::Instant::now(); }\n",
            ),
        ]);
        let mut cfg = Config::default();
        cfg.analyze.entry_points = vec!["crates/sim/src/world.rs::run_until".into()];
        let report = analyze(&files, &graph, &cfg, &sources).expect("analyzes");
        assert!(report.findings.is_empty());
    }

    #[test]
    fn unresolvable_entry_point_is_a_hard_error() {
        let (files, graph, sources) =
            setup(&[("crates/sim/src/world.rs", "sim", "pub fn run_until() {}\n")]);
        let mut cfg = Config::default();
        cfg.analyze.entry_points = vec!["crates/sim/src/world.rs::renamed_away".into()];
        assert!(analyze(&files, &graph, &cfg, &sources).is_err());
    }

    #[test]
    fn transitive_alloc_reports_subtree_not_root() {
        let src = "pub fn kernel() { helper(); }\n\
                   fn helper() { let v = Vec::new(); }\n";
        let (files, graph, sources) = setup(&[("crates/nn/src/matrix.rs", "nn", src)]);
        let mut cfg = Config::default();
        cfg.hot.push(HotRegion {
            file: "crates/nn/src/matrix.rs".into(),
            functions: vec!["kernel".into()],
        });
        let report = analyze(&files, &graph, &cfg, &sources).expect("analyzes");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].lint, TRANSITIVE_HOT_ALLOC);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn alloc_allowed_is_a_subtree_barrier() {
        let src = "pub fn kernel() { grow(); }\n\
                   fn grow() { deep(); }\n\
                   fn deep() { let v = Vec::new(); }\n";
        let (files, graph, sources) = setup(&[("crates/nn/src/matrix.rs", "nn", src)]);
        let mut cfg = Config::default();
        cfg.hot.push(HotRegion {
            file: "crates/nn/src/matrix.rs".into(),
            functions: vec!["kernel".into()],
        });
        cfg.analyze.alloc_allowed = vec!["crates/nn/src/matrix.rs::grow".into()];
        let report = analyze(&files, &graph, &cfg, &sources).expect("analyzes");
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
