//! The `graf-lint` CLI.
//!
//! ```text
//! graf-lint [--root DIR] [--config FILE] [--baseline FILE] [--json]
//!           [--write-baseline] [--analyze] [--callgraph] [--summary]
//! ```
//!
//! Modes:
//!
//! * default — token-level lints only (fast per-file scan),
//! * `--analyze` — adds the workspace call-graph pass: `determinism-taint`,
//!   `transitive-hot-alloc` and `stale-allow`; `--json` then also carries the
//!   suppression inventory,
//! * `--callgraph` — prints the call graph as JSONL (byte-identical across
//!   runs) and exits 0; no findings are gated,
//! * `--summary` — prints reachability stats, the largest call cycles and the
//!   pre-suppression taint frontier, then gates findings like `--analyze`.
//!
//! Exit codes: `0` — no findings beyond the baseline; `1` — new findings;
//! `2` — usage, configuration or I/O error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use graf_lint::{analyze_workspace, scan_workspace, Analysis, Baseline, Config, Finding};

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    analyze: bool,
    callgraph: bool,
    summary: bool,
}

const USAGE: &str = "usage: graf-lint [--root DIR] [--config FILE] [--baseline FILE] [--json] \
                     [--write-baseline] [--analyze] [--callgraph] [--summary]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        baseline: None,
        json: false,
        write_baseline: false,
        analyze: false,
        callgraph: false,
        summary: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--analyze" => args.analyze = true,
            "--callgraph" => args.callgraph = true,
            "--summary" => args.summary = true,
            "--root" => args.root = Some(next_path(&mut it, "--root")?),
            "--config" => args.config = Some(next_path(&mut it, "--config")?),
            "--baseline" => args.baseline = Some(next_path(&mut it, "--baseline")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next().map(PathBuf::from).ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}

/// Walks up from the current directory to the first one containing
/// `lint.toml` (the repo root).
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml found in any parent directory (use --root)".into());
        }
    }
}

fn print_summary(a: &Analysis) {
    let nodes = a.graph.nodes.len();
    let edges: usize = a.graph.edges.iter().map(Vec::len).sum();
    println!("graf-analyze: {} files, {} functions, {} call edges", a.files_scanned, nodes, edges);
    println!(
        "graf-analyze: {} reachable from entry points, {} from hot roots",
        a.reachable_from_entries, a.reachable_from_hot
    );
    let sccs = a.graph.sccs();
    println!("graf-analyze: {} call cycles (SCCs with >1 member)", sccs.len());
    for (i, comp) in sccs.iter().take(10).enumerate() {
        let members: Vec<&str> =
            comp.iter().take(4).map(|&id| a.graph.nodes[id].qualified.as_str()).collect();
        let more = if comp.len() > 4 { ", …" } else { "" };
        println!("  scc#{}: {} fns [{}{}]", i + 1, comp.len(), members.join(", "), more);
    }
    println!("graf-analyze: taint frontier ({} sinks before suppression)", a.frontier.len());
    for line in &a.frontier {
        println!("  {line}");
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => find_root()?,
    };
    let config_path = args.config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg_text =
        fs::read_to_string(&config_path).map_err(|e| format!("{}: {e}", config_path.display()))?;
    let cfg = Config::parse(&cfg_text)?;

    if args.callgraph {
        let analysis = analyze_workspace(&root, &cfg)?;
        print!("{}", analysis.graph.render_jsonl());
        return Ok(true);
    }

    let graph_mode = args.analyze || args.summary;
    let (findings, files_scanned, analysis) = if graph_mode {
        let analysis = analyze_workspace(&root, &cfg)?;
        (analysis.findings.clone(), analysis.files_scanned, Some(analysis))
    } else {
        let result = scan_workspace(&root, &cfg).map_err(|e| format!("scan: {e}"))?;
        (result.findings, result.files_scanned, None)
    };

    let baseline_path = args.baseline.unwrap_or_else(|| root.join("lint.baseline"));
    if args.write_baseline {
        let text = Baseline::render(&findings);
        fs::write(&baseline_path, &text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        eprintln!("graf-lint: wrote {} entries to {}", findings.len(), baseline_path.display());
        return Ok(true);
    }
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => return Err(format!("{}: {e}", baseline_path.display())),
    };
    let (baselined, new) = baseline.partition(&findings);

    if args.summary {
        print_summary(analysis.as_ref().expect("summary implies analyze"));
    }
    if args.json {
        match &analysis {
            Some(a) => print!(
                "{}",
                graf_lint::render_json_full(&findings, &new, files_scanned, &a.suppressions)
            ),
            None => print!("{}", graf_lint::render_json(&findings, &new, files_scanned)),
        }
    } else {
        for f in &new {
            print_finding(f, true);
        }
        for f in &baselined {
            print_finding(f, false);
        }
        println!(
            "graf-lint: {} files, {} findings ({} new, {} baselined)",
            files_scanned,
            findings.len(),
            new.len(),
            baselined.len()
        );
    }
    Ok(new.is_empty())
}

fn print_finding(f: &Finding, is_new: bool) {
    let tag = if is_new { "" } else { " [baselined]" };
    println!("{}:{}: [{}]{} {}", f.path, f.line, f.lint, tag, f.message);
    println!("    {}", f.snippet);
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("graf-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
