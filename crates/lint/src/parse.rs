//! Token-stream → item model: the parsing layer of graf-analyze.
//!
//! This is *not* a Rust grammar. It recognizes exactly the structure the
//! call-graph and taint passes need: `mod` nesting, `impl` blocks (with the
//! self type), `use` declarations, function definitions with their body
//! extents, the call sites inside each body, and the per-function
//! non-determinism traits (wall-clock, unseeded RNG, thread spawn/scope,
//! unordered-map iteration, allocation). Everything else — expressions,
//! types, generics — is skipped over by brace/bracket matching.
//!
//! Known conservatisms (documented in DESIGN.md §13): nested functions and
//! closures attribute their calls and traits to the enclosing top-level
//! function (an over-approximation that keeps reachability sound); macro
//! bodies are scanned as plain tokens; dynamic dispatch resolves by method
//! name (see [`crate::callgraph`]).

use crate::lexer::{lex, strip_raw_ident, Token, TokenKind};

/// How a call site names its target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — a free-function call.
    Bare,
    /// `self.name(…)` — a method on the surrounding impl type.
    SelfMethod,
    /// `expr.name(…)` — a method on an unknown receiver.
    Method,
    /// `a::b::name(…)` — a qualified path call.
    Path,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Resolution class.
    pub kind: CallKind,
    /// Path segments; a single element for `Bare`/`SelfMethod`/`Method`.
    pub segments: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

/// A non-determinism or allocation evidence site inside a function body.
#[derive(Clone, Debug)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
    /// What was seen (`Instant::now`, `thread::scope`, `Vec::new`, …).
    pub what: String,
}

/// Per-function evidence the taint pass consumes.
#[derive(Clone, Debug, Default)]
pub struct FnTraits {
    /// Wall-clock reads (`Instant::now`, `SystemTime`), `is_recording`-gated
    /// lines excluded.
    pub wallclock: Vec<Site>,
    /// Unseeded/ambient RNG construction.
    pub rng: Vec<Site>,
    /// `std::thread` spawn/scope use.
    pub thread: Vec<Site>,
    /// Iteration over a `HashMap`/`HashSet` declared in this file.
    pub unordered_iter: Vec<Site>,
    /// Constructor-class allocations (`Vec::new`, `.collect()`, `format!`, …).
    pub alloc: Vec<Site>,
}

impl FnTraits {
    /// `true` when no evidence of any kind was collected.
    pub fn is_empty(&self) -> bool {
        self.wallclock.is_empty()
            && self.rng.is_empty()
            && self.thread.is_empty()
            && self.unordered_iter.is_empty()
            && self.alloc.is_empty()
    }
}

/// One function definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name (raw-ident prefix stripped).
    pub name: String,
    /// Surrounding `impl` self type, when inside an impl block.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` for `#[cfg(test)]`/`#[test]` functions (excluded from graphs).
    pub in_test: bool,
    /// Call sites inside the body.
    pub calls: Vec<Call>,
    /// Evidence sites inside the body.
    pub traits_: FnTraits,
}

impl FnDef {
    /// `file.rs::Type::name` or `file.rs::name` — the stable node id prefix
    /// is added by the call-graph layer.
    pub fn qualified(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `use` declaration, flattened: local alias → full path segments.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// The name the path is visible as in this file.
    pub alias: String,
    /// Full path segments, e.g. `["graf_sim", "world", "World"]`.
    pub segments: Vec<String>,
}

/// The per-file model.
#[derive(Clone, Debug, Default)]
pub struct FileModel {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// Owning crate (per [`crate::lints`] path classification).
    pub krate: String,
    /// Flattened `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
}

/// Keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let", "else",
    "unsafe", "ref", "mut", "box",
];

/// RNG constructors banned outside the seeded home (kept in sync with the
/// token-level `unseeded-rng` lint).
const RNG_BANNED: [&str; 10] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "seed_from_u64",
    "from_seed",
    "from_rng",
    "SmallRng",
    "StdRng",
];

const ALLOC_METHODS: [&str; 5] = ["clone", "to_vec", "to_owned", "to_string", "collect"];
const ITER_METHODS: [&str; 7] =
    ["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain"];

struct Parser<'s> {
    src: &'s str,
    t: Vec<Token>,
}

impl<'s> Parser<'s> {
    fn text(&self, i: usize) -> &'s str {
        let t = &self.t[i];
        &self.src[t.start..t.end]
    }

    fn ident(&self, i: usize) -> Option<&'s str> {
        let t = self.t.get(i)?;
        (t.kind == TokenKind::Ident).then(|| strip_raw_ident(&self.src[t.start..t.end]))
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.ident(i) == Some(s)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.t.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && self.text(i).starts_with(c)
    }

    fn is_path_sep(&self, i: usize) -> bool {
        // `::` — two adjacent `:` puncts.
        self.is_punct(i, ':') && self.is_punct(i + 1, ':') && self.t[i + 1].start == self.t[i].end
    }

    fn line(&self, i: usize) -> u32 {
        self.t[i].line
    }

    /// Index of the matching `}` for the `{` at `open`.
    fn close_brace(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.t.len() {
            if self.is_punct(i, '{') {
                depth += 1;
            } else if self.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.t.len().saturating_sub(1)
    }
}

/// Parses one file into its model. `rel` must already be classified as a
/// lintable library path (the caller checks).
pub fn parse_file(rel: &str, krate: &str, src: &str) -> FileModel {
    let lexed = lex(src);
    let p = Parser { src, t: lexed.tokens };
    let mut model =
        FileModel { path: rel.to_string(), krate: krate.to_string(), ..FileModel::default() };

    // Lines where wall-clock reads are telemetry-gated, mirroring the
    // token-level lint's `is_recording` rule.
    let mut gated_lines: Vec<u32> = Vec::new();
    for i in 0..p.t.len() {
        if p.is_ident(i, "is_recording") {
            gated_lines.push(p.line(i));
        }
    }

    // File-level pass: names declared as HashMap/HashSet (for the
    // unordered-iteration trait), mirroring the token-level lint.
    let tracked = tracked_unordered_names(&p);

    // Structural walk: impl blocks, use declarations, fn definitions.
    let mut impl_stack: Vec<(usize, String)> = Vec::new(); // (close index, type)
    let mut i = 0usize;
    while i < p.t.len() {
        while let Some(&(close, _)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        if p.is_ident(i, "use") && !p.t[i].in_test {
            let (decls, next) = parse_use(&p, i + 1);
            model.uses.extend(decls);
            i = next;
            continue;
        }
        if p.is_ident(i, "impl") {
            // Self type: the first path ident after generics, or the one
            // after `for` in `impl Trait for Type`.
            let mut j = i + 1;
            // Skip `<…>` generic params (angle depth over puncts).
            if p.is_punct(j, '<') {
                let mut depth = 0i32;
                while j < p.t.len() {
                    if p.is_punct(j, '<') {
                        depth += 1;
                    } else if p.is_punct(j, '>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let mut ty: Option<String> = None;
            while j < p.t.len() && !p.is_punct(j, '{') {
                if p.is_ident(j, "for") {
                    // `impl Trait for Type`: the self type is after `for`,
                    // so the trait name collected above is discarded.
                    ty = None;
                } else if ty.is_none() {
                    if let Some(name) = p.ident(j) {
                        ty = Some(name.to_string());
                    }
                }
                j += 1;
            }
            if j < p.t.len() && p.is_punct(j, '{') {
                let close = p.close_brace(j);
                if let Some(ty) = ty {
                    impl_stack.push((close, ty));
                }
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        if p.is_ident(i, "fn") {
            let Some(name) = p.ident(i + 1) else {
                i += 1;
                continue;
            };
            let line = p.line(i);
            let in_test = p.t[i].in_test;
            // Body: first `{` before a top-level `;` (trait decls have none).
            let mut j = i + 2;
            let mut body: Option<(usize, usize)> = None;
            let mut paren = 0i32;
            while j < p.t.len() {
                if p.is_punct(j, '(') || p.is_punct(j, '[') {
                    paren += 1;
                } else if p.is_punct(j, ')') || p.is_punct(j, ']') {
                    paren -= 1;
                } else if paren == 0 && p.is_punct(j, '{') {
                    body = Some((j, p.close_brace(j)));
                    break;
                } else if paren == 0 && p.is_punct(j, ';') {
                    break;
                }
                j += 1;
            }
            let self_type = impl_stack.last().map(|(_, t)| t.clone());
            let mut def = FnDef {
                name: name.to_string(),
                self_type,
                line,
                in_test,
                calls: Vec::new(),
                traits_: FnTraits::default(),
            };
            if let Some((open, close)) = body {
                collect_body(&p, open, close, &gated_lines, &tracked, &mut def);
                model.fns.push(def);
                // Continue walking *inside* the body so nested fns are also
                // recorded (their calls are attributed to both, which is the
                // conservative direction for reachability).
                i = open + 1;
                continue;
            }
            model.fns.push(def);
            i = j + 1;
            continue;
        }
        i += 1;
    }
    model
}

/// Names declared with a `HashMap`/`HashSet` type or initializer, mirroring
/// the token-level unordered-map tracker.
fn tracked_unordered_names<'s>(p: &Parser<'s>) -> Vec<&'s str> {
    let mut tracked = Vec::new();
    for i in 0..p.t.len() {
        if !(p.is_ident(i, "HashMap") || p.is_ident(i, "HashSet")) {
            continue;
        }
        let mut j = i;
        while j >= 3 && p.is_path_sep(j - 2) && p.ident(j - 3).is_some() {
            j -= 3;
        }
        if j >= 2 && p.is_punct(j - 1, ':') && !p.is_punct(j - 2, ':') {
            if let Some(name) = p.ident(j - 2) {
                tracked.push(name);
                continue;
            }
        }
        if j >= 2 && p.is_punct(j - 1, '=') {
            if let Some(name) = p.ident(j - 2) {
                tracked.push(name);
            }
        }
    }
    tracked
}

/// Parses a `use` declaration starting after the `use` keyword. Handles
/// `use a::b::C;`, `use a::b::{C, D};`, `use a::B as E;`. Glob imports and
/// nested groups deeper than one level are skipped (conservative: the
/// name-based method fallback still finds their targets).
fn parse_use(p: &Parser<'_>, start: usize) -> (Vec<UseDecl>, usize) {
    let mut segs: Vec<String> = Vec::new();
    let mut decls = Vec::new();
    let mut i = start;
    while i < p.t.len() && !p.is_punct(i, ';') {
        if let Some(name) = p.ident(i) {
            if name == "as" {
                // `use path as alias;` — next ident renames the last path.
                if let Some(alias) = p.ident(i + 1) {
                    if !segs.is_empty() {
                        decls.push(UseDecl { alias: alias.to_string(), segments: segs.clone() });
                        segs.clear();
                    }
                    i += 2;
                    continue;
                }
            }
            segs.push(name.to_string());
            i += 1;
            continue;
        }
        if p.is_path_sep(i) {
            i += 2;
            continue;
        }
        if p.is_punct(i, '{') {
            // One group level: `use a::{B, C as D, e};`
            let close = find_group_close(p, i);
            let prefix = segs.clone();
            let mut inner: Vec<String> = Vec::new();
            let mut j = i + 1;
            while j < close {
                if let Some(name) = p.ident(j) {
                    if name == "as" {
                        if let Some(alias) = p.ident(j + 1) {
                            let mut full = prefix.clone();
                            full.append(&mut inner);
                            decls.push(UseDecl { alias: alias.to_string(), segments: full });
                            j += 2;
                            continue;
                        }
                    }
                    inner.push(name.to_string());
                    j += 1;
                    continue;
                }
                if p.is_punct(j, ',') {
                    if let Some(last) = inner.last().cloned() {
                        let mut full = prefix.clone();
                        full.append(&mut inner);
                        decls.push(UseDecl { alias: last, segments: full });
                    }
                    j += 1;
                    continue;
                }
                j += 1;
            }
            if let Some(last) = inner.last().cloned() {
                let mut full = prefix;
                full.extend(inner);
                decls.push(UseDecl { alias: last, segments: full });
            }
            i = close + 1;
            segs.clear();
            continue;
        }
        if p.is_punct(i, '*') {
            segs.clear();
            i += 1;
            continue;
        }
        i += 1;
    }
    if let Some(last) = segs.last().cloned() {
        decls.push(UseDecl { alias: last, segments: segs });
    }
    (decls, i + 1)
}

fn find_group_close(p: &Parser<'_>, open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < p.t.len() {
        if p.is_punct(i, '{') {
            depth += 1;
        } else if p.is_punct(i, '}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    p.t.len().saturating_sub(1)
}

/// Collects call sites and trait evidence from the body token range.
///
/// Two passes: the evidence pass visits every token (the call pass below
/// fast-forwards over path segments, which would skip `Instant` inside
/// `std::time::Instant::now`).
fn collect_body(
    p: &Parser<'_>,
    open: usize,
    close: usize,
    gated_lines: &[u32],
    tracked: &[&str],
    def: &mut FnDef,
) {
    for k in open + 1..close {
        let Some(word) = p.ident(k) else {
            continue;
        };
        let line = p.line(k);
        if word == "Instant" && p.is_path_sep(k + 1) && p.is_ident(k + 3, "now") {
            if !gated_lines.contains(&line) {
                def.traits_.wallclock.push(Site { line, what: "Instant::now".into() });
            }
        } else if word == "SystemTime" {
            if !gated_lines.contains(&line) {
                def.traits_.wallclock.push(Site { line, what: "SystemTime".into() });
            }
        } else if RNG_BANNED.contains(&word) {
            def.traits_.rng.push(Site { line, what: word.to_string() });
        } else if word == "thread" && p.is_path_sep(k + 1) {
            if let Some(m @ ("spawn" | "scope")) = p.ident(k + 3) {
                def.traits_.thread.push(Site { line, what: format!("thread::{m}") });
            }
        } else if (word == "Vec" || word == "Box" || word == "String")
            && p.is_path_sep(k + 1)
            && matches!(p.ident(k + 3), Some("new" | "with_capacity" | "from"))
        {
            let m = p.ident(k + 3).expect("matched above");
            def.traits_.alloc.push(Site { line, what: format!("{word}::{m}") });
        } else if (word == "format" || word == "vec") && p.is_punct(k + 1, '!') {
            def.traits_.alloc.push(Site { line, what: format!("{word}!") });
        } else if ALLOC_METHODS.contains(&word)
            && k >= 1
            && p.is_punct(k - 1, '.')
            && (p.is_punct(k + 1, '(') || p.is_path_sep(k + 1))
        {
            def.traits_.alloc.push(Site { line, what: format!(".{word}()") });
        } else if ITER_METHODS.contains(&word)
            && k >= 2
            && p.is_punct(k - 1, '.')
            && p.is_punct(k + 1, '(')
        {
            if let Some(name) = p.ident(k - 2) {
                if tracked.contains(&name) {
                    def.traits_
                        .unordered_iter
                        .push(Site { line, what: format!("{name}.{word}()") });
                }
            }
        } else if word == "for" {
            // `for pat in <expr with tracked name> {` — unordered iteration.
            let mut j = k + 1;
            while j < close && !p.is_ident(j, "in") && !p.is_punct(j, '{') {
                j += 1;
            }
            if p.is_ident(j, "in") {
                let mut m = j + 1;
                while m < close && !p.is_punct(m, '{') {
                    if let Some(name) = p.ident(m) {
                        if tracked.contains(&name) {
                            def.traits_
                                .unordered_iter
                                .push(Site { line, what: format!("for … in {name}") });
                            break;
                        }
                    }
                    m += 1;
                }
            }
        }
    }

    // ---- call sites --------------------------------------------------------
    let mut k = open + 1;
    while k < close {
        let Some(word) = p.ident(k) else {
            k += 1;
            continue;
        };
        let line = p.line(k);
        if NON_CALL_KEYWORDS.contains(&word) {
            k += 1;
            continue;
        }
        let prev_dot = k >= 1 && p.is_punct(k - 1, '.');
        let prev_sep = k >= 2 && p.is_path_sep(k - 2);
        if prev_dot && p.is_punct(k + 1, '(') {
            let kind = if k >= 2 && p.is_ident(k - 2, "self") {
                CallKind::SelfMethod
            } else {
                CallKind::Method
            };
            def.calls.push(Call { kind, segments: vec![word.to_string()], line });
            k += 1;
            continue;
        }
        if !prev_sep && !prev_dot && p.is_path_sep(k + 1) {
            // Path start: walk `a::b::c`, stop at turbofish or non-ident.
            let mut segs = vec![word.to_string()];
            let mut j = k + 1;
            while p.is_path_sep(j) {
                if p.is_punct(j + 2, '<') {
                    // turbofish `::<…>` — std generic call, skip the path.
                    segs.clear();
                    break;
                }
                let Some(next) = p.ident(j + 2) else {
                    segs.clear();
                    break;
                };
                segs.push(next.to_string());
                j += 3;
            }
            if segs.len() >= 2 && p.is_punct(j, '(') {
                def.calls.push(Call { kind: CallKind::Path, segments: segs, line });
                k = j;
                continue;
            }
            k += 1;
            continue;
        }
        if !prev_sep && !prev_dot && p.is_punct(k + 1, '(') {
            def.calls.push(Call { kind: CallKind::Bare, segments: vec![word.to_string()], line });
        }
        k += 1;
    }
    // Deterministic order and no duplicate edges from repeated sites.
    def.calls.sort_by(|a, b| {
        (&a.segments, a.kind as u8, a.line).cmp(&(&b.segments, b.kind as u8, b.line))
    });
    def.calls.dedup_by(|a, b| a.segments == b.segments && a.kind == b.kind);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        parse_file("crates/sim/src/world.rs", "sim", src)
    }

    #[test]
    fn finds_fns_and_impl_types() {
        let m = model(
            "pub struct W;\n\
             impl W {\n    pub fn run(&mut self) { self.step(); }\n    fn step(&mut self) {}\n}\n\
             fn free() { helper(); }\nfn helper() {}\n",
        );
        let names: Vec<String> = m.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["W::run", "W::step", "free", "helper"]);
        assert_eq!(m.fns[0].calls.len(), 1);
        assert_eq!(m.fns[0].calls[0].kind, CallKind::SelfMethod);
        assert_eq!(m.fns[2].calls[0].kind, CallKind::Bare);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let m = model("trait T { fn go(&self); }\nimpl T for Wide {\n    fn go(&self) {}\n}\n");
        assert_eq!(m.fns.last().expect("fn").qualified(), "Wide::go");
    }

    #[test]
    fn use_declarations_flatten() {
        let m = model(
            "use std::collections::BTreeMap;\n\
             use graf_trace::{TraceStore, span::Span as S};\n\
             fn f() {}\n",
        );
        let find = |a: &str| m.uses.iter().find(|u| u.alias == a).map(|u| u.segments.clone());
        assert_eq!(
            find("BTreeMap"),
            Some(vec!["std".into(), "collections".into(), "BTreeMap".into()])
        );
        assert_eq!(find("TraceStore"), Some(vec!["graf_trace".into(), "TraceStore".into()]));
        assert_eq!(find("S"), Some(vec!["graf_trace".into(), "span".into(), "Span".into()]));
    }

    #[test]
    fn traits_collected_per_function() {
        let m = model(
            "fn dirty() {\n\
                 let t = std::time::Instant::now();\n\
                 let r = SmallRng::seed_from_u64(7);\n\
                 std::thread::spawn(|| {});\n\
                 let v = Vec::new();\n\
             }\n\
             fn clean() { let x = 1; }\n",
        );
        let dirty = &m.fns[0].traits_;
        assert_eq!(dirty.wallclock.len(), 1);
        assert!(!dirty.rng.is_empty());
        assert_eq!(dirty.thread.len(), 1);
        assert_eq!(dirty.alloc.len(), 1);
        assert!(m.fns[1].traits_.is_empty());
    }

    #[test]
    fn path_calls_resolve_segments() {
        let m = model("fn f() { graf_sim::rng::derive(3); W::go(); }\n");
        let path_calls: Vec<&Call> =
            m.fns[0].calls.iter().filter(|c| c.kind == CallKind::Path).collect();
        assert_eq!(path_calls.len(), 2);
        assert!(path_calls.iter().any(|c| c.segments == ["graf_sim", "rng", "derive"]));
        assert!(path_calls.iter().any(|c| c.segments == ["W", "go"]));
    }

    #[test]
    fn unordered_iteration_site_attributed() {
        let m = model(
            "use std::collections::HashMap;\n\
             struct S { m: HashMap<u32, u32> }\n\
             fn f(s: &S) { for (k, v) in &s.m {} }\n",
        );
        assert_eq!(m.fns[0].traits_.unordered_iter.len(), 1);
    }

    #[test]
    fn raw_idents_normalize() {
        let m = model("fn r#type() {}\nfn f() { r#type(); }\n");
        assert_eq!(m.fns[0].name, "type");
        assert_eq!(m.fns[1].calls[0].segments, vec!["type"]);
    }

    #[test]
    fn gated_wallclock_is_not_evidence() {
        let m = model("fn f(s: &Span) { let t = s.is_recording().then(std::time::Instant::now); }");
        assert!(m.fns[0].traits_.wallclock.is_empty());
    }
}
