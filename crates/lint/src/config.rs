//! `lint.toml` parsing — a hand-rolled TOML subset (no dependencies).
//!
//! Supported grammar: `[table]` headers, `[[array-of-tables]]` headers,
//! `key = "string"` and `key = ["a", "b"]` entries (arrays may span several
//! lines and carry a trailing comma), `#` comments. That is all the
//! configuration needs; anything else is a hard error so typos fail CI
//! instead of silently disabling a lint.

/// A module region declared hot: allocation is banned inside the listed
/// functions of the file.
#[derive(Clone, Debug, Default)]
pub struct HotRegion {
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// Function names whose bodies are allocation-free hot code.
    pub functions: Vec<String>,
}

/// Configuration for the workspace-wide `graf-analyze` pass (`--analyze`).
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Deterministic entry points, as `<file>.rs::<fn>` (optionally
    /// `<file>.rs::<Type>::<fn>`). Everything transitively reachable from
    /// these must stay deterministic.
    pub entry_points: Vec<String>,
    /// Files blessed to use `std::thread`: their parallelism is known to be
    /// deterministic by construction (per-chunk seeds + ordered reduction).
    pub ordered_reduction_files: Vec<String>,
    /// Files where the unordered-float-reduction lint applies: modules that
    /// run under, or adjacent to, thread-parallel execution.
    pub parallel_adjacent_files: Vec<String>,
    /// Functions (as `<file>.rs::<fn>`) allowed to allocate even when
    /// transitively reachable from a `[[hot]]` root — recognized init,
    /// growth or first-visit paths that are cold by construction.
    pub alloc_allowed: Vec<String>,
    /// Crates the reachability checks do not descend into (telemetry and
    /// tooling whose behaviour is proven benign dynamically).
    pub exempt_crates: Vec<String>,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        Self {
            entry_points: Vec::new(),
            ordered_reduction_files: Vec::new(),
            parallel_adjacent_files: Vec::new(),
            alloc_allowed: Vec::new(),
            exempt_crates: vec!["obs".into(), "prof".into(), "bench".into(), "lint".into()],
        }
    }
}

/// The graf-lint configuration, deserialized from `lint.toml`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates exempt from `wallclock-in-deterministic-crate`.
    pub wallclock_exempt_crates: Vec<String>,
    /// Crates where `unordered-map-iteration` applies.
    pub ordered_crates: Vec<String>,
    /// Files allowed to construct RNGs from raw seeds (`unseeded-rng`).
    pub rng_home: Vec<String>,
    /// Path prefixes excluded from the workspace walk.
    pub exclude: Vec<String>,
    /// Hot regions for `hot-path-alloc`.
    pub hot: Vec<HotRegion>,
    /// Workspace-analysis configuration (`--analyze`).
    pub analyze: AnalyzeConfig,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            wallclock_exempt_crates: vec!["obs".into(), "bench".into()],
            ordered_crates: vec!["sim".into(), "trace".into(), "core".into(), "gnn".into()],
            rng_home: vec!["crates/sim/src/rng.rs".into()],
            exclude: vec!["target".into()],
            hot: Vec::new(),
            analyze: AnalyzeConfig::default(),
        }
    }
}

impl Config {
    /// Parses the TOML-subset text. Returns a message on malformed input.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config { hot: Vec::new(), ..Config::default() };
        let mut section = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // A `key = [` value may span several lines: keep consuming until
            // the brackets balance (quote-aware, so `"]"` never closes one).
            if line.contains('=') {
                let mut balance = bracket_balance(&line);
                while balance > 0 {
                    let Some((_, cont)) = lines.next() else {
                        return Err(format!("lint.toml:{lineno}: unterminated `[` array"));
                    };
                    let cont = strip_comment(cont).trim().to_string();
                    balance += bracket_balance(&cont);
                    line.push(' ');
                    line.push_str(&cont);
                }
            }
            let line = line.as_str();
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                let name = name.trim();
                if name != "hot" {
                    return Err(format!("lint.toml:{lineno}: unknown array-of-tables [[{name}]]"));
                }
                cfg.hot.push(HotRegion::default());
                section = "hot".into();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "wallclock" | "unordered-map" | "rng" | "scan" | "analyze" => {}
                    other => return Err(format!("lint.toml:{lineno}: unknown table [{other}]")),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let value = value.trim();
            match (section.as_str(), key) {
                ("wallclock", "exempt-crates") => {
                    cfg.wallclock_exempt_crates = parse_string_array(value, lineno)?
                }
                ("unordered-map", "crates") => {
                    cfg.ordered_crates = parse_string_array(value, lineno)?
                }
                ("rng", "home") => cfg.rng_home = parse_string_array(value, lineno)?,
                ("scan", "exclude") => cfg.exclude = parse_string_array(value, lineno)?,
                ("analyze", "entry-points") => {
                    cfg.analyze.entry_points = parse_string_array(value, lineno)?
                }
                ("analyze", "ordered-reduction-files") => {
                    cfg.analyze.ordered_reduction_files = parse_string_array(value, lineno)?
                }
                ("analyze", "parallel-adjacent-files") => {
                    cfg.analyze.parallel_adjacent_files = parse_string_array(value, lineno)?
                }
                ("analyze", "alloc-allowed") => {
                    cfg.analyze.alloc_allowed = parse_string_array(value, lineno)?
                }
                ("analyze", "exempt-crates") => {
                    cfg.analyze.exempt_crates = parse_string_array(value, lineno)?
                }
                ("hot", "file") => {
                    let entry = cfg
                        .hot
                        .last_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: `file` outside [[hot]]"))?;
                    entry.file = parse_string(value, lineno)?;
                }
                ("hot", "functions") => {
                    let entry = cfg.hot.last_mut().ok_or_else(|| {
                        format!("lint.toml:{lineno}: `functions` outside [[hot]]")
                    })?;
                    entry.functions = parse_string_array(value, lineno)?;
                }
                (sec, key) => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{key}` in [{sec}]"))
                }
            }
        }
        for h in &cfg.hot {
            if h.file.is_empty() {
                return Err("lint.toml: [[hot]] entry missing `file`".into());
            }
        }
        Ok(cfg)
    }
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Net `[` minus `]` count outside double-quoted strings.
fn bracket_balance(line: &str) -> i32 {
    let mut in_str = false;
    let mut prev_backslash = false;
    let mut balance = 0i32;
    for c in line.chars() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    balance
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a double-quoted string"))?;
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected `[\"a\", \"b\"]`"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| item.trim())
        .filter(|item| !item.is_empty()) // trailing comma
        .map(|item| parse_string(item, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# comment
[wallclock]
exempt-crates = ["obs", "bench"]

[unordered-map]
crates = ["sim", "trace"]

[rng]
home = ["crates/sim/src/rng.rs"]

[scan]
exclude = ["target"] # trailing comment

[[hot]]
file = "crates/nn/src/matrix.rs"
functions = ["matmul_into", "dot"]

[[hot]]
file = "crates/nn/src/mlp.rs"
functions = ["forward_into"]
"#;
        let cfg = Config::parse(text).expect("parses");
        assert_eq!(cfg.wallclock_exempt_crates, vec!["obs", "bench"]);
        assert_eq!(cfg.ordered_crates, vec!["sim", "trace"]);
        assert_eq!(cfg.hot.len(), 2);
        assert_eq!(cfg.hot[0].functions, vec!["matmul_into", "dot"]);
        assert_eq!(cfg.hot[1].file, "crates/nn/src/mlp.rs");
    }

    #[test]
    fn multi_line_array_with_trailing_comma_parses() {
        let text = r#"
[[hot]]
file = "crates/nn/src/matrix.rs"
functions = [
    "matmul_into",  # per-layer kernel
    "dot",
    "fill_zero",
]
"#;
        let cfg = Config::parse(text).expect("parses");
        assert_eq!(cfg.hot[0].functions, vec!["matmul_into", "dot", "fill_zero"]);
    }

    #[test]
    fn multi_line_array_respects_brackets_in_strings() {
        let text = "[scan]\nexclude = [\n    \"a[b\",\n    \"c]d\",\n]\n";
        let cfg = Config::parse(text).expect("parses");
        assert_eq!(cfg.exclude, vec!["a[b", "c]d"]);
    }

    #[test]
    fn unterminated_array_is_an_error() {
        assert!(Config::parse("[scan]\nexclude = [\n    \"a\",\n").is_err());
    }

    #[test]
    fn parses_analyze_section() {
        let text = r#"
[analyze]
entry-points = [
    "crates/sim/src/world.rs::run_until",
]
ordered-reduction-files = ["crates/gnn/src/model.rs"]
parallel-adjacent-files = ["crates/gnn/src/model.rs"]
alloc-allowed = ["crates/prof/src/lib.rs::add_node"]
exempt-crates = ["obs", "prof"]
"#;
        let cfg = Config::parse(text).expect("parses");
        assert_eq!(cfg.analyze.entry_points, vec!["crates/sim/src/world.rs::run_until"]);
        assert_eq!(cfg.analyze.ordered_reduction_files, vec!["crates/gnn/src/model.rs"]);
        assert_eq!(cfg.analyze.alloc_allowed, vec!["crates/prof/src/lib.rs::add_node"]);
        assert_eq!(cfg.analyze.exempt_crates, vec!["obs", "prof"]);
    }

    #[test]
    fn unknown_table_is_an_error() {
        assert!(Config::parse("[nonsense]\n").is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(Config::parse("[scan]\ntypo = [\"x\"]\n").is_err());
    }

    #[test]
    fn hot_without_file_is_an_error() {
        assert!(Config::parse("[[hot]]\nfunctions = [\"f\"]\n").is_err());
    }

    #[test]
    fn empty_array_parses() {
        let cfg = Config::parse("[scan]\nexclude = []\n").expect("parses");
        assert!(cfg.exclude.is_empty());
    }
}
