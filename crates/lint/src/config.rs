//! `lint.toml` parsing — a hand-rolled TOML subset (no dependencies).
//!
//! Supported grammar: `[table]` headers, `[[array-of-tables]]` headers,
//! `key = "string"` and `key = ["a", "b"]` entries, `#` comments. That is all
//! the configuration needs; anything else is a hard error so typos fail CI
//! instead of silently disabling a lint.

/// A module region declared hot: allocation is banned inside the listed
/// functions of the file.
#[derive(Clone, Debug, Default)]
pub struct HotRegion {
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// Function names whose bodies are allocation-free hot code.
    pub functions: Vec<String>,
}

/// The graf-lint configuration, deserialized from `lint.toml`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Crates exempt from `wallclock-in-deterministic-crate`.
    pub wallclock_exempt_crates: Vec<String>,
    /// Crates where `unordered-map-iteration` applies.
    pub ordered_crates: Vec<String>,
    /// Files allowed to construct RNGs from raw seeds (`unseeded-rng`).
    pub rng_home: Vec<String>,
    /// Path prefixes excluded from the workspace walk.
    pub exclude: Vec<String>,
    /// Hot regions for `hot-path-alloc`.
    pub hot: Vec<HotRegion>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            wallclock_exempt_crates: vec!["obs".into(), "bench".into()],
            ordered_crates: vec!["sim".into(), "trace".into(), "core".into(), "gnn".into()],
            rng_home: vec!["crates/sim/src/rng.rs".into()],
            exclude: vec!["target".into()],
            hot: Vec::new(),
        }
    }
}

impl Config {
    /// Parses the TOML-subset text. Returns a message on malformed input.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config { hot: Vec::new(), ..Config::default() };
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                let name = name.trim();
                if name != "hot" {
                    return Err(format!("lint.toml:{lineno}: unknown array-of-tables [[{name}]]"));
                }
                cfg.hot.push(HotRegion::default());
                section = "hot".into();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "wallclock" | "unordered-map" | "rng" | "scan" => {}
                    other => return Err(format!("lint.toml:{lineno}: unknown table [{other}]")),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let value = value.trim();
            match (section.as_str(), key) {
                ("wallclock", "exempt-crates") => {
                    cfg.wallclock_exempt_crates = parse_string_array(value, lineno)?
                }
                ("unordered-map", "crates") => {
                    cfg.ordered_crates = parse_string_array(value, lineno)?
                }
                ("rng", "home") => cfg.rng_home = parse_string_array(value, lineno)?,
                ("scan", "exclude") => cfg.exclude = parse_string_array(value, lineno)?,
                ("hot", "file") => {
                    let entry = cfg
                        .hot
                        .last_mut()
                        .ok_or_else(|| format!("lint.toml:{lineno}: `file` outside [[hot]]"))?;
                    entry.file = parse_string(value, lineno)?;
                }
                ("hot", "functions") => {
                    let entry = cfg.hot.last_mut().ok_or_else(|| {
                        format!("lint.toml:{lineno}: `functions` outside [[hot]]")
                    })?;
                    entry.functions = parse_string_array(value, lineno)?;
                }
                (sec, key) => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{key}` in [{sec}]"))
                }
            }
        }
        for h in &cfg.hot {
            if h.file.is_empty() {
                return Err("lint.toml: [[hot]] entry missing `file`".into());
            }
        }
        Ok(cfg)
    }
}

/// Strips a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected a double-quoted string"))?;
    Ok(inner.to_string())
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("lint.toml:{lineno}: expected `[\"a\", \"b\"]`"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|item| parse_string(item.trim(), lineno)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# comment
[wallclock]
exempt-crates = ["obs", "bench"]

[unordered-map]
crates = ["sim", "trace"]

[rng]
home = ["crates/sim/src/rng.rs"]

[scan]
exclude = ["target"] # trailing comment

[[hot]]
file = "crates/nn/src/matrix.rs"
functions = ["matmul_into", "dot"]

[[hot]]
file = "crates/nn/src/mlp.rs"
functions = ["forward_into"]
"#;
        let cfg = Config::parse(text).expect("parses");
        assert_eq!(cfg.wallclock_exempt_crates, vec!["obs", "bench"]);
        assert_eq!(cfg.ordered_crates, vec!["sim", "trace"]);
        assert_eq!(cfg.hot.len(), 2);
        assert_eq!(cfg.hot[0].functions, vec!["matmul_into", "dot"]);
        assert_eq!(cfg.hot[1].file, "crates/nn/src/mlp.rs");
    }

    #[test]
    fn unknown_table_is_an_error() {
        assert!(Config::parse("[nonsense]\n").is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        assert!(Config::parse("[scan]\ntypo = [\"x\"]\n").is_err());
    }

    #[test]
    fn hot_without_file_is_an_error() {
        assert!(Config::parse("[[hot]]\nfunctions = [\"f\"]\n").is_err());
    }

    #[test]
    fn empty_array_parses() {
        let cfg = Config::parse("[scan]\nexclude = []\n").expect("parses");
        assert!(cfg.exclude.is_empty());
    }
}
