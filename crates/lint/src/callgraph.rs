//! Best-effort intra-workspace call graph over the parsed file models.
//!
//! Nodes are non-test function definitions in lintable files; edges come
//! from [`crate::symbols`] resolution. Construction is fully deterministic:
//! files are walked in sorted order, functions in token order, and edge
//! lists are sorted and deduplicated — the `--callgraph` JSONL dump is
//! byte-identical across runs (an engine test asserts it).

use crate::parse::{FileModel, FnTraits};
use crate::symbols::{FnId, Symbols};

/// One call-graph node (a copy of what reporting needs; the models stay
/// owned by the caller).
#[derive(Clone, Debug)]
pub struct Node {
    /// Stable id: `<file>::<Type>::<fn>` or `<file>::<fn>`.
    pub id: String,
    /// Repo-relative file path.
    pub file: String,
    /// Owning crate key.
    pub krate: String,
    /// Function name (unqualified).
    pub name: String,
    /// `Type::name` or `name`.
    pub qualified: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Evidence sites collected by the parser.
    pub traits_: FnTraits,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Nodes, aligned with [`Symbols`] FnIds.
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[id]` is sorted and deduplicated.
    pub edges: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Builds the graph from parsed models (files must be pre-sorted).
    pub fn build(files: &[FileModel]) -> CallGraph {
        let symbols = Symbols::build(files);
        let mut nodes = Vec::with_capacity(symbols.ids.len());
        let mut edges = Vec::with_capacity(symbols.ids.len());
        for id in 0..symbols.ids.len() {
            let (file, def) = symbols.def(files, id);
            nodes.push(Node {
                id: symbols.node_ids[id].clone(),
                file: file.path.clone(),
                krate: file.krate.clone(),
                name: def.name.clone(),
                qualified: def.qualified(),
                line: def.line,
                traits_: def.traits_.clone(),
            });
            let (fi, _) = symbols.ids[id];
            let mut out: Vec<FnId> = Vec::new();
            for call in &def.calls {
                out.extend(symbols.resolve_call(files, fi, def, call));
            }
            out.sort_unstable();
            out.dedup();
            // Self-loops carry no reachability information.
            out.retain(|&t| t != id);
            edges.push(out);
        }
        CallGraph { nodes, edges }
    }

    /// Renders the graph as JSONL: one node per line, sorted by id, with
    /// sorted callee ids and the evidence-trait summary.
    pub fn render_jsonl(&self) -> String {
        let mut order: Vec<FnId> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| self.nodes[a].id.cmp(&self.nodes[b].id));
        let mut out = String::new();
        for id in order {
            let n = &self.nodes[id];
            let mut callees: Vec<&str> =
                self.edges[id].iter().map(|&t| self.nodes[t].id.as_str()).collect();
            callees.sort_unstable();
            let mut traits_: Vec<String> = Vec::new();
            for (kind, sites) in [
                ("wallclock", &n.traits_.wallclock),
                ("rng", &n.traits_.rng),
                ("thread", &n.traits_.thread),
                ("unordered_iter", &n.traits_.unordered_iter),
                ("alloc", &n.traits_.alloc),
            ] {
                for s in sites {
                    traits_.push(format!(
                        "{{\"kind\": \"{kind}\", \"what\": \"{}\", \"line\": {}}}",
                        crate::json_escape(&s.what),
                        s.line
                    ));
                }
            }
            out.push_str(&format!(
                "{{\"id\": \"{}\", \"file\": \"{}\", \"crate\": \"{}\", \"line\": {}, \
                 \"calls\": [{}], \"traits\": [{}]}}\n",
                crate::json_escape(&n.id),
                crate::json_escape(&n.file),
                crate::json_escape(&n.krate),
                n.line,
                callees
                    .iter()
                    .map(|c| format!("\"{}\"", crate::json_escape(c)))
                    .collect::<Vec<_>>()
                    .join(", "),
                traits_.join(", "),
            ));
        }
        out
    }

    /// Strongly connected components (iterative Tarjan), largest first;
    /// ties broken by the smallest member id for determinism. Singleton
    /// components without a self-cycle are omitted.
    pub fn sccs(&self) -> Vec<Vec<FnId>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<FnId> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<FnId>> = Vec::new();

        // Iterative Tarjan: (node, edge cursor) frames.
        let mut frames: Vec<(FnId, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor < self.edges[v].len() {
                    let w = self.edges[v][*cursor];
                    *cursor += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 || self.edges[v].contains(&v) {
                            comp.sort_unstable();
                            comps.push(comp);
                        }
                    }
                }
            }
        }
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph(srcs: &[(&str, &str, &str)]) -> CallGraph {
        let files: Vec<FileModel> =
            srcs.iter().map(|(rel, krate, src)| parse_file(rel, krate, src)).collect();
        CallGraph::build(&files)
    }

    #[test]
    fn edges_cross_crates() {
        let g = graph(&[
            ("crates/sim/src/world.rs", "sim", "pub fn run() { graf_trace::push_raw(); }\n"),
            ("crates/trace/src/lib.rs", "trace", "pub fn push_raw() {}\n"),
        ]);
        let run = g.nodes.iter().position(|n| n.name == "run").expect("run node");
        assert_eq!(g.edges[run].len(), 1);
        assert_eq!(g.nodes[g.edges[run][0]].name, "push_raw");
    }

    #[test]
    fn jsonl_is_deterministic_and_sorted() {
        let srcs = [
            ("crates/sim/src/b.rs", "sim", "pub fn beta() { alpha(); }\npub fn alpha() {}\n"),
            ("crates/sim/src/a.rs", "sim", "pub fn gamma() { beta(); }\n"),
        ];
        let a = graph(&srcs).render_jsonl();
        let b = graph(&srcs).render_jsonl();
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "JSONL must be sorted by node id");
    }

    #[test]
    fn sccs_find_cycles() {
        let g = graph(&[(
            "crates/sim/src/world.rs",
            "sim",
            "pub fn a() { b(); }\npub fn b() { a(); }\npub fn c() {}\n",
        )]);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 2);
    }

    #[test]
    fn self_recursion_is_a_singleton_scc() {
        let g = graph(&[("crates/sim/src/world.rs", "sim", "pub fn f() { f(); }\n")]);
        // Self-loops are dropped from edges, so no SCC is reported — the
        // graph stays acyclic for reachability purposes.
        assert!(g.sccs().is_empty());
    }
}
