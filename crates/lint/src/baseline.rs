//! Baseline file support: CI fails only on *new* findings.
//!
//! A baseline entry fingerprints a finding as `(lint, path, fnv1a64(snippet))`
//! with a count, so findings survive unrelated line-number shifts but a new
//! occurrence of the same pattern in the same file is still caught. The
//! committed `lint.baseline` is expected to be empty — real exceptions belong
//! in `// graf-lint: allow(…)` annotations next to the code, where the
//! justification lives — but the mechanism keeps CI green while a large
//! refactor's findings are being worked off.

use std::collections::BTreeMap;

use crate::lints::Finding;

/// FNV-1a 64-bit hash.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parsed baseline: fingerprint → allowed count.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<(String, String, u64), u32>,
}

impl Baseline {
    /// Parses the baseline text. Lines: `lint<TAB>path<TAB>hex-hash<TAB>count`;
    /// `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(lint), Some(path), Some(hash), Some(count)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("baseline line {}: expected 4 tab-separated fields", idx + 1));
            };
            let hash = u64::from_str_radix(hash, 16)
                .map_err(|_| format!("baseline line {}: bad hash `{hash}`", idx + 1))?;
            let count: u32 = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
            *counts.entry((lint.to_string(), path.to_string(), hash)).or_insert(0) += count;
        }
        Ok(Baseline { counts })
    }

    /// Renders findings as baseline text (sorted, stable).
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(String, String, u64), u32> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.lint.to_string(), f.path.clone(), fnv1a64(&f.snippet)))
                .or_insert(0) += 1;
        }
        let mut out = String::from(
            "# graf-lint baseline v1 — lint<TAB>path<TAB>snippet-hash<TAB>count\n\
             # Prefer `// graf-lint: allow(<lint>, <why>)` annotations over baselining.\n",
        );
        for ((lint, path, hash), count) in counts {
            out.push_str(&format!("{lint}\t{path}\t{hash:016x}\t{count}\n"));
        }
        out
    }

    /// Splits `findings` into those covered by the baseline and the new ones.
    pub fn partition<'f>(&self, findings: &'f [Finding]) -> (Vec<&'f Finding>, Vec<&'f Finding>) {
        let mut seen: BTreeMap<(String, String, u64), u32> = BTreeMap::new();
        let mut baselined = Vec::new();
        let mut new = Vec::new();
        for f in findings {
            let key = (f.lint.to_string(), f.path.clone(), fnv1a64(&f.snippet));
            let idx = seen.entry(key.clone()).or_insert(0);
            let allowed = self.counts.get(&key).copied().unwrap_or(0);
            if *idx < allowed {
                baselined.push(f);
            } else {
                new.push(f);
            }
            *idx += 1;
        }
        (baselined, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(lint: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            lint,
            path: path.into(),
            line: 1,
            message: String::new(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn round_trip_covers_all_findings() {
        let findings = vec![
            f("unwrap-in-lib", "crates/a/src/lib.rs", "x.unwrap()"),
            f("unwrap-in-lib", "crates/a/src/lib.rs", "x.unwrap()"),
            f("hot-path-alloc", "crates/b/src/lib.rs", "v.clone()"),
        ];
        let text = Baseline::render(&findings);
        let base = Baseline::parse(&text).expect("parses");
        let (covered, new) = base.partition(&findings);
        assert_eq!(covered.len(), 3);
        assert!(new.is_empty());
    }

    #[test]
    fn extra_occurrence_is_new() {
        let one = vec![f("unwrap-in-lib", "crates/a/src/lib.rs", "x.unwrap()")];
        let base = Baseline::parse(&Baseline::render(&one)).expect("parses");
        let two = vec![one[0].clone(), one[0].clone()];
        let (covered, new) = base.partition(&two);
        assert_eq!(covered.len(), 1);
        assert_eq!(new.len(), 1);
    }

    #[test]
    fn line_shift_does_not_invalidate_baseline() {
        let mut a = f("unwrap-in-lib", "crates/a/src/lib.rs", "x.unwrap()");
        let base = Baseline::parse(&Baseline::render(std::slice::from_ref(&a))).expect("parses");
        a.line = 99; // the same code moved
        let (covered, new) = base.partition(std::slice::from_ref(&a));
        assert_eq!(covered.len(), 1);
        assert!(new.is_empty());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("only-two\tfields\n").is_err());
        assert!(Baseline::parse("a\tb\tnot-hex\t1\n").is_err());
    }

    #[test]
    fn empty_baseline_marks_everything_new() {
        let base = Baseline::default();
        let findings = vec![f("unwrap-in-lib", "crates/a/src/lib.rs", "x.unwrap()")];
        let (covered, new) = base.partition(&findings);
        assert!(covered.is_empty());
        assert_eq!(new.len(), 1);
    }
}
