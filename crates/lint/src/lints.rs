//! The lint rules and per-file driver.
//!
//! Every rule works on the lexed token stream (see [`crate::lexer`]), so
//! matches inside strings, comments and `#[cfg(test)]` items never fire.
//! Findings can be suppressed with an annotation on the same or preceding
//! line:
//!
//! ```text
//! // graf-lint: allow(<lint>, <justification>)
//! ```
//!
//! where `<lint>` is the full lint name or its short alias (`wallclock`,
//! `unordered-map`, `hot-alloc`, `unwrap`, `rng`). An annotation without a
//! justification, or naming an unknown lint, is itself a finding
//! (`bad-annotation`) — exceptions must stay explained.

use crate::config::Config;
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// `Instant::now`/`SystemTime` in a deterministic crate.
pub const WALLCLOCK: &str = "wallclock-in-deterministic-crate";
/// Iterating a `HashMap`/`HashSet` where ordering feeds outputs.
pub const UNORDERED_MAP: &str = "unordered-map-iteration";
/// Heap allocation inside a declared hot function.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// `.unwrap()` in library code.
pub const UNWRAP_IN_LIB: &str = "unwrap-in-lib";
/// RNG construction outside the seeded `sim::rng` home.
pub const UNSEEDED_RNG: &str = "unseeded-rng";
/// Malformed or unjustified `graf-lint: allow(…)` annotation.
pub const BAD_ANNOTATION: &str = "bad-annotation";
/// `Ordering::Relaxed` on an atomic that may feed a decision.
pub const RELAXED_ATOMIC: &str = "relaxed-atomic";
/// An `unsafe` token without a `// graf-lint: safety(<why>)` justification.
pub const UNSAFE_NO_SAFETY: &str = "unsafe-no-safety";
/// Unordered `+=` float accumulation in a loop of a parallel-adjacent module.
pub const FLOAT_REDUCTION: &str = "unordered-float-reduction";
/// A suppression annotation whose lint no longer fires on that snippet.
pub const STALE_ALLOW: &str = "stale-allow";
/// Non-deterministic call reachable from a deterministic entry point
/// (reported by the `--analyze` pass; see [`crate::taint`]).
pub const DETERMINISM_TAINT: &str = "determinism-taint";
/// Allocation transitively reachable from a `[[hot]]` root
/// (reported by the `--analyze` pass; see [`crate::taint`]).
pub const TRANSITIVE_HOT_ALLOC: &str = "transitive-hot-alloc";

/// All lint names, for `--help` and validation.
pub const ALL_LINTS: [&str; 12] = [
    WALLCLOCK,
    UNORDERED_MAP,
    HOT_PATH_ALLOC,
    UNWRAP_IN_LIB,
    UNSEEDED_RNG,
    BAD_ANNOTATION,
    RELAXED_ATOMIC,
    UNSAFE_NO_SAFETY,
    FLOAT_REDUCTION,
    STALE_ALLOW,
    DETERMINISM_TAINT,
    TRANSITIVE_HOT_ALLOC,
];

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Lint name (one of [`ALL_LINTS`]).
    pub lint: &'static str,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line (baseline fingerprints hash this, so findings
    /// survive unrelated line-number shifts).
    pub snippet: String,
}

/// Resolves an annotation name (full or alias) to the canonical lint name.
fn canonical_lint(name: &str) -> Option<&'static str> {
    match name {
        "wallclock" | WALLCLOCK => Some(WALLCLOCK),
        "unordered-map" | UNORDERED_MAP => Some(UNORDERED_MAP),
        "hot-alloc" | HOT_PATH_ALLOC => Some(HOT_PATH_ALLOC),
        "unwrap" | UNWRAP_IN_LIB => Some(UNWRAP_IN_LIB),
        "rng" | UNSEEDED_RNG => Some(UNSEEDED_RNG),
        "relaxed" | RELAXED_ATOMIC => Some(RELAXED_ATOMIC),
        "unsafe" | UNSAFE_NO_SAFETY => Some(UNSAFE_NO_SAFETY),
        "float-reduction" | FLOAT_REDUCTION => Some(FLOAT_REDUCTION),
        "taint" | DETERMINISM_TAINT => Some(DETERMINISM_TAINT),
        "transitive-alloc" | TRANSITIVE_HOT_ALLOC => Some(TRANSITIVE_HOT_ALLOC),
        _ => None,
    }
}

/// One parsed suppression annotation (`allow(…)` or `safety(…)`), with a
/// liveness flag: an annotation that never suppresses a finding is stale.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line the annotation sits on (covers this line and the next).
    pub line: u32,
    /// Canonical lint name it suppresses.
    pub lint: &'static str,
    /// The justification text.
    pub reason: String,
    /// `true` for the `safety(<why>)` form (unsafe-block justifications).
    pub safety: bool,
    /// Set when the annotation suppressed at least one raw finding.
    pub used: bool,
}

/// Per-file lint output: allow-filtered findings plus the annotations
/// themselves (for the suppression inventory and stale-allow detection).
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings that survived suppression, sorted by (line, lint).
    pub findings: Vec<Finding>,
    /// Every suppression annotation in the file, with liveness.
    pub allows: Vec<Allow>,
}

/// How a file participates in linting: `Some(crate-key)` for library code.
pub(crate) fn classify(rel: &str) -> Option<&str> {
    let test_like = rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/");
    if test_like {
        return None;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, tail) = rest.split_once('/')?;
        if tail.starts_with("src/") {
            return Some(krate);
        }
        return None;
    }
    if rel.starts_with("src/") {
        return Some("graf");
    }
    None
}

/// Token-stream view with the little helpers the rules share.
struct Toks<'s> {
    src: &'s str,
    t: &'s [Token],
}

impl<'s> Toks<'s> {
    fn text(&self, i: usize) -> &'s str {
        let t = &self.t[i];
        &self.src[t.start..t.end]
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.t.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && self.text(i).starts_with(c)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        self.t.get(i).is_some_and(|t| t.kind == TokenKind::Ident) && self.text(i) == s
    }

    fn ident(&self, i: usize) -> Option<&'s str> {
        let t = self.t.get(i)?;
        (t.kind == TokenKind::Ident).then(|| &self.src[t.start..t.end])
    }

    fn in_test(&self, i: usize) -> bool {
        self.t[i].in_test
    }

    fn line(&self, i: usize) -> u32 {
        self.t[i].line
    }
}

/// Byte offsets of each line start, for snippet extraction.
struct Lines<'s> {
    src: &'s str,
    starts: Vec<usize>,
}

impl<'s> Lines<'s> {
    fn new(src: &'s str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        Self { src, starts }
    }

    fn snippet(&self, line: u32) -> &'s str {
        let idx = (line as usize).saturating_sub(1);
        let start = *self.starts.get(idx).unwrap_or(&self.src.len());
        let end = self.starts.get(idx + 1).map_or(self.src.len(), |&e| e.saturating_sub(1));
        self.src[start..end.max(start)].trim()
    }
}

/// Lints one file. `rel` is the repo-relative path with forward slashes.
pub fn lint_file(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    lint_file_full(rel, src, cfg).findings
}

/// [`lint_file`] plus the annotation inventory (for `--json` suppressions and
/// stale-allow detection, which needs the `--analyze` pass to complete first).
pub fn lint_file_full(rel: &str, src: &str, cfg: &Config) -> FileLint {
    let Some(krate) = classify(rel) else {
        return FileLint::default();
    };
    let lexed = lex(src);
    if lexed.file_is_test {
        return FileLint::default();
    }
    let lines = Lines::new(src);
    let toks = Toks { src, t: &lexed.tokens };

    let (mut allows, mut findings) = parse_annotations(rel, src, &lexed, &lines);

    let mut raw = Vec::new();
    if !cfg.wallclock_exempt_crates.iter().any(|c| c == krate) && krate != "lint" {
        wallclock(rel, &toks, &lines, &mut raw);
    }
    if cfg.ordered_crates.iter().any(|c| c == krate) {
        unordered_map(rel, &toks, &lines, &mut raw);
    }
    unwrap_in_lib(rel, &toks, &lines, &mut raw);
    if !cfg.rng_home.iter().any(|p| p == rel) && krate != "lint" {
        unseeded_rng(rel, &toks, &lines, &mut raw);
    }
    for region in cfg.hot.iter().filter(|h| h.file == rel) {
        hot_path_alloc(rel, &toks, &lines, &region.functions, &mut raw);
    }
    relaxed_atomic(rel, &toks, &lines, &mut raw);
    unsafe_no_safety(rel, &toks, &lines, &mut raw);
    if cfg.analyze.parallel_adjacent_files.iter().any(|f| f == rel) {
        float_reduction(rel, &toks, &lines, &mut raw);
    }

    findings.extend(raw.into_iter().filter(|f| !suppress(&mut allows, f)));
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    FileLint { findings, allows }
}

/// Applies the first matching annotation to `f`, marking it live. An
/// annotation covers its own line and the next one.
pub fn suppress(allows: &mut [Allow], f: &Finding) -> bool {
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.lint == f.lint && (a.line == f.line || a.line + 1 == f.line) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

fn finding(
    lint: &'static str,
    rel: &str,
    line: u32,
    lines: &Lines<'_>,
    message: String,
) -> Finding {
    Finding { lint, path: rel.to_string(), line, message, snippet: lines.snippet(line).to_string() }
}

/// Parses `graf-lint: allow(lint, reason)` and `graf-lint: safety(reason)`
/// annotations from line comments. Returns (annotations, bad-annotation
/// findings).
fn parse_annotations(
    rel: &str,
    src: &str,
    lexed: &Lexed,
    lines: &Lines<'_>,
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        let text = &src[c.start..c.end];
        // The span starts after the `//`, so doc comments (`///`, `//!`)
        // begin with `/` or `!`. They describe the annotation grammar in
        // prose and never carry a live annotation.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(pos) = text.find("graf-lint:") else {
            continue;
        };
        let rest = text[pos + "graf-lint:".len()..].trim();
        // `safety(<why>)` — the unsafe-block justification form.
        if let Some(inner) =
            rest.strip_prefix("safety(").and_then(|r| r.rfind(')').map(|close| &r[..close]))
        {
            let reason = inner.trim();
            if reason.is_empty() {
                bad.push(finding(
                    BAD_ANNOTATION,
                    rel,
                    c.line,
                    lines,
                    "safety() needs a justification: safety(<why this unsafe is sound>)".into(),
                ));
            } else {
                allows.push(Allow {
                    line: c.line,
                    lint: UNSAFE_NO_SAFETY,
                    reason: reason.to_string(),
                    safety: true,
                    used: false,
                });
            }
            continue;
        }
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.find(')').map(|close| &r[..close]))
            .map(|inner| match inner.split_once(',') {
                Some((name, reason)) => (name.trim(), reason.trim()),
                None => (inner.trim(), ""),
            });
        match parsed {
            None => bad.push(finding(
                BAD_ANNOTATION,
                rel,
                c.line,
                lines,
                "expected `graf-lint: allow(<lint>, <justification>)`".into(),
            )),
            Some((name, reason)) => match canonical_lint(name) {
                None => bad.push(finding(
                    BAD_ANNOTATION,
                    rel,
                    c.line,
                    lines,
                    format!("unknown lint `{name}` in allow annotation"),
                )),
                Some(_) if reason.is_empty() => bad.push(finding(
                    BAD_ANNOTATION,
                    rel,
                    c.line,
                    lines,
                    format!("allow({name}) needs a justification: allow({name}, <why>)"),
                )),
                Some(lint) => allows.push(Allow {
                    line: c.line,
                    lint,
                    reason: reason.to_string(),
                    safety: false,
                    used: false,
                }),
            },
        }
    }
    (allows, bad)
}

/// `wallclock-in-deterministic-crate`: `Instant::now` / `SystemTime` outside
/// the exempt crates, unless gated by `is_recording()` on the same line.
fn wallclock(rel: &str, toks: &Toks<'_>, lines: &Lines<'_>, out: &mut Vec<Finding>) {
    let mut gated_lines = Vec::new();
    for i in 0..toks.t.len() {
        if toks.is_ident(i, "is_recording") {
            gated_lines.push(toks.line(i));
        }
    }
    for i in 0..toks.t.len() {
        if toks.in_test(i) {
            continue;
        }
        let hit = if toks.is_ident(i, "Instant")
            && toks.is_punct(i + 1, ':')
            && toks.is_punct(i + 2, ':')
            && toks.is_ident(i + 3, "now")
        {
            Some("Instant::now")
        } else if toks.is_ident(i, "SystemTime") {
            Some("SystemTime")
        } else {
            None
        };
        if let Some(what) = hit {
            let line = toks.line(i);
            if gated_lines.contains(&line) {
                continue;
            }
            out.push(finding(
                WALLCLOCK,
                rel,
                line,
                lines,
                format!("{what} in a deterministic crate; gate behind is_recording() or route through sim time"),
            ));
        }
    }
}

/// `unordered-map-iteration`: iterating a `HashMap`/`HashSet` declared in
/// this file, in a crate whose aggregate outputs must be order-stable.
fn unordered_map(rel: &str, toks: &Toks<'_>, lines: &Lines<'_>, out: &mut Vec<Finding>) {
    // Pass A: names declared with a HashMap/HashSet type or initializer.
    let mut tracked: Vec<&str> = Vec::new();
    for i in 0..toks.t.len() {
        if !(toks.is_ident(i, "HashMap") || toks.is_ident(i, "HashSet")) {
            continue;
        }
        // Walk back over `::`-joined path segments (std::collections::…).
        let mut j = i;
        while j >= 3
            && toks.is_punct(j - 1, ':')
            && toks.is_punct(j - 2, ':')
            && toks.ident(j - 3).is_some()
        {
            j -= 3;
        }
        // `name: [path::]HashMap<…>` — a field or typed binding.
        if j >= 2 && toks.is_punct(j - 1, ':') && !toks.is_punct(j - 2, ':') {
            if let Some(name) = toks.ident(j - 2) {
                tracked.push(name);
                continue;
            }
        }
        // `name = HashMap::new()` — an untyped binding.
        if j >= 2 && toks.is_punct(j - 1, '=') {
            if let Some(name) = toks.ident(j - 2) {
                tracked.push(name);
            }
        }
    }
    if tracked.is_empty() {
        return;
    }

    const ITER_METHODS: [&str; 7] =
        ["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain"];
    let mut local: Vec<Finding> = Vec::new();
    let mut i = 0;
    while i < toks.t.len() {
        if toks.in_test(i) {
            i += 1;
            continue;
        }
        // `for pat in <expr containing tracked name> {`
        if toks.is_ident(i, "for") {
            let mut j = i + 1;
            while j < toks.t.len() && !toks.is_ident(j, "in") && !toks.is_punct(j, '{') {
                j += 1;
            }
            if toks.is_ident(j, "in") {
                let mut k = j + 1;
                while k < toks.t.len() && !toks.is_punct(k, '{') {
                    if let Some(name) = toks.ident(k) {
                        if tracked.contains(&name) {
                            local.push(finding(
                                UNORDERED_MAP,
                                rel,
                                toks.line(i),
                                lines,
                                format!("iterating unordered map/set `{name}`; use BTreeMap or sort keys first"),
                            ));
                            break;
                        }
                    }
                    k += 1;
                }
            }
            i += 1;
            continue;
        }
        // `name.iter()` and friends on a tracked name.
        if let Some(m) = toks.ident(i) {
            if ITER_METHODS.contains(&m)
                && toks.is_punct(i + 1, '(')
                && i >= 2
                && toks.is_punct(i - 1, '.')
            {
                if let Some(name) = toks.ident(i - 2) {
                    if tracked.contains(&name) {
                        local.push(finding(
                            UNORDERED_MAP,
                            rel,
                            toks.line(i),
                            lines,
                            format!("`{name}.{m}()` iterates an unordered map/set; use BTreeMap or sort keys first"),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
    // The for-scan and the method-scan can both hit the same construct
    // (`for v in m.values()`); report each line once.
    local.dedup_by(|a, b| a.line == b.line);
    out.append(&mut local);
}

/// `unwrap-in-lib`: `.unwrap()` in library code — propagate or `expect` with
/// an invariant message instead.
fn unwrap_in_lib(rel: &str, toks: &Toks<'_>, lines: &Lines<'_>, out: &mut Vec<Finding>) {
    for i in 1..toks.t.len() {
        if toks.in_test(i) {
            continue;
        }
        if toks.is_ident(i, "unwrap") && toks.is_punct(i - 1, '.') && toks.is_punct(i + 1, '(') {
            out.push(finding(
                UNWRAP_IN_LIB,
                rel,
                toks.line(i),
                lines,
                "`.unwrap()` in library code; propagate the error or use `expect(\"<invariant>\")`"
                    .into(),
            ));
        }
    }
}

/// `unseeded-rng`: constructing RNGs outside the seeded `sim::rng` home.
fn unseeded_rng(rel: &str, toks: &Toks<'_>, lines: &Lines<'_>, out: &mut Vec<Finding>) {
    const BANNED: [&str; 10] = [
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "seed_from_u64",
        "from_seed",
        "from_rng",
        "SmallRng",
        "StdRng",
    ];
    for i in 0..toks.t.len() {
        if toks.in_test(i) {
            continue;
        }
        if let Some(name) = toks.ident(i) {
            if BANNED.contains(&name) {
                out.push(finding(
                    UNSEEDED_RNG,
                    rel,
                    toks.line(i),
                    lines,
                    format!("`{name}`: derive randomness from sim::rng::DetRng streams instead"),
                ));
            }
        }
    }
}

/// `hot-path-alloc`: allocation inside a function declared hot in `lint.toml`.
fn hot_path_alloc(
    rel: &str,
    toks: &Toks<'_>,
    lines: &Lines<'_>,
    functions: &[String],
    out: &mut Vec<Finding>,
) {
    const ALLOC_METHODS: [&str; 5] = ["clone", "to_vec", "to_owned", "to_string", "collect"];
    let mut i = 0;
    while i < toks.t.len() {
        if !toks.is_ident(i, "fn") || toks.in_test(i) {
            i += 1;
            continue;
        }
        let Some(name) = toks.ident(i + 1) else {
            i += 1;
            continue;
        };
        if !functions.iter().any(|f| f == name) {
            i += 1;
            continue;
        }
        // Body: first `{` after the signature, to its matching `}`.
        let mut j = i + 2;
        while j < toks.t.len() && !toks.is_punct(j, '{') {
            j += 1;
        }
        let mut depth = 0i32;
        let mut end = j;
        while end < toks.t.len() {
            if toks.is_punct(end, '{') {
                depth += 1;
            } else if toks.is_punct(end, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        for k in j..end.min(toks.t.len()) {
            let Some(word) = toks.ident(k) else {
                continue;
            };
            let hit = if ALLOC_METHODS.contains(&word)
                && k >= 1
                && toks.is_punct(k - 1, '.')
                && (toks.is_punct(k + 1, '(')
                    || (toks.is_punct(k + 1, ':') && toks.is_punct(k + 2, ':')))
            {
                Some(format!(".{word}()"))
            } else if (word == "Vec" || word == "Box" || word == "String")
                && toks.is_punct(k + 1, ':')
                && toks.is_punct(k + 2, ':')
                && matches!(toks.ident(k + 3), Some("new" | "with_capacity" | "from"))
            {
                toks.ident(k + 3).map(|m| format!("{word}::{m}"))
            } else if (word == "format" || word == "vec") && toks.is_punct(k + 1, '!') {
                Some(format!("{word}!"))
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(finding(
                    HOT_PATH_ALLOC,
                    rel,
                    toks.line(k),
                    lines,
                    format!("{what} inside hot function `{name}`; hot kernels must reuse caller buffers"),
                ));
            }
        }
        i = end + 1;
    }
}

/// `relaxed-atomic`: `Ordering::Relaxed` in linted code. Relaxed loads and
/// stores are invisible to the determinism contract until they feed a
/// decision; every use must either be strengthened or carry an allow with the
/// argument for why the value never influences an output.
fn relaxed_atomic(rel: &str, toks: &Toks<'_>, lines: &Lines<'_>, out: &mut Vec<Finding>) {
    for i in 0..toks.t.len() {
        if toks.in_test(i) {
            continue;
        }
        if toks.is_ident(i, "Relaxed") {
            out.push(finding(
                RELAXED_ATOMIC,
                rel,
                toks.line(i),
                lines,
                "`Ordering::Relaxed` on shared state; strengthen the ordering or justify why \
                 the value never flows into a decision"
                    .into(),
            ));
        }
    }
}

/// `unsafe-no-safety`: every `unsafe` token needs a
/// `// graf-lint: safety(<why>)` justification on the same or preceding line.
/// The annotations double as the workspace's unsafe inventory (`--json`).
fn unsafe_no_safety(rel: &str, toks: &Toks<'_>, lines: &Lines<'_>, out: &mut Vec<Finding>) {
    for i in 0..toks.t.len() {
        if toks.in_test(i) {
            continue;
        }
        if toks.is_ident(i, "unsafe") {
            out.push(finding(
                UNSAFE_NO_SAFETY,
                rel,
                toks.line(i),
                lines,
                "`unsafe` without a safety justification; add `// graf-lint: safety(<why>)`".into(),
            ));
        }
    }
}

/// `unordered-float-reduction`: `+=` accumulation into a float inside a loop
/// of a parallel-adjacent module. Float addition is not associative, so any
/// accumulation order that could vary with thread count must be routed
/// through the ordered-reduction helpers (or justified as chunk-local).
fn float_reduction(rel: &str, toks: &Toks<'_>, lines: &Lines<'_>, out: &mut Vec<Finding>) {
    // Pass A: names with float-typed declarations (`x: f64`) or float-literal
    // initializers (`x = 0.0`). Fields and locals both land here; the check
    // is name-based, like the unordered-map tracker.
    let mut float_names: Vec<&str> = Vec::new();
    for i in 0..toks.t.len() {
        let Some(name) = toks.ident(i) else {
            continue;
        };
        if toks.is_punct(i + 1, ':')
            && !toks.is_punct(i + 2, ':')
            && matches!(toks.ident(i + 2), Some("f32" | "f64"))
        {
            float_names.push(name);
        }
        if toks.is_punct(i + 1, '=') && !toks.is_punct(i + 2, '=') {
            if let Some(t) = toks.t.get(i + 2) {
                if t.kind == TokenKind::Number {
                    let txt = &toks.src[t.start..t.end];
                    if txt.contains('.') || txt.ends_with("f32") || txt.ends_with("f64") {
                        float_names.push(name);
                    }
                }
            }
        }
    }
    if float_names.is_empty() {
        return;
    }

    // Pass B: `+=` under loop braces. Brace/loop tracking runs over every
    // token (test regions keep braces balanced); only non-test sites report.
    let mut stack: Vec<bool> = Vec::new();
    let mut loop_depth = 0usize;
    let mut pending_loop = false;
    let mut pending_impl = false;
    for i in 0..toks.t.len() {
        match toks.ident(i) {
            Some("impl") => pending_impl = true,
            // `impl Trait for Type` and HRTB `for<'a>` are not loops.
            Some("for") if !pending_impl && !toks.is_punct(i + 1, '<') => pending_loop = true,
            Some("while" | "loop") => pending_loop = true,
            _ => {}
        }
        if toks.is_punct(i, '{') {
            stack.push(pending_loop);
            if pending_loop {
                loop_depth += 1;
            }
            pending_loop = false;
            pending_impl = false;
        } else if toks.is_punct(i, '}') {
            if stack.pop() == Some(true) {
                loop_depth = loop_depth.saturating_sub(1);
            }
        } else if toks.is_punct(i, ';') {
            pending_loop = false;
            pending_impl = false;
        }
        if loop_depth == 0 || toks.in_test(i) {
            continue;
        }
        // `name += …` with adjacent `+` `=`.
        if toks.is_punct(i, '+')
            && toks.is_punct(i + 1, '=')
            && toks.t[i + 1].start == toks.t[i].end
            && i >= 1
        {
            if let Some(name) = toks.ident(i - 1) {
                if float_names.contains(&name) {
                    out.push(finding(
                        FLOAT_REDUCTION,
                        rel,
                        toks.line(i),
                        lines,
                        format!(
                            "float accumulation `{name} += …` in a loop of a parallel-adjacent \
                             module; route through the ordered reduction or justify the order"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_hot(file: &str, functions: &[&str]) -> Config {
        let mut cfg = Config::default();
        cfg.hot.push(crate::config::HotRegion {
            file: file.into(),
            functions: functions.iter().map(|s| s.to_string()).collect(),
        });
        cfg
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/nn/src/matrix.rs"), Some("nn"));
        assert_eq!(classify("src/lib.rs"), Some("graf"));
        assert_eq!(classify("crates/nn/tests/sanitize.rs"), None);
        assert_eq!(classify("crates/nn/benches/kernels.rs"), None);
        assert_eq!(classify("examples/pilot.rs"), None);
        assert_eq!(classify("tests/determinism.rs"), None);
        assert_eq!(classify("scripts/gen.rs"), None);
    }

    #[test]
    fn wallclock_fires_and_gating_suppresses() {
        let cfg = Config::default();
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let f = lint_file("crates/sim/src/world.rs", src, &cfg);
        assert_eq!(lints_of(&f), vec![WALLCLOCK]);

        let gated = "fn f(s: &Span) { let t0 = s.is_recording().then(std::time::Instant::now); }";
        assert!(lint_file("crates/sim/src/world.rs", gated, &cfg).is_empty());

        // Exempt crate.
        assert!(lint_file("crates/obs/src/lib.rs", src, &cfg).is_empty());
    }

    #[test]
    fn wallclock_in_string_comment_or_test_does_not_fire() {
        let cfg = Config::default();
        let src = r#"
fn f() {
    let s = "Instant::now()";
    // Instant::now()
}
#[cfg(test)]
mod tests {
    fn t() { let x = std::time::Instant::now(); }
}
"#;
        assert!(lint_file("crates/sim/src/world.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unordered_map_detects_for_and_methods() {
        let cfg = Config::default();
        let src = "
use std::collections::HashMap;
struct S { profiles: HashMap<u16, u64> }
fn f(s: &S) {
    for (k, v) in &s.profiles {}
    let ids: Vec<u16> = s.profiles.keys().cloned().collect();
}
fn g() {
    let mut local = HashMap::new();
    local.insert(1, 2);
    for v in local.values() {}
}
";
        let f = lint_file("crates/trace/src/stats.rs", src, &cfg);
        assert_eq!(lints_of(&f), vec![UNORDERED_MAP; 3]);
    }

    #[test]
    fn unordered_map_lookup_only_is_clean() {
        let cfg = Config::default();
        let src = "
use std::collections::HashMap;
struct S { open: HashMap<u64, u32> }
fn f(s: &mut S) -> Option<u32> { s.open.remove(&3) }
";
        assert!(lint_file("crates/trace/src/store.rs", src, &cfg).is_empty());
    }

    #[test]
    fn unordered_map_outside_configured_crates_is_clean() {
        let cfg = Config::default();
        let src =
            "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) { for x in m.values() {} }";
        // `metrics` is not in the ordered-crates list.
        let m =
            "fn f() { let m = std::collections::HashMap::<u8,u8>::new(); for x in m.values() {} }";
        assert!(lint_file("crates/metrics/src/lib.rs", src, &cfg).is_empty());
        assert!(lint_file("crates/metrics/src/lib.rs", m, &cfg).is_empty());
    }

    #[test]
    fn unwrap_fires_in_lib_not_in_tests() {
        let cfg = Config::default();
        let src = "
fn f(x: Option<u8>) -> u8 { x.unwrap() }
fn ok(x: Option<u8>) -> u8 { x.unwrap_or(0) }
#[cfg(test)]
mod tests {
    fn t(x: Option<u8>) -> u8 { x.unwrap() }
}
";
        let f = lint_file("crates/core/src/solver.rs", src, &cfg);
        assert_eq!(lints_of(&f), vec![UNWRAP_IN_LIB]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unseeded_rng_fires_outside_home() {
        let cfg = Config::default();
        let src = "fn f() { let r = rand::rngs::SmallRng::seed_from_u64(7); }";
        let f = lint_file("crates/gnn/src/model.rs", src, &cfg);
        assert!(f.iter().all(|f| f.lint == UNSEEDED_RNG) && !f.is_empty());
        assert!(lint_file("crates/sim/src/rng.rs", src, &cfg).is_empty());
    }

    #[test]
    fn hot_path_alloc_only_in_declared_functions() {
        let cfg = cfg_with_hot("crates/nn/src/matrix.rs", &["matmul_into"]);
        let src = "
impl Matrix {
    pub fn matmul_into(&self, out: &mut Matrix) {
        let v = self.data.to_vec();
        let w: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
        let s = format!(\"{}\", w.len());
    }
    pub fn matmul(&self) -> Vec<f64> {
        self.data.to_vec()
    }
}
";
        let f = lint_file("crates/nn/src/matrix.rs", src, &cfg);
        assert_eq!(lints_of(&f), vec![HOT_PATH_ALLOC; 3]);
        assert!(f.iter().all(|x| x.message.contains("matmul_into")));
    }

    #[test]
    fn allow_annotation_suppresses_with_reason() {
        let cfg = Config::default();
        let src = "
// graf-lint: allow(unwrap, poisoned mutex is unrecoverable here)
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        assert!(lint_file("crates/core/src/solver.rs", src, &cfg).is_empty());
    }

    #[test]
    fn allow_annotation_same_line_works() {
        let cfg = Config::default();
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // graf-lint: allow(unwrap, demo reason)";
        assert!(lint_file("crates/core/src/solver.rs", src, &cfg).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad_annotation() {
        let cfg = Config::default();
        let src = "
// graf-lint: allow(unwrap)
fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let f = lint_file("crates/core/src/solver.rs", src, &cfg);
        // Fail closed: the malformed annotation is reported AND the
        // underlying finding still fires.
        assert_eq!(lints_of(&f), vec![BAD_ANNOTATION, UNWRAP_IN_LIB]);
    }

    #[test]
    fn allow_unknown_lint_is_bad_annotation() {
        let cfg = Config::default();
        let src = "// graf-lint: allow(no-such-lint, whatever)\nfn f() {}";
        let f = lint_file("crates/core/src/solver.rs", src, &cfg);
        assert_eq!(lints_of(&f), vec![BAD_ANNOTATION]);
    }

    #[test]
    fn annotation_does_not_leak_two_lines_down() {
        let cfg = Config::default();
        let src = "
// graf-lint: allow(unwrap, only covers the next line)
fn a(x: Option<u8>) -> u8 { x.unwrap() }
fn b(x: Option<u8>) -> u8 { x.unwrap() }
";
        let f = lint_file("crates/core/src/solver.rs", src, &cfg);
        assert_eq!(lints_of(&f), vec![UNWRAP_IN_LIB]);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn test_only_file_is_skipped() {
        let cfg = Config::default();
        let src = "#![cfg(test)]\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(lint_file("crates/core/src/solver.rs", src, &cfg).is_empty());
    }
}
