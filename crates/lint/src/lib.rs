//! # graf-lint
//!
//! A zero-dependency static-analysis pass enforcing this repository's
//! determinism and hot-path invariants. It is built on a hand-rolled Rust
//! lexer — comment-, string- and attribute-aware, not grep — and reports
//! named, machine-readable lints:
//!
//! * `wallclock-in-deterministic-crate` — `Instant::now`/`SystemTime` outside
//!   the telemetry/bench crates, unless gated by `is_recording()`,
//! * `unordered-map-iteration` — iterating `HashMap`/`HashSet` in crates
//!   whose aggregate outputs must be order-stable,
//! * `hot-path-alloc` — allocation (`Vec::new`, `.clone()`, `.collect()`,
//!   `format!`, …) inside functions declared hot in `lint.toml`,
//! * `unwrap-in-lib` — `.unwrap()` in library code,
//! * `unseeded-rng` — RNG construction outside the seeded `sim::rng` home,
//! * `bad-annotation` — a malformed or unjustified allow annotation.
//!
//! Findings are suppressed with `// graf-lint: allow(<lint>, <why>)` on the
//! same or preceding line; a committed `lint.baseline` makes CI fail only on
//! *new* violations. See `DESIGN.md` §9 for the full catalog and workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod lints;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use config::Config;
pub use lints::Finding;

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// All findings, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
}

/// Scans every `.rs` file under `root` (excluding `cfg.exclude` prefixes and
/// dot-directories) and lints it.
pub fn scan_workspace(root: &Path, cfg: &Config) -> io::Result<ScanResult> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();
    let mut result = ScanResult::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        result.findings.extend(lints::lint_file(&rel_str, &src, cfg));
        result.files_scanned += 1;
    }
    result.findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(result)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Ok(rel) = path.strip_prefix(root) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        if cfg.exclude.iter().any(|ex| rel_str == *ex || rel_str.starts_with(&format!("{ex}/"))) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if rel_str.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Renders findings as a JSON report (hand-written; no dependencies).
pub fn render_json(findings: &[Finding], new: &[&Finding], files_scanned: usize) -> String {
    let is_new = |f: &Finding| new.iter().any(|n| std::ptr::eq(*n, f));
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"new\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.lint),
            json_escape(&f.path),
            f.line,
            is_new(f),
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"total\": {},\n  \"new\": {},\n  \"files_scanned\": {}\n}}\n",
        findings.len(),
        new.len(),
        files_scanned
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_shape() {
        let f = Finding {
            lint: lints::UNWRAP_IN_LIB,
            path: "crates/a/src/lib.rs".into(),
            line: 3,
            message: "m".into(),
            snippet: "x.unwrap()".into(),
        };
        let findings = vec![f];
        let new: Vec<&Finding> = findings.iter().collect();
        let json = render_json(&findings, &new, 1);
        assert!(json.contains("\"lint\": \"unwrap-in-lib\""));
        assert!(json.contains("\"new\": true"));
        assert!(json.contains("\"total\": 1"));
    }
}
