//! # graf-lint / graf-analyze
//!
//! A zero-dependency static-analysis pass enforcing this repository's
//! determinism and hot-path invariants. It is built on a hand-rolled Rust
//! lexer — comment-, string- and attribute-aware, not grep — and reports
//! named, machine-readable lints:
//!
//! * `wallclock-in-deterministic-crate` — `Instant::now`/`SystemTime` outside
//!   the telemetry/bench crates, unless gated by `is_recording()`,
//! * `unordered-map-iteration` — iterating `HashMap`/`HashSet` in crates
//!   whose aggregate outputs must be order-stable,
//! * `hot-path-alloc` — allocation (`Vec::new`, `.clone()`, `.collect()`,
//!   `format!`, …) inside functions declared hot in `lint.toml`,
//! * `unwrap-in-lib` — `.unwrap()` in library code,
//! * `unseeded-rng` — RNG construction outside the seeded `sim::rng` home,
//! * `relaxed-atomic` — `Ordering::Relaxed` on shared state,
//! * `unsafe-no-safety` — `unsafe` without a `// graf-lint: safety(<why>)`,
//! * `unordered-float-reduction` — float `+=` in loops of parallel-adjacent
//!   modules,
//! * `bad-annotation` — a malformed or unjustified allow annotation.
//!
//! The `--analyze` pass ([`analyze_workspace`]) additionally parses every
//! file into an item model ([`parse`]), builds a best-effort workspace call
//! graph ([`callgraph`] over [`symbols`]) and runs reachability checks
//! ([`taint`]): `determinism-taint` and `transitive-hot-alloc`, plus
//! `stale-allow` for suppressions that no longer suppress anything.
//!
//! Findings are suppressed with `// graf-lint: allow(<lint>, <why>)` on the
//! same or preceding line; a committed `lint.baseline` makes CI fail only on
//! *new* violations. See `DESIGN.md` §9/§13 for the catalog and workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod symbols;
pub mod taint;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use config::Config;
pub use lints::Finding;

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// All findings, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
}

/// One suppression annotation, as inventoried by `--analyze --json`.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line of the annotation.
    pub line: u32,
    /// Canonical lint name it suppresses.
    pub lint: &'static str,
    /// The justification text.
    pub reason: String,
    /// `true` for the `safety(<why>)` form.
    pub safety: bool,
    /// `true` when the annotation suppressed at least one finding this run.
    pub live: bool,
}

/// Output of the full `--analyze` pass: token lints, graph lints, the call
/// graph itself and the suppression inventory.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings (token + reachability + stale-allow), sorted by
    /// (path, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// Every suppression annotation, sorted by (path, line).
    pub suppressions: Vec<Suppression>,
    /// The workspace call graph.
    pub graph: callgraph::CallGraph,
    /// Functions reachable from the deterministic entry points.
    pub reachable_from_entries: usize,
    /// Functions reachable from the `[[hot]]` roots.
    pub reachable_from_hot: usize,
    /// Pre-suppression sink descriptions (see [`taint::TaintReport`]).
    pub frontier: Vec<String>,
}

/// Scans every `.rs` file under `root` (excluding `cfg.exclude` prefixes and
/// dot-directories) and lints it.
pub fn scan_workspace(root: &Path, cfg: &Config) -> io::Result<ScanResult> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();
    let mut result = ScanResult::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        result.findings.extend(lints::lint_file(&rel_str, &src, cfg));
        result.files_scanned += 1;
    }
    result.findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(result)
}

/// The full `--analyze` pass: token lints plus call-graph reachability
/// checks, stale-allow detection and the suppression inventory.
///
/// I/O failures and configuration errors (an `entry-points` spec that no
/// longer resolves) are both reported as `Err(message)` — the caller exits 2.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Analysis, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files).map_err(|e| format!("scan: {e}"))?;
    files.sort();

    let mut analysis = Analysis::default();
    let mut models: Vec<parse::FileModel> = Vec::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    // Per-file annotations, with liveness accumulated across token and graph
    // passes. Keyed by path for the graph-finding suppression step.
    let mut allows_by_file: BTreeMap<String, Vec<lints::Allow>> = BTreeMap::new();

    for rel in files {
        let src =
            fs::read_to_string(root.join(&rel)).map_err(|e| format!("{}: {e}", rel.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let file_lint = lints::lint_file_full(&rel_str, &src, cfg);
        analysis.findings.extend(file_lint.findings);
        if !file_lint.allows.is_empty() {
            allows_by_file.insert(rel_str.clone(), file_lint.allows);
        }
        if let Some(krate) = lints::classify(&rel_str) {
            models.push(parse::parse_file(&rel_str, krate, &src));
            sources.insert(rel_str, src);
        }
        analysis.files_scanned += 1;
    }

    analysis.graph = callgraph::CallGraph::build(&models);
    let report = taint::analyze(&models, &analysis.graph, cfg, &sources)?;
    analysis.reachable_from_entries = report.reachable_from_entries;
    analysis.reachable_from_hot = report.reachable_from_hot;
    analysis.frontier = report.frontier;

    // Graph findings honor the same annotations as token findings, anchored
    // at the sink line.
    for f in report.findings {
        let suppressed =
            allows_by_file.get_mut(&f.path).is_some_and(|allows| lints::suppress(allows, &f));
        if !suppressed {
            analysis.findings.push(f);
        }
    }

    // Stale-allow pass: any annotation that suppressed nothing is itself a
    // finding — suppressions must not outlive the code they excuse.
    for (path, allows) in &allows_by_file {
        for a in allows.iter().filter(|a| !a.used) {
            let snippet = sources
                .get(path)
                .and_then(|src| src.lines().nth(a.line.saturating_sub(1) as usize))
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            let message = if a.safety {
                "safety() with no `unsafe` on this or the next line; remove it".to_string()
            } else {
                format!("allow({}) no longer suppresses anything; remove it", a.lint)
            };
            analysis.findings.push(Finding {
                lint: lints::STALE_ALLOW,
                path: path.clone(),
                line: a.line,
                message,
                snippet,
            });
        }
    }

    for (path, allows) in allows_by_file {
        for a in allows {
            analysis.suppressions.push(Suppression {
                path: path.clone(),
                line: a.line,
                lint: a.lint,
                reason: a.reason,
                safety: a.safety,
                live: a.used,
            });
        }
    }
    analysis.suppressions.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    analysis.findings.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    Ok(analysis)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Ok(rel) = path.strip_prefix(root) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if name.starts_with('.') {
            continue;
        }
        if cfg.exclude.iter().any(|ex| rel_str == *ex || rel_str.starts_with(&format!("{ex}/"))) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if rel_str.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Renders findings as a JSON report (hand-written; no dependencies).
pub fn render_json(findings: &[Finding], new: &[&Finding], files_scanned: usize) -> String {
    render_json_report(findings, new, files_scanned, None)
}

/// [`render_json`] plus the `--analyze` suppression inventory.
pub fn render_json_full(
    findings: &[Finding],
    new: &[&Finding],
    files_scanned: usize,
    suppressions: &[Suppression],
) -> String {
    render_json_report(findings, new, files_scanned, Some(suppressions))
}

fn render_json_report(
    findings: &[Finding],
    new: &[&Finding],
    files_scanned: usize,
    suppressions: Option<&[Suppression]>,
) -> String {
    let is_new = |f: &Finding| new.iter().any(|n| std::ptr::eq(*n, f));
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"new\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.lint),
            json_escape(&f.path),
            f.line,
            is_new(f),
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],");
    if let Some(sups) = suppressions {
        out.push_str("\n  \"suppressions\": [");
        for (i, s) in sups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"kind\": \"{}\", \"reason\": \"{}\", \"live\": {}}}",
                json_escape(&s.path),
                s.line,
                json_escape(s.lint),
                if s.safety { "safety" } else { "allow" },
                json_escape(&s.reason),
                s.live,
            ));
        }
        if !sups.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],");
    }
    out.push_str(&format!(
        "\n  \"total\": {},\n  \"new\": {},\n  \"files_scanned\": {}\n}}\n",
        findings.len(),
        new.len(),
        files_scanned
    ));
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_shape() {
        let f = Finding {
            lint: lints::UNWRAP_IN_LIB,
            path: "crates/a/src/lib.rs".into(),
            line: 3,
            message: "m".into(),
            snippet: "x.unwrap()".into(),
        };
        let findings = vec![f];
        let new: Vec<&Finding> = findings.iter().collect();
        let json = render_json(&findings, &new, 1);
        assert!(json.contains("\"lint\": \"unwrap-in-lib\""));
        assert!(json.contains("\"new\": true"));
        assert!(json.contains("\"total\": 1"));
        assert!(!json.contains("\"suppressions\""));
    }

    #[test]
    fn json_full_report_lists_suppressions() {
        let sup = Suppression {
            path: "crates/a/src/lib.rs".into(),
            line: 7,
            lint: lints::HOT_PATH_ALLOC,
            reason: "slab growth".into(),
            safety: false,
            live: true,
        };
        let json = render_json_full(&[], &[], 1, &[sup]);
        assert!(json.contains("\"suppressions\""));
        assert!(json.contains("\"kind\": \"allow\""));
        assert!(json.contains("\"live\": true"));
        assert!(json.contains("slab growth"));
    }
}
