//! End-to-end tests for the lint engine and the `graf-lint` binary.
//!
//! The fixture files under `tests/fixtures/` are real `.rs` sources that are
//! never compiled (nothing below `tests/` is a test target) and never scanned
//! by the repo's own lint run (`lint.toml` excludes the directory); the tests
//! lint them under synthetic `crates/sim/src/…` paths. The binary tests build
//! a throwaway mini-workspace under `CARGO_TARGET_TMPDIR` and drive the
//! compiled `graf-lint` executable through the full baseline workflow,
//! proving CI goes red exactly when a NEW violation appears.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use graf_lint::lints::{
    lint_file, BAD_ANNOTATION, FLOAT_REDUCTION, HOT_PATH_ALLOC, RELAXED_ATOMIC, UNORDERED_MAP,
    UNSAFE_NO_SAFETY, UNSEEDED_RNG, UNWRAP_IN_LIB, WALLCLOCK,
};
use graf_lint::{scan_workspace, Baseline, Config};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
}

/// Default config plus a hot region covering the dirty fixture's kernel.
fn fixture_cfg() -> Config {
    Config::parse(
        "[[hot]]\n\
         file = \"crates/sim/src/dirty.rs\"\n\
         functions = [\"hot_kernel\"]\n",
    )
    .expect("fixture config parses")
}

#[test]
fn dirty_fixture_fires_every_lint_once() {
    let findings = lint_file("crates/sim/src/dirty.rs", &fixture("dirty.rs"), &fixture_cfg());
    let mut lints: Vec<&str> = findings.iter().map(|f| f.lint).collect();
    lints.sort_unstable();
    assert_eq!(
        lints,
        vec![BAD_ANNOTATION, HOT_PATH_ALLOC, UNORDERED_MAP, UNSEEDED_RNG, UNWRAP_IN_LIB, WALLCLOCK],
        "expected exactly one finding per lint, got: {findings:#?}"
    );
}

#[test]
fn violations_in_strings_comments_and_test_code_do_not_fire() {
    let findings = lint_file("crates/sim/src/clean.rs", &fixture("clean.rs"), &fixture_cfg());
    assert!(findings.is_empty(), "clean fixture must produce no findings: {findings:#?}");
}

#[test]
fn justified_annotations_suppress_real_violations() {
    let findings = lint_file("crates/sim/src/allowed.rs", &fixture("allowed.rs"), &fixture_cfg());
    assert!(findings.is_empty(), "annotated fixture must produce no findings: {findings:#?}");
}

#[test]
fn fixture_findings_outside_declared_crates_are_scoped() {
    // Linted under a crate not in `ordered_crates`, the map iteration is
    // allowed; the unconditional lints still apply.
    let findings = lint_file("crates/apps/src/dirty.rs", &fixture("dirty.rs"), &fixture_cfg());
    assert!(findings.iter().all(|f| f.lint != UNORDERED_MAP), "{findings:#?}");
    assert!(findings.iter().any(|f| f.lint == UNWRAP_IN_LIB));
    // And under a test path the file is not a lint target at all.
    assert!(lint_file("crates/sim/tests/dirty.rs", &fixture("dirty.rs"), &fixture_cfg()).is_empty());
}

#[test]
fn concurrency_fixture_fires_each_new_lint_once() {
    let cfg = Config::parse(
        "[analyze]\n\
         parallel-adjacent-files = [\"crates/sim/src/concurrency.rs\"]\n",
    )
    .expect("fixture config parses");
    let findings = lint_file("crates/sim/src/concurrency.rs", &fixture("concurrency.rs"), &cfg);
    let mut lints: Vec<&str> = findings.iter().map(|f| f.lint).collect();
    lints.sort_unstable();
    assert_eq!(
        lints,
        vec![RELAXED_ATOMIC, FLOAT_REDUCTION, UNSAFE_NO_SAFETY],
        "expected one finding per concurrency lint, got: {findings:#?}"
    );
}

#[test]
fn float_reduction_is_scoped_to_parallel_adjacent_files() {
    // The same fixture linted without the parallel-adjacent marking: the
    // float accumulation is fine, the other two lints are unconditional.
    let findings =
        lint_file("crates/sim/src/concurrency.rs", &fixture("concurrency.rs"), &fixture_cfg());
    assert!(findings.iter().all(|f| f.lint != FLOAT_REDUCTION), "{findings:#?}");
    assert!(findings.iter().any(|f| f.lint == RELAXED_ATOMIC), "{findings:#?}");
    assert!(findings.iter().any(|f| f.lint == UNSAFE_NO_SAFETY), "{findings:#?}");
}

// ---------------------------------------------------------------------------
// Binary workflow.
// ---------------------------------------------------------------------------

struct MiniWs {
    root: PathBuf,
}

impl MiniWs {
    /// `CARGO_TARGET_TMPDIR/<name>` with a `lint.toml` and one library file.
    fn create(name: &str) -> MiniWs {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        if root.exists() {
            fs::remove_dir_all(&root).expect("clear stale mini-workspace");
        }
        fs::create_dir_all(root.join("crates/foo/src")).expect("mini-workspace dirs");
        fs::write(root.join("lint.toml"), "# defaults\n").expect("write lint.toml");
        let ws = MiniWs { root };
        ws.write_lib("pub fn one(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n");
        ws
    }

    fn write_lib(&self, src: &str) {
        fs::write(self.root.join("crates/foo/src/lib.rs"), src).expect("write lib.rs");
    }

    fn run(&self, extra: &[&str]) -> Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_graf-lint"));
        cmd.arg("--root").arg(&self.root).args(extra);
        cmd.output().expect("run graf-lint")
    }
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("graf-lint exited via signal")
}

#[test]
fn binary_goes_red_on_new_violations_only() {
    let ws = MiniWs::create("lint-ws-red");

    // Fresh workspace with a violation and no baseline: CI is red.
    let out = ws.run(&[]);
    assert_eq!(code(&out), 1, "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("unwrap-in-lib"));

    // Accept the current state into the baseline: CI is green again.
    assert_eq!(code(&ws.run(&["--write-baseline"])), 0);
    assert_eq!(code(&ws.run(&[])), 0);

    // A synthetic NEW violation lands: CI goes red, and the JSON report
    // marks the new finding while the baselined one stays accepted.
    ws.write_lib(
        "pub fn one(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n\
         pub fn two(v: Option<u64>) -> u64 {\n    v.unwrap()\n}\n",
    );
    let out = ws.run(&["--json"]);
    assert_eq!(code(&out), 1);
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"new\": true"), "json: {json}");
    assert!(json.contains("\"new\": false"), "json: {json}");
}

#[test]
fn analyze_flags_taint_and_transitive_alloc_end_to_end() {
    let ws = MiniWs::create("lint-ws-analyze");
    fs::write(
        ws.root.join("lint.toml"),
        "[analyze]\n\
         entry-points = [\"crates/foo/src/lib.rs::drive\"]\n\n\
         [[hot]]\n\
         file = \"crates/foo/src/lib.rs\"\n\
         functions = [\"hot_loop\"]\n",
    )
    .expect("write lint.toml");
    // The wall-clock read lives in a *different crate*, reached through a
    // `graf_bar::`-qualified call: the taint must cross the crate boundary.
    ws.write_lib(
        "pub fn drive() -> u64 {\n\
         \x20   graf_bar::helper()\n\
         }\n\n\
         pub fn hot_loop(acc: &mut u64) {\n\
         \x20   *acc += cold_grow().len() as u64;\n\
         }\n\n\
         fn cold_grow() -> Vec<u64> {\n\
         \x20   Vec::with_capacity(4)\n\
         }\n",
    );
    fs::create_dir_all(ws.root.join("crates/bar/src")).expect("bar crate dir");
    fs::write(
        ws.root.join("crates/bar/src/lib.rs"),
        "pub fn helper() -> u64 {\n\
         \x20   std::time::Instant::now().elapsed().as_micros() as u64\n\
         }\n",
    )
    .expect("write bar lib.rs");

    // Token-only mode sees neither graph lint.
    let out = ws.run(&[]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(!text.contains("determinism-taint"), "token mode ran the graph pass: {text}");
    assert!(!text.contains("transitive-hot-alloc"), "token mode ran the graph pass: {text}");

    // `--analyze` walks the call graph: the wall-clock read two hops from the
    // entry point and the allocation one hop from the hot root both fire,
    // each with its call chain in the message.
    let out = ws.run(&["--analyze"]);
    assert_eq!(code(&out), 1, "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("determinism-taint"), "{text}");
    assert!(text.contains("drive → helper"), "taint message must carry the chain: {text}");
    assert!(text.contains("transitive-hot-alloc"), "{text}");
    assert!(text.contains("hot_loop → cold_grow"), "alloc message must carry the chain: {text}");
}

#[test]
fn analyze_rejects_stale_entry_point_specs() {
    let ws = MiniWs::create("lint-ws-stale-entry");
    fs::write(
        ws.root.join("lint.toml"),
        "[analyze]\nentry-points = [\"crates/foo/src/lib.rs::gone\"]\n",
    )
    .expect("write lint.toml");
    let out = ws.run(&["--analyze"]);
    assert_eq!(code(&out), 2, "a dangling entry point must be a hard error, not a shrink");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resolves to no function"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn stale_allows_are_flagged_and_inventoried() {
    let ws = MiniWs::create("lint-ws-stale-allow");
    ws.write_lib(
        "pub fn one(v: Option<u32>) -> u32 {\n\
         \x20   // graf-lint: allow(unwrap, caller guarantees Some)\n\
         \x20   v.unwrap()\n\
         }\n\n\
         pub fn two() -> u32 {\n\
         \x20   // graf-lint: allow(wallclock, nothing here reads a clock)\n\
         \x20   42\n\
         }\n",
    );
    let out = ws.run(&["--analyze", "--json"]);
    assert_eq!(code(&out), 1, "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(json.contains("stale-allow"), "{json}");
    assert!(json.contains("no longer suppresses anything"), "{json}");
    // The inventory lists both annotations, split by liveness.
    assert!(json.contains("\"live\": true"), "{json}");
    assert!(json.contains("\"live\": false"), "{json}");
    // The live allow still suppresses: the stale-allow is the only finding
    // (unwrap-in-lib appears in the inventory, not under findings).
    assert!(json.contains("\"total\": 1"), "{json}");
    assert!(!json.contains("\"lint\": \"unwrap-in-lib\", \"path\""), "{json}");
}

#[test]
fn callgraph_jsonl_is_byte_identical_across_runs() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let run = || {
        let out = Command::new(env!("CARGO_BIN_EXE_graf-lint"))
            .arg("--root")
            .arg(&root)
            .arg("--callgraph")
            .output()
            .expect("run graf-lint");
        assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty(), "the repo call graph is not empty");
    assert_eq!(first, second, "--callgraph output must be byte-identical across runs");
    let text = String::from_utf8(first).expect("JSONL is UTF-8");
    for line in text.lines() {
        assert!(line.starts_with("{\"id\":"), "not a callgraph record: {line}");
    }
}

#[test]
fn binary_rejects_config_typos() {
    let ws = MiniWs::create("lint-ws-cfg");
    fs::write(ws.root.join("lint.toml"), "[bogus]\nkey = \"v\"\n").expect("write bad config");
    let out = ws.run(&[]);
    assert_eq!(code(&out), 2, "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

// ---------------------------------------------------------------------------
// The committed baseline.
// ---------------------------------------------------------------------------

#[test]
fn committed_baseline_matches_fresh_workspace_scan() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_text = fs::read_to_string(root.join("lint.toml")).expect("repo lint.toml");
    let cfg = Config::parse(&cfg_text).expect("repo lint.toml parses");
    let result = scan_workspace(&root, &cfg).expect("workspace scan");

    let committed = fs::read_to_string(root.join("lint.baseline")).expect("repo lint.baseline");
    let baseline = Baseline::parse(&committed).expect("repo lint.baseline parses");
    let (_, new) = baseline.partition(&result.findings);
    assert!(new.is_empty(), "workspace has findings not in lint.baseline: {new:#?}");
    assert_eq!(
        Baseline::render(&result.findings),
        committed,
        "lint.baseline is stale; regenerate with `cargo run -p graf-lint -- --write-baseline`"
    );
}
