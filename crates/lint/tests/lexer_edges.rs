//! Lexer edge cases the lint rules depend on: a banned name inside a raw
//! string or nested block comment must never become an `Ident` token, raw
//! identifiers must stay one token, and lifetimes must not be confused with
//! char literals (or vice versa).

use graf_lint::lexer::{lex, strip_raw_ident, TokenKind};

/// All `Ident` token texts, in source order.
fn idents(src: &str) -> Vec<&str> {
    let lexed = lex(src);
    lexed.tokens.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| lexed.text(src, t)).collect()
}

fn kinds(src: &str) -> Vec<TokenKind> {
    lex(src).tokens.iter().map(|t| t.kind).collect()
}

#[test]
fn raw_strings_swallow_banned_names_and_quotes() {
    let src = r###"let s = r#"Instant::now() has a "quoted" part"#; let t = after;"###;
    let ids = idents(src);
    assert!(!ids.contains(&"Instant"), "raw string leaked an ident: {ids:?}");
    assert!(!ids.contains(&"quoted"), "inner quotes ended the raw string early: {ids:?}");
    assert!(ids.contains(&"after"), "lexing must resume after the raw string: {ids:?}");
    let strs = kinds(src).iter().filter(|k| **k == TokenKind::Str).count();
    assert_eq!(strs, 1, "the raw string is one Str token");
}

#[test]
fn raw_strings_with_more_hashes_do_not_end_at_fewer() {
    let src = r####"let s = r##"ends with "# not here"##; let after = 1;"####;
    let ids = idents(src);
    assert!(!ids.contains(&"not"), "r##\"…\"## must not end at \"#: {ids:?}");
    assert!(ids.contains(&"after"), "{ids:?}");
}

#[test]
fn nested_block_comments_track_depth() {
    let src = "/* outer /* inner */ still_comment */ fn visible() {}";
    let ids = idents(src);
    assert!(!ids.contains(&"inner"), "{ids:?}");
    assert!(!ids.contains(&"still_comment"), "inner `*/` must not close the outer: {ids:?}");
    assert_eq!(ids, vec!["fn", "visible"], "{ids:?}");
}

#[test]
fn block_comments_count_their_newlines() {
    let src = "/* one\n two\n three */\nfn f() {}";
    let lexed = lex(src);
    let f = lexed.tokens.iter().find(|t| lexed.text(src, t) == "fn").expect("fn token");
    assert_eq!(f.line, 4, "line counting must include comment newlines");
}

#[test]
fn raw_identifiers_are_single_tokens() {
    let src = "fn r#type(r#match: u32) -> u32 { r#match }";
    let ids = idents(src);
    assert!(ids.contains(&"r#type"), "raw ident must be one token: {ids:?}");
    // `r` alone must not appear — that would mean `r#type` split apart.
    assert!(!ids.contains(&"r"), "{ids:?}");
    assert_eq!(strip_raw_ident("r#type"), "type");
    assert_eq!(strip_raw_ident("plain"), "plain");
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a u32, s: &'static str) -> char { 'b' }";
    let lexed = lex(src);
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| lexed.text(src, t))
        .collect();
    let chars: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| lexed.text(src, t))
        .collect();
    assert_eq!(chars, vec!["'b'"], "exactly the char literal: {chars:?}");
    assert_eq!(lifetimes.len(), 3, "'a, 'a and 'static: {lifetimes:?}");
}

#[test]
fn char_literals_with_escapes_and_delimiters_do_not_derail() {
    // A quote char, an escaped quote, and a slash char followed by more code:
    // none of these may open a string/comment or swallow the tail.
    let src = r#"let a = '"'; let b = '\''; let c = '/'; let tail = 1;"#;
    let ids = idents(src);
    assert!(ids.contains(&"tail"), "lexer lost sync after char literals: {ids:?}");
    let chars = kinds(src).iter().filter(|k| **k == TokenKind::Char).count();
    assert_eq!(chars, 3, "{src}");
}

#[test]
fn byte_strings_and_byte_chars_are_literals() {
    let src = r#"let a = b"Instant"; let b = b'\n'; let tail = 1;"#;
    let ids = idents(src);
    assert!(!ids.contains(&"Instant"), "{ids:?}");
    assert!(ids.contains(&"tail"), "{ids:?}");
}

#[test]
fn test_regions_are_marked_and_strings_inside_them_still_skip() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { foo(); }\n}\nfn prod() { bar(); }\n";
    let lexed = lex(src);
    let tok = |name: &str| {
        lexed.tokens.iter().find(|t| lexed.text(src, t) == name).expect("token present")
    };
    assert!(tok("foo").in_test, "tokens under #[cfg(test)] are test-only");
    assert!(!tok("prod").in_test, "tokens after the test item are production again");
}
