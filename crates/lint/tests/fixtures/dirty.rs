// Fixture: one positive case per lint. The engine tests lint this file as
// `crates/sim/src/dirty.rs` with `hot_kernel` declared hot. Not compiled —
// nothing under tests/fixtures/ is a test target, and lint.toml excludes the
// directory from the workspace scan.

use std::collections::HashMap;

pub fn wall() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub struct Table {
    pub by_name: HashMap<String, u32>,
}

pub fn dump(t: &Table) -> Vec<u32> {
    let mut out = Vec::new();
    for v in t.by_name.values() {
        out.push(*v);
    }
    out
}

pub fn must(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn roll() -> u32 {
    let mut r = thread_rng();
    r.next_u32()
}

pub fn hot_kernel(n: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(n);
    v.resize(n, 0.0);
    v
}

// graf-lint: allow(unwrap)
pub fn annotated_badly() {}
