// Fixture: real violations, each carrying a justified allow annotation on
// the same or the preceding line. Zero findings expected. Not compiled; see
// dirty.rs for why.

use std::collections::HashMap;

pub struct Cache {
    pub entries: HashMap<u64, u64>,
}

pub fn sum(c: &Cache) -> u64 {
    let mut total = 0;
    // graf-lint: allow(unordered-map, summation is order-independent)
    for v in c.entries.values() {
        total += v;
    }
    total
}

pub fn must(v: Option<u64>) -> u64 {
    v.unwrap() // graf-lint: allow(unwrap, fixture invariant - caller checked is_some)
}

pub fn wall() -> u64 {
    // graf-lint: allow(wallclock, fixture exercises the suppression path)
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
