// Fixture: every banned construct appears only where the lexer must ignore
// it — comments, string literals and `#[cfg(test)]` items. Zero findings
// expected. Not compiled; see dirty.rs for why.

pub fn describe() -> &'static str {
    // Mentioning Instant::now(), SystemTime, thread_rng() or .unwrap() in a
    // comment is inert.
    "so is .unwrap() or Instant::now() inside a string literal"
}

pub fn raw() -> &'static str {
    r#"even in raw strings: SystemTime, thread_rng(), m.values()"#
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert("k", 1u32);
        for v in m.values() {
            assert_eq!(*v, 1);
        }
        let x: Option<u32> = Some(2);
        assert_eq!(x.unwrap(), 2);
        let _ = std::time::Instant::now();
    }
}
