//! Seeded fixture for the concurrency-safety token lints. Linted under
//! `crates/sim/src/concurrency.rs` with the file marked parallel-adjacent,
//! it must fire exactly one `relaxed-atomic`, one `unsafe-no-safety` and one
//! `unordered-float-reduction` finding; the justified twins below must stay
//! silent.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn claim(next: &AtomicUsize) -> usize {
    next.fetch_add(1, Ordering::Relaxed)
}

pub fn read_raw(p: *const u64) -> u64 {
    unsafe { *p }
}

pub fn sum(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}

pub fn justified(next: &AtomicUsize, p: *const u64, xs: &[f64]) -> f64 {
    // graf-lint: allow(relaxed, telemetry counter; the value never feeds a decision)
    let _ = next.fetch_add(1, Ordering::Relaxed);
    // graf-lint: safety(caller contract guarantees p is valid for reads)
    let v = unsafe { *p };
    let mut t = 0.0;
    t += v as f64;
    for x in xs {
        // graf-lint: allow(float-reduction, chunk-index-ordered accumulation)
        t += x;
    }
    t
}
