//! # graf-prof
//!
//! Hierarchical self-profiler for the GRAF reproduction: nestable phase
//! scopes that aggregate into a tree of `{calls, wall ns, work}` per phase,
//! answering "where does the wall-clock go?" for the sim event loop, the
//! trainer, the solver, and the controller tick (ROADMAP item 1's measured
//! starting point).
//!
//! ## Design
//!
//! Everything hangs off a [`Prof`] handle — a cheap clonable
//! `Option<Arc<..>>` mirroring `graf-obs`'s `Obs`. A **disabled** handle
//! (the default everywhere) costs one branch per instrumentation point: no
//! allocation, no locking, no clock reads — so simulation results are
//! bit-identical with profiling on or off (the profiler observes, it never
//! feeds back into decisions).
//!
//! * [`Prof::enter`] opens a scope under the currently-open scope (or as a
//!   root) and returns a [`ProfScope`] guard; wall time is accumulated into
//!   the phase node when the guard drops. Scopes nest: the tree shape is the
//!   dynamic nesting of `enter` calls, keyed by phase name per parent.
//! * [`Prof::work`] adds to the **deterministic work counter** of the
//!   innermost open scope — a count of logical units processed (events
//!   dispatched, station updates, spans recorded) that is identical across
//!   runs of the same seed, unlike wall time.
//! * [`Prof::report`] snapshots the tree into a [`ProfReport`] with per-node
//!   totals, self time (total minus children), and pre-order rows for
//!   rendering.
//!
//! ## Hot-path guarantees
//!
//! `enter`/drop on an **enabled** handle are allocation-free in steady state:
//! node lookup is a linear scan of the parent's child list (phase fan-out is
//! small and names are `&'static str`), and the scope stack plus per-node
//! child vectors only grow the first time a phase is seen. These functions
//! are listed in `lint.toml [[hot]]` so `graf-lint` keeps them free of
//! lexical allocation constructs; first-visit node creation lives in a
//! separate cold function.
//!
//! Scopes must close in LIFO order (guards handle this naturally; it is
//! `debug_assert`ed). Re-entrant phases (a scope for a name already open)
//! count a call but only the outermost occurrence accumulates wall time, so
//! recursion never double-counts.
//!
//! ```
//! use graf_prof::Prof;
//!
//! let prof = Prof::enabled();
//! {
//!     let _loop = prof.enter("sim.event_loop");
//!     for _ in 0..3 {
//!         let _d = prof.enter("sim.event_loop.dispatch");
//!         prof.work(1);
//!     }
//! }
//! let report = prof.report();
//! let dispatch = report.find("sim.event_loop/sim.event_loop.dispatch").unwrap();
//! assert_eq!(dispatch.calls, 3);
//! assert_eq!(dispatch.work, 3);
//! assert!(report.find("sim.event_loop").unwrap().total_ns >= dispatch.total_ns);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sentinel parent index for root nodes.
const NO_PARENT: u32 = u32::MAX;

/// One phase in the profile tree.
struct Node {
    name: &'static str,
    children: Vec<u32>,
    calls: u64,
    total_ns: u64,
    work: u64,
    /// Re-entrancy depth: number of currently-open scopes on this node.
    open: u32,
}

struct Tree {
    nodes: Vec<Node>,
    roots: Vec<u32>,
    stack: Vec<u32>,
}

impl Tree {
    fn new() -> Self {
        Tree { nodes: Vec::new(), roots: Vec::new(), stack: Vec::with_capacity(64) }
    }

    /// Hot: find-or-create the child named `name` under the open scope, bump
    /// its call count, and push it onto the scope stack.
    fn open_scope(&mut self, name: &'static str) -> u32 {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let idx = match self.find_child(parent, name) {
            Some(i) => i,
            None => self.add_node(parent, name),
        };
        let n = &mut self.nodes[idx as usize];
        n.calls += 1;
        n.open += 1;
        self.stack.push(idx);
        idx
    }

    /// Hot: pop the scope and accumulate its elapsed wall time (outermost
    /// occurrence only, so re-entrant phases never double-count).
    fn close_scope(&mut self, idx: u32, elapsed_ns: u64) {
        debug_assert_eq!(
            self.stack.last().copied(),
            Some(idx),
            "profiler scopes must close in LIFO order"
        );
        self.stack.pop();
        let n = &mut self.nodes[idx as usize];
        n.open = n.open.saturating_sub(1);
        if n.open == 0 {
            n.total_ns += elapsed_ns;
        }
    }

    /// Hot: add `units` to the innermost open scope's work counter.
    fn add_work(&mut self, units: u64) {
        if let Some(&idx) = self.stack.last() {
            self.nodes[idx as usize].work += units;
        }
    }

    /// Hot: linear scan of the parent's child list (root list for
    /// `NO_PARENT`). Phase fan-out is small, so this beats hashing.
    fn find_child(&self, parent: u32, name: &'static str) -> Option<u32> {
        let kids =
            if parent == NO_PARENT { &self.roots } else { &self.nodes[parent as usize].children };
        kids.iter().copied().find(|&i| self.nodes[i as usize].name == name)
    }

    /// Cold: first visit of a phase under this parent (allocates).
    fn add_node(&mut self, parent: u32, name: &'static str) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            name,
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            work: 0,
            open: 0,
        });
        if parent == NO_PARENT {
            self.roots.push(idx);
        } else {
            self.nodes[parent as usize].children.push(idx);
        }
        idx
    }
}

struct Inner {
    start: Instant,
    tree: Mutex<Tree>,
}

/// The profiler handle. Clones share the same tree.
///
/// A disabled handle (from [`Prof::disabled`] or `Prof::default()`) makes
/// every operation a branch-and-return no-op: no allocation, no locking, no
/// clock reads.
#[derive(Clone, Default)]
pub struct Prof {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Prof {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => {
                let tree = i.tree.lock().expect("prof tree");
                write!(f, "Prof {{ enabled, phases: {} }}", tree.nodes.len())
            }
            None => write!(f, "Prof {{ disabled }}"),
        }
    }
}

impl Prof {
    /// A disabled handle: every instrumentation point is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with an empty phase tree.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Inner { start: Instant::now(), tree: Mutex::new(Tree::new()) })),
        }
    }

    /// `true` when this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a phase scope nested under the innermost open scope; wall time
    /// accumulates into the phase when the returned guard drops. No-op (no
    /// allocation, no clock read) when disabled.
    #[inline]
    pub fn enter(&self, name: &'static str) -> ProfScope {
        match &self.inner {
            Some(inner) => {
                let t0_ns = inner.start.elapsed().as_nanos() as u64;
                let idx = inner.tree.lock().expect("prof tree").open_scope(name);
                ProfScope { state: Some(ScopeState { inner: Arc::clone(inner), idx, t0_ns }) }
            }
            None => ProfScope { state: None },
        }
    }

    /// Closes `scope` and opens a sibling named `name` using a single clock
    /// read and lock acquisition: the instant the old phase ends is the
    /// instant the new one begins, so a hand-off between back-to-back hot
    /// phases (an event loop switching per-event scopes) leaves no
    /// unattributed gap in the parent. No-op when disabled.
    #[inline]
    pub fn switch(&self, mut scope: ProfScope, name: &'static str) -> ProfScope {
        if self.inner.is_none() {
            // Disabled handle: the guard (if recording) closes via Drop.
            return ProfScope { state: None };
        }
        let Some(s) = scope.state.take() else {
            // A recording handle handed a dead guard: just open fresh.
            return self.enter(name);
        };
        let mut tree = s.inner.tree.lock().expect("prof tree");
        let t = s.inner.start.elapsed().as_nanos() as u64;
        tree.close_scope(s.idx, t.saturating_sub(s.t0_ns));
        let idx = tree.open_scope(name);
        drop(tree);
        ProfScope { state: Some(ScopeState { inner: s.inner, idx, t0_ns: t }) }
    }

    /// Adds `units` to the innermost open scope's deterministic work counter
    /// (events dispatched, rows trained, …). No-op when disabled or when no
    /// scope is open.
    #[inline]
    pub fn work(&self, units: u64) {
        if let Some(inner) = &self.inner {
            inner.tree.lock().expect("prof tree").add_work(units);
        }
    }

    /// Snapshots the phase tree. Empty report when disabled.
    pub fn report(&self) -> ProfReport {
        match &self.inner {
            Some(inner) => ProfReport::from_tree(&inner.tree.lock().expect("prof tree")),
            None => ProfReport { rows: Vec::new() },
        }
    }
}

struct ScopeState {
    inner: Arc<Inner>,
    idx: u32,
    t0_ns: u64,
}

/// Scoped phase guard returned by [`Prof::enter`]; accumulates wall time on
/// drop. A no-op when the parent handle is disabled.
pub struct ProfScope {
    state: Option<ScopeState>,
}

impl ProfScope {
    /// `true` when this scope will actually record.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }
}

impl Drop for ProfScope {
    #[inline]
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let mut tree = s.inner.tree.lock().expect("prof tree");
            let elapsed = (s.inner.start.elapsed().as_nanos() as u64).saturating_sub(s.t0_ns);
            tree.close_scope(s.idx, elapsed);
        }
    }
}

/// One phase in a [`ProfReport`], in pre-order.
#[derive(Clone, Debug)]
pub struct ProfRow {
    /// Phase name as passed to [`Prof::enter`].
    pub name: &'static str,
    /// Slash-joined path from the root phase (`a/b/c`).
    pub path: String,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall time inside the scope (children included), nanoseconds.
    pub total_ns: u64,
    /// Wall time not attributed to any child scope, nanoseconds.
    pub self_ns: u64,
    /// Deterministic work units recorded via [`Prof::work`].
    pub work: u64,
}

/// Snapshot of the profile tree: pre-order rows with totals and self time.
#[derive(Clone, Debug)]
pub struct ProfReport {
    /// Pre-order rows (each parent precedes its children).
    pub rows: Vec<ProfRow>,
}

impl ProfReport {
    fn from_tree(tree: &Tree) -> Self {
        let mut rows = Vec::new();
        // Iterative pre-order; roots and children in first-seen order.
        let mut todo: Vec<(u32, usize, String)> = Vec::new();
        for &r in tree.roots.iter().rev() {
            todo.push((r, 0, String::new()));
        }
        while let Some((idx, depth, prefix)) = todo.pop() {
            let n = &tree.nodes[idx as usize];
            let path =
                if prefix.is_empty() { n.name.to_string() } else { format!("{prefix}/{}", n.name) };
            let child_ns: u64 = n.children.iter().map(|&c| tree.nodes[c as usize].total_ns).sum();
            rows.push(ProfRow {
                name: n.name,
                path: path.clone(),
                depth,
                calls: n.calls,
                total_ns: n.total_ns,
                self_ns: n.total_ns.saturating_sub(child_ns),
                work: n.work,
            });
            for &c in n.children.iter().rev() {
                todo.push((c, depth + 1, path.clone()));
            }
        }
        ProfReport { rows }
    }

    /// Looks up a row by its slash-joined path.
    pub fn find(&self, path: &str) -> Option<&ProfRow> {
        self.rows.iter().find(|r| r.path == path)
    }

    /// Direct children of the row at `path` (rows at `path/<name>`).
    pub fn children(&self, path: &str) -> Vec<&ProfRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.path.len() > path.len()
                    && r.path.starts_with(path)
                    && r.path.as_bytes()[path.len()] == b'/'
                    && !r.path[path.len() + 1..].contains('/')
            })
            .collect()
    }

    /// Sum of root-phase wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.rows.iter().filter(|r| r.depth == 0).map(|r| r.total_ns).sum()
    }

    /// Human-readable table: indentation mirrors nesting; `total` and `self`
    /// in milliseconds, percentages relative to the whole profile.
    pub fn render(&self) -> String {
        let grand = self.total_ns().max(1) as f64;
        let mut out = String::new();
        out.push_str("phase                                            calls     total      self    %     work\n");
        for r in &self.rows {
            let label = format!("{:indent$}{}", "", r.name, indent = r.depth * 2);
            let pct = 100.0 * r.total_ns as f64 / grand;
            out.push_str(&format!(
                "{label:<46} {calls:>9} {total:>9.3} {selfms:>9.3} {pct:>5.1} {work:>8}\n",
                calls = r.calls,
                total = r.total_ns as f64 / 1e6,
                selfms = r.self_ns as f64 / 1e6,
                work = r.work,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_noop() {
        let prof = Prof::disabled();
        assert!(!prof.is_enabled());
        {
            let s = prof.enter("a");
            assert!(!s.is_recording());
            prof.work(10);
        }
        assert!(prof.report().rows.is_empty());
        assert_eq!(prof.report().total_ns(), 0);
    }

    #[test]
    fn tree_aggregates_nested_scopes() {
        let prof = Prof::enabled();
        for _ in 0..4 {
            let _outer = prof.enter("outer");
            prof.work(1);
            for _ in 0..3 {
                let _inner = prof.enter("inner");
                prof.work(2);
            }
        }
        {
            let _other = prof.enter("other_root");
        }
        let rep = prof.report();
        let outer = rep.find("outer").expect("outer row");
        let inner = rep.find("outer/inner").expect("inner row");
        let other = rep.find("other_root").expect("other row");
        assert_eq!(outer.calls, 4);
        assert_eq!(outer.work, 4);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.calls, 12);
        assert_eq!(inner.work, 24);
        assert_eq!(inner.depth, 1);
        assert_eq!(other.calls, 1);
        assert!(outer.total_ns >= inner.total_ns, "parent covers child");
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        // Pre-order: outer before inner before the second root.
        let paths: Vec<&str> = rep.rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner", "other_root"]);
    }

    #[test]
    fn same_name_under_different_parents_is_distinct() {
        let prof = Prof::enabled();
        {
            let _a = prof.enter("a");
            let _s = prof.enter("shared");
        }
        {
            let _b = prof.enter("b");
            let _s = prof.enter("shared");
            prof.work(7);
        }
        let rep = prof.report();
        assert_eq!(rep.find("a/shared").unwrap().work, 0);
        assert_eq!(rep.find("b/shared").unwrap().work, 7);
    }

    #[test]
    fn recursive_nesting_builds_a_chain_without_double_counting() {
        // A scope entered while an identically-named scope is open nests as a
        // child node (`rec/rec/...`), so recursion never double-counts one
        // node's wall time.
        fn recurse(prof: &Prof, depth: usize) {
            let _s = prof.enter("rec");
            if depth > 0 {
                recurse(prof, depth - 1);
            }
        }
        let prof = Prof::enabled();
        recurse(&prof, 3);
        let rep = prof.report();
        assert_eq!(rep.find("rec").unwrap().calls, 1);
        assert!(rep.find("rec/rec").is_some());
        assert!(rep.find("rec/rec/rec/rec").is_some());
        let root = rep.find("rec").unwrap();
        assert!(root.total_ns >= rep.find("rec/rec").unwrap().total_ns);
    }

    #[test]
    fn switch_hands_off_between_siblings_without_parent_gap() {
        let prof = Prof::enabled();
        {
            let _outer = prof.enter("outer");
            let mut s = prof.enter("a");
            for _ in 0..3 {
                s = prof.switch(s, "b");
                prof.work(1);
                s = prof.switch(s, "a");
            }
            drop(s);
        }
        let rep = prof.report();
        let outer = rep.find("outer").unwrap();
        let a = rep.find("outer/a").unwrap();
        let b = rep.find("outer/b").unwrap();
        assert_eq!(a.calls, 4, "initial enter + three switch-backs");
        assert_eq!(b.calls, 3);
        assert_eq!(b.work, 3, "work lands in the scope opened by switch");
        // The whole outer interval alternates between a and b: a switch
        // hand-off leaves zero unattributed self time (only the enter of
        // `a` and the final drop touch the parent).
        assert!(
            outer.self_ns <= outer.total_ns / 2,
            "switch must not leak time into the parent: self={} total={}",
            outer.self_ns,
            outer.total_ns
        );
        assert_eq!(outer.total_ns, a.total_ns + b.total_ns + outer.self_ns);
    }

    #[test]
    fn switch_on_a_disabled_handle_is_a_noop() {
        let prof = Prof::disabled();
        let s = prof.enter("a");
        let s2 = prof.switch(s, "b");
        assert!(!s2.is_recording());
        drop(s2);
        assert!(prof.report().rows.is_empty());
    }

    #[test]
    fn clones_share_the_tree() {
        let prof = Prof::enabled();
        let clone = prof.clone();
        {
            let _s = clone.enter("from_clone");
        }
        assert!(prof.report().find("from_clone").is_some());
    }

    #[test]
    fn children_lists_direct_children_only() {
        let prof = Prof::enabled();
        {
            let _a = prof.enter("a");
            let _b = prof.enter("b");
            let _c = prof.enter("c");
        }
        {
            let _a = prof.enter("a");
            let _d = prof.enter("d");
        }
        let rep = prof.report();
        let kids: Vec<&str> = rep.children("a").iter().map(|r| r.name).collect();
        assert_eq!(kids, vec!["b", "d"]);
    }

    #[test]
    fn render_contains_all_phases() {
        let prof = Prof::enabled();
        {
            let _a = prof.enter("alpha");
            let _b = prof.enter("beta");
        }
        let text = prof.report().render();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
    }
}
