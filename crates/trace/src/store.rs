//! Trace assembly and retention.

use std::collections::HashMap;

use crate::span::{Span, TraceId};

/// A fully assembled trace: all spans of one end-to-end request.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The trace id.
    pub id: TraceId,
    /// Index of the API this request invoked.
    pub api: u16,
    /// Spans in completion order; the root span is the one with `parent == None`.
    pub spans: Vec<Span>,
}

impl Trace {
    /// End-to-end latency: root span duration, or envelope of all spans when
    /// the root is missing (sampled-out edge case).
    pub fn e2e_latency_us(&self) -> u64 {
        if let Some(root) = self.spans.iter().find(|s| s.is_root()) {
            return root.duration_us();
        }
        let start = self.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Number of spans executed by `service` in this trace.
    pub fn calls_to(&self, service: u16) -> u32 {
        self.spans.iter().filter(|s| s.service == service).count() as u32
    }
}

/// Collects spans, assembles completed traces, and bounds memory.
///
/// The simulator pushes spans as service frames finish and calls
/// [`TraceStore::finish_trace`] when the root span completes. Completed traces
/// are kept in a bounded FIFO (the Jaeger retention analog); consumers drain
/// or inspect them.
#[derive(Debug)]
pub struct TraceStore {
    open: HashMap<TraceId, Vec<Span>>,
    finished: Vec<Trace>,
    capacity: usize,
    dropped: u64,
}

impl TraceStore {
    /// Creates a store retaining up to `capacity` finished traces.
    pub fn new(capacity: usize) -> Self {
        Self { open: HashMap::new(), finished: Vec::new(), capacity, dropped: 0 }
    }

    /// Records a span for an in-flight trace.
    pub fn push_span(&mut self, span: Span) {
        self.open.entry(span.trace_id).or_default().push(span);
    }

    /// Marks a trace complete, moving it to the finished set.
    ///
    /// Unknown trace ids are ignored (the trace may not have been sampled).
    pub fn finish_trace(&mut self, id: TraceId, api: u16) {
        if let Some(spans) = self.open.remove(&id) {
            if self.finished.len() >= self.capacity {
                // FIFO eviction; bulk-drain half to amortize the shift.
                let drop_n = (self.capacity / 2).max(1);
                self.finished.drain(0..drop_n);
                self.dropped += drop_n as u64;
            }
            self.finished.push(Trace { id, api, spans });
        }
    }

    /// Discards an in-flight trace without finishing it (request failure).
    pub fn abort_trace(&mut self, id: TraceId) {
        self.open.remove(&id);
    }

    /// Completed traces currently retained, oldest first.
    pub fn finished(&self) -> &[Trace] {
        &self.finished
    }

    /// Removes and returns all completed traces.
    pub fn drain_finished(&mut self) -> Vec<Trace> {
        std::mem::take(&mut self.finished)
    }

    /// Number of traces evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of traces still being assembled.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Clears all state.
    pub fn clear(&mut self) {
        self.open.clear();
        self.finished.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn span(trace: u64, span_id: u32, parent: Option<u32>, service: u16, s: u64, e: u64) -> Span {
        Span {
            trace_id: TraceId(trace),
            span_id: SpanId(span_id),
            parent: parent.map(SpanId),
            service,
            api: 0,
            start_us: s,
            end_us: e,
        }
    }

    #[test]
    fn assembles_traces() {
        let mut st = TraceStore::new(16);
        st.push_span(span(1, 0, None, 0, 0, 100));
        st.push_span(span(1, 1, Some(0), 1, 10, 60));
        st.finish_trace(TraceId(1), 0);
        assert_eq!(st.finished().len(), 1);
        let t = &st.finished()[0];
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.e2e_latency_us(), 100);
        assert_eq!(t.calls_to(1), 1);
        assert_eq!(st.open_count(), 0);
    }

    #[test]
    fn e2e_latency_without_root_uses_envelope() {
        let t = Trace {
            id: TraceId(9),
            api: 0,
            spans: vec![span(9, 1, Some(0), 1, 20, 50), span(9, 2, Some(0), 2, 40, 90)],
        };
        assert_eq!(t.e2e_latency_us(), 70);
    }

    #[test]
    fn finishing_unknown_trace_is_noop() {
        let mut st = TraceStore::new(4);
        st.finish_trace(TraceId(7), 0);
        assert!(st.finished().is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut st = TraceStore::new(4);
        for i in 0..6u64 {
            st.push_span(span(i, 0, None, 0, 0, 1));
            st.finish_trace(TraceId(i), 0);
        }
        assert!(st.finished().len() <= 4 + 1);
        assert!(st.dropped() >= 2);
        // The newest trace is always retained.
        assert!(st.finished().iter().any(|t| t.id == TraceId(5)));
    }

    #[test]
    fn abort_discards_open_trace() {
        let mut st = TraceStore::new(4);
        st.push_span(span(3, 0, None, 0, 0, 1));
        st.abort_trace(TraceId(3));
        st.finish_trace(TraceId(3), 0);
        assert!(st.finished().is_empty());
        assert_eq!(st.open_count(), 0);
    }

    #[test]
    fn drain_empties_store() {
        let mut st = TraceStore::new(4);
        st.push_span(span(1, 0, None, 0, 0, 1));
        st.finish_trace(TraceId(1), 0);
        let traces = st.drain_finished();
        assert_eq!(traces.len(), 1);
        assert!(st.finished().is_empty());
    }
}
