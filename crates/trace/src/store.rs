//! Trace assembly and retention.

use crate::span::{Span, TraceId};

/// A fully assembled trace: all spans of one end-to-end request.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The trace id.
    pub id: TraceId,
    /// Index of the API this request invoked.
    pub api: u16,
    /// Spans in completion order; the root span is the one with `parent == None`.
    pub spans: Vec<Span>,
}

impl Trace {
    /// End-to-end latency: root span duration, or envelope of all spans when
    /// the root is missing (sampled-out edge case).
    pub fn e2e_latency_us(&self) -> u64 {
        if let Some(root) = self.spans.iter().find(|s| s.is_root()) {
            return root.duration_us();
        }
        let start = self.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Number of spans executed by `service` in this trace.
    pub fn calls_to(&self, service: u16) -> u32 {
        self.spans.iter().filter(|s| s.service == service).count() as u32
    }
}

/// Handle to a trace being assembled, returned by [`TraceStore::open_trace`].
///
/// The producer (the simulator) keeps the handle in its per-request state and
/// passes it back for every span — a slab index, so the hot span path does no
/// hashing. A handle is dead after `finish_open`/`abort_open`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenTrace(pub u32);

/// Collects spans, assembles completed traces, and bounds memory.
///
/// The simulator opens a slab slot per sampled request
/// ([`TraceStore::open_trace`]), pushes spans against the returned handle as
/// service frames finish, and calls [`TraceStore::finish_open`] when the root
/// span completes. Completed traces are kept in a bounded FIFO (the Jaeger
/// retention analog); consumers drain or inspect them.
#[derive(Debug)]
pub struct TraceStore {
    /// Span buffers of in-flight traces, indexed by [`OpenTrace`]. Free
    /// slots (on `free`) keep their buffer, so an abort→open cycle reuses
    /// the allocation.
    open: Vec<Vec<Span>>,
    free: Vec<u32>,
    open_count: usize,
    finished: Vec<Trace>,
    capacity: usize,
    dropped: u64,
}

impl TraceStore {
    /// Creates a store retaining up to `capacity` finished traces.
    pub fn new(capacity: usize) -> Self {
        Self {
            open: Vec::new(),
            free: Vec::new(),
            open_count: 0,
            finished: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Opens a slab slot for a new trace, reserving room for `span_budget`
    /// spans (one right-sized allocation instead of a growth chain when the
    /// producer knows the call tree's size; pass 0 when unknown).
    pub fn open_trace(&mut self, span_budget: usize) -> OpenTrace {
        self.open_count += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                // graf-lint: allow(transitive-alloc, slab growth to the sampled-trace high-water mark; steady state recycles via the free list)
                self.open.push(Vec::new());
                (self.open.len() - 1) as u32
            }
        };
        let buf = &mut self.open[slot as usize];
        debug_assert!(buf.is_empty(), "free slot holds a cleared buffer");
        if buf.capacity() < span_budget {
            buf.reserve(span_budget - buf.len());
        }
        OpenTrace(slot)
    }

    /// Records a span for the in-flight trace behind `handle`.
    pub fn push_span(&mut self, handle: OpenTrace, span: Span) {
        self.open[handle.0 as usize].push(span);
    }

    /// Marks the trace behind `handle` complete, moving its spans to the
    /// finished set under `id`. The handle is dead afterwards.
    pub fn finish_open(&mut self, handle: OpenTrace, id: TraceId, api: u16) {
        let spans = std::mem::take(&mut self.open[handle.0 as usize]);
        self.free.push(handle.0);
        self.open_count -= 1;
        if self.finished.len() >= self.capacity {
            // FIFO eviction; bulk-drain half to amortize the shift.
            let drop_n = (self.capacity / 2).max(1);
            self.finished.drain(0..drop_n);
            self.dropped += drop_n as u64;
        }
        self.finished.push(Trace { id, api, spans });
    }

    /// Discards the in-flight trace behind `handle` without finishing it
    /// (request failure). The span buffer stays with the slab slot and is
    /// reused by a later [`TraceStore::open_trace`]. The handle is dead
    /// afterwards.
    pub fn abort_open(&mut self, handle: OpenTrace) {
        self.open[handle.0 as usize].clear();
        self.free.push(handle.0);
        self.open_count -= 1;
    }

    /// Completed traces currently retained, oldest first.
    pub fn finished(&self) -> &[Trace] {
        &self.finished
    }

    /// Removes and returns all completed traces.
    pub fn drain_finished(&mut self) -> Vec<Trace> {
        std::mem::take(&mut self.finished)
    }

    /// Number of traces evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of traces still being assembled.
    pub fn open_count(&self) -> usize {
        self.open_count
    }

    /// Clears all state. Outstanding [`OpenTrace`] handles are invalidated.
    pub fn clear(&mut self) {
        self.open.clear();
        self.free.clear();
        self.open_count = 0;
        self.finished.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn span(trace: u64, span_id: u32, parent: Option<u32>, service: u16, s: u64, e: u64) -> Span {
        Span {
            trace_id: TraceId(trace),
            span_id: SpanId(span_id),
            parent: parent.map(SpanId),
            service,
            api: 0,
            start_us: s,
            end_us: e,
        }
    }

    #[test]
    fn assembles_traces() {
        let mut st = TraceStore::new(16);
        let h = st.open_trace(2);
        assert_eq!(st.open_count(), 1);
        st.push_span(h, span(1, 0, None, 0, 0, 100));
        st.push_span(h, span(1, 1, Some(0), 1, 10, 60));
        st.finish_open(h, TraceId(1), 0);
        assert_eq!(st.finished().len(), 1);
        let t = &st.finished()[0];
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.e2e_latency_us(), 100);
        assert_eq!(t.calls_to(1), 1);
        assert_eq!(st.open_count(), 0);
    }

    #[test]
    fn e2e_latency_without_root_uses_envelope() {
        let t = Trace {
            id: TraceId(9),
            api: 0,
            spans: vec![span(9, 1, Some(0), 1, 20, 50), span(9, 2, Some(0), 2, 40, 90)],
        };
        assert_eq!(t.e2e_latency_us(), 70);
    }

    #[test]
    fn span_budget_reserves_once() {
        let mut st = TraceStore::new(4);
        let h = st.open_trace(13);
        for i in 0..13u32 {
            st.push_span(h, span(1, i, (i > 0).then(|| i - 1), 0, 0, 1));
        }
        st.finish_open(h, TraceId(1), 0);
        assert_eq!(st.finished()[0].spans.len(), 13);
        assert!(st.finished()[0].spans.capacity() <= 16, "no growth chain");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut st = TraceStore::new(4);
        for i in 0..6u64 {
            let h = st.open_trace(1);
            st.push_span(h, span(i, 0, None, 0, 0, 1));
            st.finish_open(h, TraceId(i), 0);
        }
        assert!(st.finished().len() <= 4 + 1);
        assert!(st.dropped() >= 2);
        // The newest trace is always retained.
        assert!(st.finished().iter().any(|t| t.id == TraceId(5)));
    }

    #[test]
    fn abort_discards_open_trace() {
        let mut st = TraceStore::new(4);
        let h = st.open_trace(1);
        st.push_span(h, span(3, 0, None, 0, 0, 1));
        st.abort_open(h);
        assert!(st.finished().is_empty());
        assert_eq!(st.open_count(), 0);
    }

    #[test]
    fn aborted_buffers_are_recycled() {
        let mut st = TraceStore::new(4);
        let h = st.open_trace(2);
        st.push_span(h, span(1, 0, None, 0, 0, 1));
        st.push_span(h, span(1, 1, Some(0), 1, 0, 1));
        st.abort_open(h);
        let h2 = st.open_trace(0);
        assert_eq!(h2, h, "new trace reuses the freed slot (and its buffer)");
        st.push_span(h2, span(2, 0, None, 0, 0, 1));
        st.finish_open(h2, TraceId(2), 0);
        assert_eq!(st.finished()[0].spans.len(), 1, "recycled buffer starts empty");
    }

    #[test]
    fn drain_empties_store() {
        let mut st = TraceStore::new(4);
        let h = st.open_trace(1);
        st.push_span(h, span(1, 0, None, 0, 0, 1));
        st.finish_open(h, TraceId(1), 0);
        let traces = st.drain_finished();
        assert_eq!(traces.len(), 1);
        assert!(st.finished().is_empty());
    }
}
