//! Per-API call statistics derived from traces.
//!
//! This is the data-reduction step between raw traces and GRAF's workload
//! analyzer (§3.3): for each API we learn (a) which services a request
//! touches and how many times (summarized at a percentile, the paper's
//! 90 %-ile), and (b) the parent→child service edges, which define the
//! message-passing structure of the GNN (§3.4).

use std::collections::{BTreeMap, HashMap};

use graf_metrics::Summary;

use crate::store::Trace;

/// A directed service-to-service call edge observed in traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Calling service index.
    pub parent: u16,
    /// Called service index.
    pub child: u16,
}

/// Call profile of one API: per-service call-multiplicity samples.
#[derive(Clone, Debug, Default)]
pub struct ApiProfile {
    /// Per-service: one sample per trace = number of spans that service ran.
    /// A `BTreeMap` so iteration (and everything derived from it) is
    /// deterministic without a sort step.
    calls: BTreeMap<u16, Summary>,
    traces_seen: u64,
}

impl ApiProfile {
    /// Number of traces aggregated into this profile.
    pub fn traces_seen(&self) -> u64 {
        self.traces_seen
    }

    /// Call multiplicity of `service` at percentile `q` over observed traces.
    ///
    /// Traces in which the service did not appear contribute zero samples, so
    /// optional branches are reflected in the distribution. Returns 0.0 for
    /// services never observed.
    pub fn multiplicity(&mut self, service: u16, q: f64) -> f64 {
        self.calls.get_mut(&service).and_then(|s| s.percentile(q)).unwrap_or(0.0)
    }

    /// Services this API was observed to touch at least once, ascending.
    pub fn services(&self) -> Vec<u16> {
        self.calls.keys().copied().collect()
    }
}

/// Aggregates traces into per-API profiles and the global edge set.
#[derive(Clone, Debug, Default)]
pub struct CallStats {
    profiles: BTreeMap<u16, ApiProfile>,
    edges: BTreeMap<Edge, u64>,
}

impl CallStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed trace into the statistics.
    pub fn observe(&mut self, trace: &Trace) {
        let profile = self.profiles.entry(trace.api).or_default();
        profile.traces_seen += 1;

        // Count spans per service in this trace. Ordered so the sample
        // insertion order below is deterministic.
        let mut per_service: BTreeMap<u16, u32> = BTreeMap::new();
        for s in &trace.spans {
            *per_service.entry(s.service).or_insert(0) += 1;
        }
        // Record one multiplicity sample per service that appeared. Services
        // known from earlier traces but absent here get an explicit 0 sample
        // so the percentile reflects optionality.
        for (svc, n) in &per_service {
            profile.calls.entry(*svc).or_default().record(*n as f64);
        }
        let known: Vec<u16> = profile.calls.keys().copied().collect();
        for svc in known {
            if !per_service.contains_key(&svc) {
                profile.calls.get_mut(&svc).expect("key just listed").record(0.0);
            }
        }

        // Edges from parent links.
        let by_id: HashMap<_, _> = trace.spans.iter().map(|s| (s.span_id, s)).collect();
        for s in &trace.spans {
            if let Some(pid) = s.parent {
                if let Some(parent) = by_id.get(&pid) {
                    *self
                        .edges
                        .entry(Edge { parent: parent.service, child: s.service })
                        .or_insert(0) += 1;
                }
            }
        }
    }

    /// Folds a batch of traces.
    pub fn observe_all<'a>(&mut self, traces: impl IntoIterator<Item = &'a Trace>) {
        for t in traces {
            self.observe(t);
        }
    }

    /// The profile for `api`, if any trace of it has been seen.
    pub fn profile_mut(&mut self, api: u16) -> Option<&mut ApiProfile> {
        self.profiles.get_mut(&api)
    }

    /// All observed service-to-service edges, in ascending order.
    pub fn edges(&self) -> Vec<Edge> {
        self.edges.keys().copied().collect()
    }

    /// How many times `edge` was traversed across all observed traces.
    pub fn edge_count(&self, edge: Edge) -> u64 {
        self.edges.get(&edge).copied().unwrap_or(0)
    }

    /// APIs that have at least one observed trace, ascending.
    pub fn apis(&self) -> Vec<u16> {
        self.profiles.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanId, TraceId};

    fn trace(id: u64, api: u16, spans: &[(u32, Option<u32>, u16)]) -> Trace {
        Trace {
            id: TraceId(id),
            api,
            spans: spans
                .iter()
                .map(|&(sid, parent, svc)| Span {
                    trace_id: TraceId(id),
                    span_id: SpanId(sid),
                    parent: parent.map(SpanId),
                    service: svc,
                    api,
                    start_us: 0,
                    end_us: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn edges_follow_parent_links() {
        let mut cs = CallStats::new();
        // 0 -> 1, 0 -> 2, 1 -> 3
        let t = trace(1, 0, &[(0, None, 0), (1, Some(0), 1), (2, Some(0), 2), (3, Some(1), 3)]);
        cs.observe(&t);
        let edges = cs.edges();
        assert_eq!(
            edges,
            vec![
                Edge { parent: 0, child: 1 },
                Edge { parent: 0, child: 2 },
                Edge { parent: 1, child: 3 }
            ]
        );
        assert_eq!(cs.edge_count(Edge { parent: 0, child: 1 }), 1);
    }

    #[test]
    fn multiplicity_counts_spans_per_trace() {
        let mut cs = CallStats::new();
        // Service 1 called twice per request.
        let t = trace(1, 0, &[(0, None, 0), (1, Some(0), 1), (2, Some(0), 1)]);
        cs.observe(&t);
        let p = cs.profile_mut(0).unwrap();
        assert_eq!(p.multiplicity(1, 0.9), 2.0);
        assert_eq!(p.multiplicity(0, 0.9), 1.0);
        assert_eq!(p.multiplicity(9, 0.9), 0.0, "unseen service");
    }

    #[test]
    fn optional_services_show_in_low_percentiles() {
        let mut cs = CallStats::new();
        // Trace A touches service 1; trace B does not.
        cs.observe(&trace(1, 0, &[(0, None, 0), (1, Some(0), 1)]));
        cs.observe(&trace(2, 0, &[(0, None, 0)]));
        let p = cs.profile_mut(0).unwrap();
        assert_eq!(p.traces_seen(), 2);
        // Samples for service 1 are {1, 0} → median 0 or 1 depending on rank;
        // p90 must be 1 (it is called in most-demanding traces).
        assert_eq!(p.multiplicity(1, 0.9), 1.0);
        assert_eq!(p.multiplicity(1, 0.1), 0.0);
    }

    #[test]
    fn profiles_are_per_api() {
        let mut cs = CallStats::new();
        cs.observe(&trace(1, 0, &[(0, None, 0)]));
        cs.observe(&trace(2, 1, &[(0, None, 0), (1, Some(0), 2)]));
        assert_eq!(cs.apis(), vec![0, 1]);
        assert_eq!(cs.profile_mut(1).unwrap().services(), vec![0, 2]);
    }
}
