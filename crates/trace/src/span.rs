//! Span and identifier types.

/// Identifies one end-to-end request (one trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u32);

/// One service-level unit of work within a trace.
///
/// Mirrors the Jaeger span model: a span covers the interval a service spent
/// handling (part of) a request, and links to the span of the calling service.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// The trace (end-to-end request) this span belongs to.
    pub trace_id: TraceId,
    /// This span's id, unique within the trace.
    pub span_id: SpanId,
    /// The parent span's id; `None` for the root span.
    pub parent: Option<SpanId>,
    /// Index of the service that executed this span.
    pub service: u16,
    /// Index of the API the trace belongs to.
    pub api: u16,
    /// Span start, simulated microseconds.
    pub start_us: u64,
    /// Span end, simulated microseconds. Always >= `start_us`.
    pub end_us: u64,
}

impl Span {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// `true` when this is the trace's root span.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: u64, end: u64) -> Span {
        Span {
            trace_id: TraceId(1),
            span_id: SpanId(1),
            parent: None,
            service: 0,
            api: 0,
            start_us: start,
            end_us: end,
        }
    }

    #[test]
    fn duration_is_end_minus_start() {
        assert_eq!(span(10, 35).duration_us(), 25);
    }

    #[test]
    fn duration_saturates() {
        // A degenerate span never yields an underflowed duration.
        assert_eq!(span(35, 10).duration_us(), 0);
    }

    #[test]
    fn root_detection() {
        let mut s = span(0, 1);
        assert!(s.is_root());
        s.parent = Some(SpanId(0));
        assert!(!s.is_root());
    }
}
