//! # graf-trace
//!
//! Distributed-tracing substrate for the GRAF reproduction — the in-simulation
//! analog of Jaeger (§3.2 of the paper). Every request that flows through the
//! simulated microservice application emits one [`Span`] per service hop; the
//! [`TraceStore`] assembles spans into traces and the [`CallStats`] layer
//! derives exactly the data GRAF's workload analyzer consumes (§3.3):
//!
//! * the execution path of each API (which services a request touches),
//! * the per-trace call multiplicity of each service for each API, summarized
//!   at a configurable percentile (the paper uses the 90 %-ile), and
//! * parent→child edges of the microservice graph, which the GNN's
//!   message-passing structure is built from (§3.4).
//!
//! Services and APIs are identified by plain `u16` indices assigned by the
//! simulator; this crate stays a pure data layer with no simulation
//! dependency.
//!
//! **Invariants.** The crate draws no randomness and reads no clock: an
//! identical span stream always assembles into identical traces and call
//! statistics, which is what makes whole-framework runs reproducible per
//! seed. Span drop/truncation faults live upstream in `graf-chaos`/`graf-sim`
//! — this layer faithfully stores whatever survives.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod span;
pub mod stats;
pub mod store;

pub use span::{Span, SpanId, TraceId};
pub use stats::{ApiProfile, CallStats, Edge};
pub use store::{OpenTrace, Trace, TraceStore};
