//! Fixed-width time windows of latency histograms.
//!
//! The paper measures percentile latency "within 10 seconds time windows"
//! during sample collection (§5) and uses short windows for control decisions.
//! [`WindowedLatency`] buckets observations by `floor(t / window_us)` and lets
//! callers query percentiles for a single window or across the trailing `k`
//! windows, discarding windows older than a retention horizon.

use std::collections::VecDeque;

use crate::histogram::Histogram;

/// Latency observations grouped into fixed-width windows of simulated time.
#[derive(Clone, Debug)]
pub struct WindowedLatency {
    window_us: u64,
    retain: usize,
    /// `(window_index, histogram)` in increasing window order.
    windows: VecDeque<(u64, Histogram)>,
}

impl WindowedLatency {
    /// Creates a store with `window_us`-wide windows, keeping the most recent
    /// `retain` windows.
    ///
    /// # Panics
    /// Panics if `window_us == 0` or `retain == 0`.
    pub fn new(window_us: u64, retain: usize) -> Self {
        assert!(window_us > 0, "window width must be positive");
        assert!(retain > 0, "must retain at least one window");
        Self { window_us, retain, windows: VecDeque::new() }
    }

    /// Window width in simulated microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Records a latency observed at simulated time `t_us`.
    ///
    /// Observations may arrive slightly out of order (completions do); any
    /// window still retained accepts records.
    pub fn record(&mut self, t_us: u64, latency_us: u64) {
        let idx = t_us / self.window_us;
        // Common case: newest window.
        if let Some(back) = self.windows.back_mut() {
            if back.0 == idx {
                back.1.record(latency_us);
                return;
            }
        }
        if let Some(pos) = self.windows.iter().position(|(i, _)| *i == idx) {
            self.windows[pos].1.record(latency_us);
            return;
        }
        // New window. At retention, recycle the evicted oldest histogram
        // (clear keeps its bucket capacity) so the steady-state record path
        // performs zero allocations once the deque and buckets are warm.
        let mut h = if self.windows.len() >= self.retain {
            match self.windows.front() {
                // Below the retention horizon: the old code inserted the
                // window and immediately evicted it again — a no-op.
                Some(&(front, _)) if idx < front => return,
                _ => {
                    let (_, mut old) = self.windows.pop_front().expect("retain > 0");
                    old.clear();
                    old
                }
            }
        } else {
            Histogram::new()
        };
        h.record(latency_us);
        let insert_at =
            self.windows.iter().position(|(i, _)| *i > idx).unwrap_or(self.windows.len());
        self.windows.insert(insert_at, (idx, h));
    }

    /// Percentile over the single window containing `t_us`, if any data exists.
    pub fn percentile_at(&self, t_us: u64, q: f64) -> Option<u64> {
        let idx = t_us / self.window_us;
        self.windows.iter().find(|(i, _)| *i == idx).and_then(|(_, h)| h.percentile(q))
    }

    /// Percentile over the trailing `k` windows ending at the window that
    /// contains `now_us` (inclusive).
    pub fn percentile_trailing(&self, now_us: u64, k: usize, q: f64) -> Option<u64> {
        let hi = now_us / self.window_us;
        let lo = hi.saturating_sub(k.saturating_sub(1) as u64);
        let mut merged = Histogram::new();
        for (i, h) in &self.windows {
            if *i >= lo && *i <= hi {
                merged.merge(h);
            }
        }
        merged.percentile(q)
    }

    /// Number of observations in the trailing `k` windows ending at `now_us`.
    pub fn count_trailing(&self, now_us: u64, k: usize) -> u64 {
        let hi = now_us / self.window_us;
        let lo = hi.saturating_sub(k.saturating_sub(1) as u64);
        self.windows.iter().filter(|(i, _)| *i >= lo && *i <= hi).map(|(_, h)| h.count()).sum()
    }

    /// Mean over the trailing `k` windows ending at `now_us`.
    pub fn mean_trailing(&self, now_us: u64, k: usize) -> Option<f64> {
        let hi = now_us / self.window_us;
        let lo = hi.saturating_sub(k.saturating_sub(1) as u64);
        let mut merged = Histogram::new();
        for (i, h) in &self.windows {
            if *i >= lo && *i <= hi {
                merged.merge(h);
            }
        }
        if merged.is_empty() {
            None
        } else {
            Some(merged.mean())
        }
    }

    /// Removes all stored windows.
    pub fn clear(&mut self) {
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_their_window() {
        let mut w = WindowedLatency::new(10_000_000, 8); // 10 s windows
        w.record(1_000_000, 100);
        w.record(11_000_000, 900);
        assert_eq!(w.percentile_at(5_000_000, 0.5), Some(100));
        assert_eq!(w.percentile_at(15_000_000, 0.5), Some(900));
        assert_eq!(w.percentile_at(25_000_000, 0.5), None);
    }

    #[test]
    fn trailing_merges_windows() {
        let mut w = WindowedLatency::new(1_000_000, 16);
        for i in 0..10u64 {
            w.record(i * 1_000_000 + 1, i * 10);
        }
        // Last 10 windows contain 0,10,...,90.
        let p100 = w.percentile_trailing(9_500_000, 10, 1.0).unwrap();
        assert_eq!(p100, 90);
        assert_eq!(w.count_trailing(9_500_000, 10), 10);
        // Only the final window.
        assert_eq!(w.percentile_trailing(9_500_000, 1, 1.0), Some(90));
    }

    #[test]
    fn retention_discards_old_windows() {
        let mut w = WindowedLatency::new(1_000, 2);
        w.record(500, 1);
        w.record(1_500, 2);
        w.record(2_500, 3);
        assert_eq!(w.percentile_at(500, 0.5), None, "oldest window evicted");
        assert_eq!(w.percentile_at(2_500, 0.5), Some(3));
    }

    #[test]
    fn out_of_order_records_accepted() {
        let mut w = WindowedLatency::new(1_000, 8);
        w.record(2_500, 30);
        w.record(500, 10); // late record for an older, still-retained window
        assert_eq!(w.percentile_at(500, 0.5), Some(10));
        assert_eq!(w.count_trailing(2_500, 3), 2);
    }

    #[test]
    fn mean_trailing_matches_values() {
        let mut w = WindowedLatency::new(1_000, 8);
        w.record(100, 10);
        w.record(1_100, 30);
        let m = w.mean_trailing(1_100, 2).unwrap();
        assert!((m - 20.0).abs() < 1e-9);
    }
}
