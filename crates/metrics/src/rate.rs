//! Windowed event-rate counter.
//!
//! Figure 7 of the paper plots the workload (qps) *perceived by each
//! microservice* over time; the HPA baseline also needs recent request rates.
//! [`RateCounter`] counts events in fixed-width windows of simulated time and
//! reports per-second rates.

use std::collections::VecDeque;

/// Counts events in fixed-width windows and reports rates.
#[derive(Clone, Debug)]
pub struct RateCounter {
    window_us: u64,
    retain: usize,
    /// `(window_index, count)` in increasing window order.
    windows: VecDeque<(u64, u64)>,
}

impl RateCounter {
    /// Creates a counter with `window_us`-wide windows retaining `retain` of them.
    ///
    /// # Panics
    /// Panics if `window_us == 0` or `retain == 0`.
    pub fn new(window_us: u64, retain: usize) -> Self {
        assert!(window_us > 0 && retain > 0);
        Self { window_us, retain, windows: VecDeque::new() }
    }

    /// Records one event at time `t_us`.
    pub fn record(&mut self, t_us: u64) {
        let idx = t_us / self.window_us;
        if let Some(back) = self.windows.back_mut() {
            if back.0 == idx {
                back.1 += 1;
                return;
            }
        }
        if let Some(pos) = self.windows.iter().position(|(i, _)| *i == idx) {
            self.windows[pos].1 += 1;
            return;
        }
        // New window. Evict the oldest *before* inserting so the deque never
        // exceeds `retain` entries: once its capacity is warm, the
        // steady-state record path performs zero allocations.
        if self.windows.len() >= self.retain {
            match self.windows.front() {
                // Below the retention horizon: the old code inserted the
                // window and immediately evicted it again — a no-op.
                Some(&(front, _)) if idx < front => return,
                _ => {
                    self.windows.pop_front();
                }
            }
        }
        let at = self.windows.iter().position(|(i, _)| *i > idx).unwrap_or(self.windows.len());
        self.windows.insert(at, (idx, 1));
    }

    /// Events counted in the window containing `t_us`.
    pub fn count_at(&self, t_us: u64) -> u64 {
        let idx = t_us / self.window_us;
        self.windows.iter().find(|(i, _)| *i == idx).map_or(0, |(_, c)| *c)
    }

    /// Events counted over the trailing `k` windows ending at `now_us`.
    pub fn count_trailing(&self, now_us: u64, k: usize) -> u64 {
        let hi = now_us / self.window_us;
        let lo = hi.saturating_sub(k.saturating_sub(1) as u64);
        self.windows.iter().filter(|(i, _)| *i >= lo && *i <= hi).map(|(_, c)| *c).sum()
    }

    /// Mean events-per-second over the trailing `k` windows ending at `now_us`.
    pub fn rate_trailing(&self, now_us: u64, k: usize) -> f64 {
        let n = self.count_trailing(now_us, k);
        let secs = (self.window_us as f64 * k as f64) / 1e6;
        if secs <= 0.0 {
            0.0
        } else {
            n as f64 / secs
        }
    }

    /// Window width in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_window() {
        let mut r = RateCounter::new(1_000_000, 8);
        for t in [100, 200, 300, 1_000_100] {
            r.record(t);
        }
        assert_eq!(r.count_at(500), 3);
        assert_eq!(r.count_at(1_500_000), 1);
        assert_eq!(r.count_at(2_500_000), 0);
    }

    #[test]
    fn rate_is_per_second() {
        let mut r = RateCounter::new(1_000_000, 8);
        for i in 0..300 {
            r.record(i * 3_000); // 300 events in ~0.9 s, all window 0
        }
        let rate = r.rate_trailing(900_000, 1);
        assert!((rate - 300.0).abs() < 1e-9);
    }

    #[test]
    fn trailing_spans_windows() {
        let mut r = RateCounter::new(1_000, 16);
        r.record(500);
        r.record(1_500);
        r.record(2_500);
        assert_eq!(r.count_trailing(2_500, 2), 2);
        assert_eq!(r.count_trailing(2_500, 3), 3);
    }

    #[test]
    fn retention_evicts_old_windows() {
        let mut r = RateCounter::new(1_000, 2);
        r.record(500);
        r.record(1_500);
        r.record(2_500);
        assert_eq!(r.count_at(500), 0);
        assert_eq!(r.count_at(2_500), 1);
    }
}
