//! Append-only time series used to record experiment signals.
//!
//! The figure-regeneration benches plot instance counts, workloads and CPU
//! totals over time; [`TimeSeries`] is the minimal structure they share.

/// An append-only series of `(t_us, value)` points, `t` non-decreasing.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    t: Vec<u64>,
    v: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point. `t_us` must be >= the previous point's time.
    ///
    /// # Panics
    /// Panics if time goes backwards — series are produced by a monotone
    /// simulation clock, so a violation indicates a driver bug.
    pub fn push(&mut self, t_us: u64, value: f64) {
        if let Some(&last) = self.t.last() {
            assert!(t_us >= last, "time series must be monotone: {t_us} < {last}");
        }
        self.t.push(t_us);
        self.v.push(value);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// `true` if no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Iterator over `(t_us, value)` points.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.t.iter().copied().zip(self.v.iter().copied())
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        Some((*self.t.last()?, *self.v.last()?))
    }

    /// Value at or immediately before `t_us` (step interpolation).
    pub fn at(&self, t_us: u64) -> Option<f64> {
        let idx = self.t.partition_point(|&t| t <= t_us);
        if idx == 0 {
            None
        } else {
            Some(self.v[idx - 1])
        }
    }

    /// Time-weighted mean over `[from_us, to_us)` using step interpolation.
    ///
    /// Returns `None` if the series has no value defined anywhere in range.
    pub fn time_mean(&self, from_us: u64, to_us: u64) -> Option<f64> {
        if to_us <= from_us || self.t.is_empty() {
            return None;
        }
        let mut acc = 0.0f64;
        let mut covered = 0u64;
        // Current value entering the range.
        let mut cur = self.at(from_us);
        let mut cur_t = from_us;
        let start = self.t.partition_point(|&t| t <= from_us);
        for i in start..self.t.len() {
            let t = self.t[i].min(to_us);
            if t > cur_t {
                if let Some(v) = cur {
                    acc += v * (t - cur_t) as f64;
                    covered += t - cur_t;
                }
            }
            if self.t[i] >= to_us {
                break;
            }
            cur = Some(self.v[i]);
            cur_t = self.t[i];
        }
        if cur_t < to_us {
            if let Some(v) = cur {
                acc += v * (to_us - cur_t) as f64;
                covered += to_us - cur_t;
            }
        }
        if covered == 0 {
            None
        } else {
            Some(acc / covered as f64)
        }
    }

    /// Maximum value over points with `from_us <= t < to_us`, including the
    /// value active when entering the range.
    pub fn max_over(&self, from_us: u64, to_us: u64) -> Option<f64> {
        let mut best = self.at(from_us);
        for (t, v) in self.iter() {
            if t >= from_us && t < to_us {
                best = Some(best.map_or(v, |b: f64| b.max(v)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new();
        s.push(0, 1.0);
        s.push(10, 2.0);
        s.push(20, 3.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.at(5), Some(1.0));
        assert_eq!(s.at(10), Some(2.0));
        assert_eq!(s.at(25), Some(3.0));
        assert_eq!(s.last(), Some((20, 3.0)));
    }

    #[test]
    fn at_before_first_point_is_none() {
        let mut s = TimeSeries::new();
        s.push(10, 5.0);
        assert_eq!(s.at(5), None);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_push_panics() {
        let mut s = TimeSeries::new();
        s.push(10, 1.0);
        s.push(5, 2.0);
    }

    #[test]
    fn time_mean_weights_by_duration() {
        let mut s = TimeSeries::new();
        s.push(0, 1.0);
        s.push(10, 3.0);
        // [0,10): 1.0 for 10us; [10,20): 3.0 for 10us → mean 2.0
        let m = s.time_mean(0, 20).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
        // Partial range [5,15): 1.0 for 5us, 3.0 for 5us → 2.0
        let m = s.time_mean(5, 15).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_mean_with_no_coverage_is_none() {
        let mut s = TimeSeries::new();
        s.push(100, 1.0);
        assert_eq!(s.time_mean(0, 50), None);
    }

    #[test]
    fn max_over_includes_entering_value() {
        let mut s = TimeSeries::new();
        s.push(0, 9.0);
        s.push(50, 1.0);
        assert_eq!(s.max_over(10, 40), Some(9.0));
        assert_eq!(s.max_over(60, 100), Some(1.0));
    }
}
