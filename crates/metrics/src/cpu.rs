//! CPU usage and utilization accounting — the cAdvisor analog.
//!
//! The Kubernetes autoscaler the paper compares against scales on CPU
//! *utilization*: used CPU time divided by allocated quota over a control
//! window. [`CpuAccount`] integrates both quantities against simulated time so
//! the HPA baseline sees the same signal it would get from cAdvisor.

/// Integrates CPU usage (millicore·µs) and quota availability over time.
///
/// A service's instances call [`CpuAccount::add_usage`] as jobs execute; the
/// service runtime calls [`CpuAccount::set_quota`] whenever the total ready
/// quota changes. Utilization over a window is then
/// `used(window) / quota_integral(window)`.
#[derive(Clone, Debug)]
pub struct CpuAccount {
    /// Cumulative used millicore·µs checkpoints: `(t_us, cumulative)`.
    used: Vec<(u64, f64)>,
    used_acc: f64,
    /// Current total quota in millicores and when it was last changed.
    quota_mc: f64,
    quota_since: u64,
    /// Cumulative quota integral checkpoints: `(t_us, cumulative mc·us)`.
    quota_integral: Vec<(u64, f64)>,
    quota_acc: f64,
    /// Usage-checkpoint resolution in µs: samples landing in the same
    /// `t / res_us` cell replace the previous checkpoint instead of appending.
    /// `1` stores one checkpoint per distinct microsecond (exact queries).
    res_us: u64,
}

impl Default for CpuAccount {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuAccount {
    /// Creates an account with zero quota at t = 0.
    pub fn new() -> Self {
        Self {
            used: vec![(0, 0.0)],
            used_acc: 0.0,
            quota_mc: 0.0,
            quota_since: 0,
            quota_integral: vec![(0, 0.0)],
            quota_acc: 0.0,
            res_us: 1,
        }
    }

    /// Sets the usage-checkpoint resolution (µs). At the default `1`, the
    /// account stores one checkpoint per distinct timestamp — exact for any
    /// query window. Coarser resolutions bound memory at high event rates:
    /// cumulative totals stay exact (the running sum is carried forward);
    /// only the placement of usage *within* one cell is approximated.
    pub fn set_resolution(&mut self, res_us: u64) {
        self.res_us = res_us.max(1);
    }

    /// Adds `mc_us` millicore·µs of CPU work consumed, stamped at `t_us`.
    ///
    /// Zero-usage samples are skipped (they cannot change any integral), and
    /// a sample in the same resolution cell as the last checkpoint replaces
    /// it — so a burst of same-timestamp station advances costs one stored
    /// checkpoint, not one per event.
    pub fn add_usage(&mut self, t_us: u64, mc_us: f64) {
        debug_assert!(mc_us >= -1e-6, "usage cannot be negative: {mc_us}");
        if mc_us <= 0.0 {
            return;
        }
        self.used_acc += mc_us;
        let last = self.used.last_mut().expect("series starts non-empty");
        if last.0 / self.res_us == t_us / self.res_us {
            *last = (t_us, self.used_acc);
        } else {
            self.used.push((t_us, self.used_acc));
        }
    }

    /// Updates the total ready quota to `quota_mc` at time `t_us`.
    pub fn set_quota(&mut self, t_us: u64, quota_mc: f64) {
        // Close out the previous quota segment.
        self.quota_acc += self.quota_mc * (t_us.saturating_sub(self.quota_since)) as f64;
        self.quota_integral.push((t_us, self.quota_acc));
        self.quota_mc = quota_mc;
        self.quota_since = t_us;
    }

    /// Current quota in millicores.
    pub fn quota_mc(&self) -> f64 {
        self.quota_mc
    }

    fn cum_at(series: &[(u64, f64)], t_us: u64) -> f64 {
        let idx = series.partition_point(|&(t, _)| t <= t_us);
        if idx == 0 {
            0.0
        } else {
            series[idx - 1].1
        }
    }

    /// CPU used in `[from_us, to_us)`, in millicore·µs.
    pub fn used_in(&self, from_us: u64, to_us: u64) -> f64 {
        Self::cum_at(&self.used, to_us) - Self::cum_at(&self.used, from_us)
    }

    /// Quota integral over `[from_us, to_us)`, in millicore·µs, including the
    /// live segment since the last [`CpuAccount::set_quota`] call.
    pub fn quota_in(&self, from_us: u64, to_us: u64) -> f64 {
        let live = |t: u64| -> f64 {
            if t > self.quota_since {
                Self::cum_at(&self.quota_integral, t)
                    + self.quota_mc * (t - self.quota_since) as f64
            } else {
                Self::cum_at(&self.quota_integral, t)
            }
        };
        live(to_us) - live(from_us)
    }

    /// Mean utilization over `[from_us, to_us)`: used / quota, in `[0, ∞)`.
    ///
    /// Returns `None` when the quota integral is zero (no capacity existed).
    pub fn utilization(&self, from_us: u64, to_us: u64) -> Option<f64> {
        let q = self.quota_in(from_us, to_us);
        if q <= 0.0 {
            None
        } else {
            Some(self.used_in(from_us, to_us) / q)
        }
    }

    /// Mean used millicores over `[from_us, to_us)`.
    pub fn used_millicores(&self, from_us: u64, to_us: u64) -> f64 {
        let dt = to_us.saturating_sub(from_us) as f64;
        if dt <= 0.0 {
            0.0
        } else {
            self.used_in(from_us, to_us) / dt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_used_over_quota() {
        let mut a = CpuAccount::new();
        a.set_quota(0, 1000.0); // 1000 mc
        a.add_usage(500_000, 250.0 * 500_000.0); // 250 mc for 0.5 s
        let u = a.utilization(0, 500_000).unwrap();
        assert!((u - 0.25).abs() < 1e-9, "u={u}");
    }

    #[test]
    fn quota_changes_are_integrated() {
        let mut a = CpuAccount::new();
        a.set_quota(0, 1000.0);
        a.set_quota(100, 3000.0);
        // [0,100): 1000; [100,200): 3000 → integral = 100*1000 + 100*3000
        let q = a.quota_in(0, 200);
        assert!((q - 400_000.0).abs() < 1e-6, "q={q}");
    }

    #[test]
    fn zero_quota_yields_none() {
        let a = CpuAccount::new();
        assert_eq!(a.utilization(0, 100), None);
    }

    #[test]
    fn used_millicores_averages() {
        let mut a = CpuAccount::new();
        a.set_quota(0, 500.0);
        a.add_usage(1_000_000, 100.0 * 1_000_000.0);
        assert!((a.used_millicores(0, 1_000_000) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn quota_live_segment_counts_before_next_set() {
        let mut a = CpuAccount::new();
        a.set_quota(0, 200.0);
        // No further set_quota: the live segment must still integrate.
        let q = a.quota_in(0, 1_000);
        assert!((q - 200_000.0).abs() < 1e-9, "live quota integral {q}");
    }

    #[test]
    fn utilization_can_exceed_one_during_drain() {
        // Usage attributed while quota was already withdrawn (draining
        // instances) may push utilization above 1; it must not panic or clamp.
        let mut a = CpuAccount::new();
        a.set_quota(0, 100.0);
        a.add_usage(100, 100.0 * 100.0);
        a.set_quota(100, 0.0);
        a.add_usage(200, 50.0 * 100.0);
        let u = a.utilization(0, 100).unwrap();
        assert!((u - 1.0).abs() < 1e-9);
        assert_eq!(a.utilization(100, 200), None, "zero quota window");
    }

    #[test]
    fn same_timestamp_samples_collapse_exactly() {
        // A burst of samples at one timestamp stores one checkpoint and every
        // query is identical to the append-always behaviour.
        let mut a = CpuAccount::new();
        a.set_quota(0, 100.0);
        a.add_usage(10, 5.0);
        a.add_usage(10, 7.0);
        a.add_usage(10, 9.0);
        a.add_usage(20, 1.0);
        assert_eq!(a.used.len(), 1 + 2, "initial + one per distinct t");
        assert!((a.used_in(0, 15) - 21.0).abs() < 1e-9);
        assert!((a.used_in(15, 25) - 1.0).abs() < 1e-9);
        a.add_usage(30, 0.0); // zero usage cannot move any integral: skipped
        assert_eq!(a.used.len(), 3);
    }

    #[test]
    fn coarse_resolution_keeps_cumulative_totals_exact() {
        let mut a = CpuAccount::new();
        a.set_resolution(1_000);
        a.set_quota(0, 100.0);
        for t in 0..100u64 {
            a.add_usage(t * 50, 2.0); // 100 samples over 5 ms → 5 cells
        }
        assert!(a.used.len() <= 1 + 5 + 1, "bounded by cell count, got {}", a.used.len());
        // Totals across any boundary beyond the last sample are exact.
        assert!((a.used_in(0, 10_000) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn windows_partition_usage() {
        let mut a = CpuAccount::new();
        a.set_quota(0, 100.0);
        a.add_usage(10, 5.0);
        a.add_usage(20, 7.0);
        a.add_usage(30, 9.0);
        let total = a.used_in(0, 40);
        let parts = a.used_in(0, 15) + a.used_in(15, 25) + a.used_in(25, 40);
        assert!((total - parts).abs() < 1e-9);
        assert!((total - 21.0).abs() < 1e-9);
    }
}
