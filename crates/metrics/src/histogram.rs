//! Log-bucketed latency histogram with bounded relative error.
//!
//! The design mirrors HDR-style histograms: values are mapped to buckets whose
//! width grows geometrically, so any recorded value is reproduced by
//! [`Histogram::percentile`] within a fixed relative error (~2 % by default).
//! This is the same trade-off Prometheus/Jaeger make for latency data, and it
//! is what the paper's tail-latency measurements rely on.

/// Geometric growth factor between adjacent buckets.
///
/// `1.02` keeps the relative quantile error under 2 %, comfortably below the
/// natural run-to-run variance of p99 latency that the paper itself reports
/// (Table 2 notes >20 % irreducible error from p99 noise).
const GROWTH: f64 = 1.02;

/// Number of exact one-microsecond buckets at the low end.
///
/// Latencies below this resolve exactly; beyond it buckets grow geometrically.
const LINEAR_CUTOFF: u64 = 128;

/// Precomputed geometric-bucket boundaries.
///
/// `bounds[i]` is the smallest value whose geometric bucket index is
/// `LINEAR_CUTOFF + i`; `cnt_le_pow2[k]` counts the bounds `<= 2^k`, which
/// narrows a lookup to the ~35 buckets of one octave. The table is built once
/// per process from the *same* float expression the bucketer historically
/// evaluated per record (`ln(v / cutoff) / ln(growth)`, floored), and each
/// boundary is adjusted against that expression, so table lookups reproduce
/// the float bucketing bit-for-bit — without the per-record `ln`.
struct BucketTable {
    bounds: Vec<u64>,
    cnt_le_pow2: [u32; 64],
}

static BUCKET_TABLE: std::sync::OnceLock<BucketTable> = std::sync::OnceLock::new();

impl BucketTable {
    fn get() -> &'static BucketTable {
        BUCKET_TABLE.get_or_init(BucketTable::build)
    }

    /// The historical per-record formula; the reference the table must match.
    fn float_extra(value: u64) -> usize {
        let extra = ((value as f64) / (LINEAR_CUTOFF as f64)).ln() / GROWTH.ln();
        extra.floor() as usize
    }

    fn build() -> Self {
        let mut bounds = vec![LINEAR_CUTOFF];
        loop {
            let i = bounds.len();
            // First guess from the closed form, then nudge until it is the
            // exact smallest value the float formula maps to bucket `i`.
            let est = (LINEAR_CUTOFF as f64) * GROWTH.powi(i as i32);
            if est >= u64::MAX as f64 {
                break;
            }
            let mut c = (est as u64).max(LINEAR_CUTOFF + 1);
            while c > LINEAR_CUTOFF + 1 && Self::float_extra(c - 1) >= i {
                c -= 1;
            }
            while Self::float_extra(c) < i {
                c += 1;
            }
            bounds.push(c);
        }
        let mut cnt_le_pow2 = [0u32; 64];
        for (k, slot) in cnt_le_pow2.iter_mut().enumerate() {
            *slot = bounds.partition_point(|&b| b <= (1u64 << k)) as u32;
        }
        Self { bounds, cnt_le_pow2 }
    }

    /// Geometric bucket offset of `value` (which must be `>= LINEAR_CUTOFF`).
    #[inline]
    fn extra_of(&self, value: u64) -> usize {
        let k = value.ilog2() as usize;
        let lo = self.cnt_le_pow2[k] as usize;
        let hi = if k + 1 < 64 { self.cnt_le_pow2[k + 1] as usize } else { self.bounds.len() };
        // The octave holds ≤ ~36 bounds: a branchless count vectorizes and
        // beats a binary search's unpredictable branches.
        let in_octave: usize = self.bounds[lo..hi].iter().map(|&b| (b <= value) as usize).sum();
        lo + in_octave - 1
    }
}

/// A log-bucketed histogram of `u64` values (simulation microseconds).
///
/// Recording is O(1); percentile queries are O(#buckets). Buckets are
/// allocated lazily up to the largest observed value.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: Vec::new(), total: 0, max: 0, min: u64::MAX, sum: 0 }
    }

    /// Maps a value to its bucket index.
    ///
    /// Table-driven (one octave-narrowed binary search) but bit-identical to
    /// the original `ln`-per-call mapping — see [`BucketTable`].
    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value < LINEAR_CUTOFF {
            value as usize
        } else {
            LINEAR_CUTOFF as usize + BucketTable::get().extra_of(value)
        }
    }

    /// Returns a representative value (geometric midpoint) for a bucket index.
    fn value_of(bucket: usize) -> u64 {
        if bucket < LINEAR_CUTOFF as usize {
            bucket as u64
        } else {
            let lo = (LINEAR_CUTOFF as f64) * GROWTH.powi((bucket - LINEAR_CUTOFF as usize) as i32);
            let hi = lo * GROWTH;
            ((lo + hi) * 0.5).round() as u64
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Returns the value at quantile `q` in `[0, 1]`.
    ///
    /// The answer is exact for values under `LINEAR_CUTOFF` and within the
    /// bucket relative error otherwise. Returns `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation (1-based), "nearest-rank" definition.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let top = self.counts.iter().rposition(|&c| c > 0);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The extreme buckets answer with the exact extrema (so p0
                // and p100 are exact); interior buckets use the midpoint.
                if Some(b) == top && seen == self.total && c > 0 && rank > seen - c {
                    return Some(self.max);
                }
                return Some(Self::value_of(b).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Sum of all recorded values (exact).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Inclusive upper bound of a bucket, for cumulative-bucket exposition.
    fn bucket_upper(bucket: usize) -> f64 {
        if bucket < LINEAR_CUTOFF as usize {
            bucket as f64
        } else {
            let lo = (LINEAR_CUTOFF as f64) * GROWTH.powi((bucket - LINEAR_CUTOFF as usize) as i32);
            lo * GROWTH
        }
    }

    /// Iterates the non-empty buckets as `(upper_bound, count)` pairs in
    /// ascending bound order — the shape Prometheus-style cumulative
    /// histogram exposition needs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_upper(b), c))
    }

    /// Number of observations in buckets whose upper bound is ≤ `bound` —
    /// the cumulative count a Prometheus `_bucket{le="bound"}` sample
    /// reports. Bounds between buckets simply include every whole bucket
    /// below them, so any ascending bound list yields a valid cumulative
    /// series.
    pub fn count_le(&self, bound: f64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|&(b, _)| Self::bucket_upper(b) <= bound)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, &c) in other.counts.iter().enumerate() {
            self.counts[b] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }

    /// Clears all recorded data.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.max = 0;
        self.min = u64::MAX;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_table_matches_float_formula() {
        // Exhaustive over the low range, boundary-neighborhood and strided
        // probes above: the table must reproduce the ln-based mapping exactly.
        for v in LINEAR_CUTOFF..100_000 {
            assert_eq!(
                Histogram::bucket_of(v),
                LINEAR_CUTOFF as usize + BucketTable::float_extra(v),
                "value {v}"
            );
        }
        for &b in &BucketTable::get().bounds {
            for v in [b.saturating_sub(1), b, b + 1] {
                assert_eq!(
                    Histogram::bucket_of(v.max(LINEAR_CUTOFF)),
                    LINEAR_CUTOFF as usize + BucketTable::float_extra(v.max(LINEAR_CUTOFF)),
                    "boundary neighbor {v}"
                );
            }
        }
        let mut v: u64 = 100_000;
        while let Some(next) = v.checked_mul(3) {
            assert_eq!(
                Histogram::bucket_of(v),
                LINEAR_CUTOFF as usize + BucketTable::float_extra(v),
                "stride {v}"
            );
            v = next.wrapping_add(12_345);
        }
        assert_eq!(
            Histogram::bucket_of(u64::MAX),
            LINEAR_CUTOFF as usize + BucketTable::float_extra(u64::MAX)
        );
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), None);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(42);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(42));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..100 {
            h.record(v);
        }
        // Nearest-rank: rank ceil(0.5*100)=50 → 50th smallest of 0..=99 is 49.
        assert_eq!(h.percentile(0.5), Some(49));
        assert_eq!(h.percentile(0.99), Some(98));
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
    }

    #[test]
    fn large_values_within_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100 us .. 1 s
        }
        let p50 = h.percentile(0.5).unwrap() as f64;
        let p99 = h.percentile(0.99).unwrap() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.03, "p50={p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.03, "p99={p99}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.percentile(0.0), Some(10));
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = Histogram::new();
        h.record(5);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn nonzero_buckets_cover_all_counts_in_order() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 500, 90_000, 90_000, 90_001] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.nonzero_buckets().collect();
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
        let mut prev = f64::NEG_INFINITY;
        for &(ub, c) in &buckets {
            assert!(ub > prev, "bounds ascend: {buckets:?}");
            assert!(c > 0);
            prev = ub;
        }
        // The first bucket is the exact linear one for value 3.
        assert_eq!(buckets[0], (3.0, 2));
        assert_eq!(h.sum(), 3 + 3 + 500 + 90_000 + 90_000 + 90_001);
    }

    #[test]
    fn count_le_is_cumulative_and_total_at_top() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 500, 90_000] {
            h.record(v);
        }
        assert_eq!(h.count_le(2.0), 0);
        assert_eq!(h.count_le(3.0), 2);
        // A bound from another series' buckets still yields a valid
        // cumulative count (every whole bucket below it).
        assert_eq!(h.count_le(400.0), 2);
        assert_eq!(h.count_le(1e12), h.count());
        let mut prev = 0;
        for (ub, _) in h.nonzero_buckets() {
            let c = h.count_le(ub);
            assert!(c >= prev, "cumulative counts ascend");
            prev = c;
        }
        assert_eq!(prev, h.count());
    }

    #[test]
    fn percentile_monotone_in_q() {
        let mut h = Histogram::new();
        let mut x = 7u64;
        for _ in 0..5_000 {
            // Simple LCG spread over a wide range.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record(x % 2_000_000);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let v = h.percentile(i as f64 / 100.0).unwrap();
            assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
    }
}
