//! Exact summaries over small in-memory samples.
//!
//! Several GRAF components (the workload analyzer's 90 %-ile call counts, the
//! evaluation's error tables) need exact percentiles over modest sample sets;
//! [`Summary`] stores the raw values and sorts on demand.

/// An exact-summary accumulator over `f64` samples.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    values: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample. Non-finite values are rejected with a panic since they
    /// always indicate an upstream bug.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "summary sample must be finite, got {v}");
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std(&self) -> Option<f64> {
        let m = self.mean()?;
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        Some(var.sqrt())
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            self.sorted = true;
        }
    }

    /// Exact percentile by the nearest-rank method, or `None` when empty.
    pub fn percentile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.values.len() as f64).ceil() as usize).max(1);
        Some(self.values[rank - 1])
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.values.first().copied()
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.values.last().copied()
    }

    /// Borrow the raw samples (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.std().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut s = Summary::new();
        for v in 1..=10 {
            s.record(v as f64);
        }
        assert_eq!(s.percentile(0.5), Some(5.0));
        assert_eq!(s.percentile(0.9), Some(9.0));
        assert_eq!(s.percentile(1.0), Some(10.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn empty_summary_is_none() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(0.5), None);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn record_after_percentile_keeps_correctness() {
        let mut s = Summary::new();
        s.record(5.0);
        assert_eq!(s.percentile(1.0), Some(5.0));
        s.record(1.0);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
    }
}
