//! # graf-metrics
//!
//! Metrics substrate for the GRAF reproduction: the in-simulation analog of the
//! Prometheus + cAdvisor + Linkerd stack the paper deploys on its Kubernetes
//! cluster (§3.2, §4).
//!
//! The crate provides:
//!
//! * [`Histogram`] — a log-bucketed latency histogram with bounded relative
//!   error, used for per-service and end-to-end latency percentiles,
//! * [`WindowedLatency`] — fixed-width windows of histograms so that
//!   percentiles can be queried "over the last 10 seconds" exactly as the
//!   paper's sample collector does (§5, *Sample Collection and Training*),
//! * [`TimeSeries`] — an append-only `(t, v)` series used to record workload,
//!   instance counts and CPU figures for the figure-regeneration benches,
//! * [`CpuAccount`] — integrates CPU usage against allocated quota over time,
//!   yielding the utilization signal the Kubernetes autoscaler consumes,
//! * [`Summary`] — exact percentiles/means over small in-memory samples.
//!
//! Everything here is deterministic and allocation-light; no wall-clock time is
//! ever read. Times are simulation microseconds (`u64`) throughout, matching
//! `graf-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod histogram;
pub mod rate;
pub mod summary;
pub mod timeseries;
pub mod window;

pub use cpu::CpuAccount;
pub use histogram::Histogram;
pub use rate::RateCounter;
pub use summary::Summary;
pub use timeseries::TimeSeries;
pub use window::WindowedLatency;
