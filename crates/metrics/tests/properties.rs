//! Property-based tests for the metrics substrate.

use graf_metrics::{Histogram, RateCounter, Summary, WindowedLatency};
use proptest::prelude::*;

proptest! {
    /// Every histogram quantile lies within the recorded extrema, and the
    /// p100 equals the maximum exactly.
    #[test]
    fn histogram_quantiles_bounded(values in proptest::collection::vec(0u64..5_000_000, 1..400)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let p = h.percentile(q).unwrap();
            prop_assert!(p >= lo && p <= hi, "p{q} = {p} outside [{lo}, {hi}]");
        }
        prop_assert_eq!(h.percentile(1.0).unwrap(), hi);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Histogram quantiles are non-decreasing in q.
    #[test]
    fn histogram_quantiles_monotone(values in proptest::collection::vec(0u64..10_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0;
        for i in 0..=20 {
            let p = h.percentile(i as f64 / 20.0).unwrap();
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    /// Histogram quantiles approximate the exact (Summary) quantiles within
    /// the bucket relative error.
    #[test]
    fn histogram_matches_exact_summary(values in proptest::collection::vec(1u64..2_000_000, 10..300)) {
        let mut h = Histogram::new();
        let mut s = Summary::new();
        for &v in &values {
            h.record(v);
            s.record(v as f64);
        }
        for q in [0.5, 0.9, 0.99] {
            let approx = h.percentile(q).unwrap() as f64;
            let exact = s.percentile(q).unwrap();
            prop_assert!(
                (approx - exact).abs() <= exact * 0.03 + 1.0,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    /// Merging two histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        a in proptest::collection::vec(0u64..1_000_000, 0..150),
        b in proptest::collection::vec(0u64..1_000_000, 1..150),
    ) {
        let mut ha = Histogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = Histogram::new();
        for &v in &b { hb.record(v); }
        let mut hc = Histogram::new();
        for &v in a.iter().chain(&b) { hc.record(v); }
        ha.merge(&hb);
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            prop_assert_eq!(ha.percentile(q), hc.percentile(q));
        }
        prop_assert_eq!(ha.count(), hc.count());
    }

    /// RateCounter conserves the number of recorded events across windows.
    #[test]
    fn rate_counter_conserves_events(ts in proptest::collection::vec(0u64..60_000_000, 1..300)) {
        let mut r = RateCounter::new(1_000_000, 61);
        for &t in &ts {
            r.record(t);
        }
        let max = *ts.iter().max().unwrap();
        prop_assert_eq!(r.count_trailing(max, 61), ts.len() as u64);
    }

    /// WindowedLatency trailing-window counts partition by window width.
    #[test]
    fn windowed_counts_partition(ts in proptest::collection::vec(0u64..10_000_000, 1..200)) {
        let mut w = WindowedLatency::new(1_000_000, 16);
        for &t in &ts {
            w.record(t, 5);
        }
        let total = w.count_trailing(9_999_999, 10);
        let split: u64 = (0..10u64).map(|i| w.count_trailing(i * 1_000_000, 1)).sum();
        prop_assert_eq!(total, split);
        prop_assert_eq!(total, ts.len() as u64);
    }

    /// Summary percentile equals the sorted-order element (nearest rank).
    #[test]
    fn summary_is_nearest_rank(values in proptest::collection::vec(-1e6f64..1e6, 1..200), q in 0.0f64..=1.0) {
        let mut s = Summary::new();
        for &v in &values {
            s.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        prop_assert_eq!(s.percentile(q).unwrap(), sorted[rank - 1]);
    }
}
