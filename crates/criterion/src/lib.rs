//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small API surface its benches use: [`Criterion::bench_function`] with a
//! [`Bencher::iter`] closure, `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: per benchmark, a short warmup then `sample_size`
//! timed samples (each sample runs the closure enough times to exceed a
//! minimum measurable duration); the median, min, and max per-iteration
//! times are printed. No plots, no statistical regression analysis — this
//! exists so `cargo bench` compiles and produces honest wall-clock numbers;
//! the repo's tracked benchmarks live in `bench_compute` / `BENCH_HISTORY`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark driver: configuration plus result printing.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs `f` as the benchmark `id`, printing per-iteration timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples_ns: Vec::new(), target_samples: self.sample_size };
        f(&mut b);
        b.samples_ns.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = b.samples_ns.get(b.samples_ns.len() / 2).copied().unwrap_or(0.0);
        let min = b.samples_ns.first().copied().unwrap_or(0.0);
        let max = b.samples_ns.last().copied().unwrap_or(0.0);
        println!(
            "{id:<44} median {:>12} min {:>12} max {:>12} ({} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            b.samples_ns.len(),
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples_ns: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`: warmup, then `sample_size` samples of batched calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch sizing: run until ~5 ms elapsed to pick a batch
        // size whose total runtime is comfortably measurable.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed().as_millis() < 5 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Target ≥1 ms per sample so Instant resolution is negligible.
        let batch = ((1e6 / per_iter_ns).ceil() as u64).clamp(1, 1_000_000);
        self.samples_ns.clear();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples_ns.push(dt / batch as f64);
        }
    }
}

/// Declares a benchmark group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0, "closure executed");
    }

    #[test]
    fn sample_size_floor() {
        let c = Criterion::default().sample_size(1);
        assert_eq!(c.sample_size, 3);
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(1.2e4).contains("µs"));
        assert!(fmt_ns(3.4e6).contains("ms"));
        assert!(fmt_ns(2.1e9).contains("s"));
    }
}
