//! Minimal shared CLI parsing for the experiment binaries.

/// Common experiment flags.
///
/// * `--seed <u64>` — base RNG seed (default 7).
/// * `--paper-scale` — raise sample counts/epochs toward the published
///   configuration (slower, closer to the paper's statistical power).
/// * `--samples <n>` — override the training-sample count.
/// * `--quick` — shrink everything for a fast smoke run.
#[derive(Clone, Debug)]
pub struct Args {
    /// Base RNG seed.
    pub seed: u64,
    /// Use paper-scale sample counts and epochs.
    pub paper_scale: bool,
    /// Optional explicit sample-count override.
    pub samples: Option<usize>,
    /// Fast smoke-run mode.
    pub quick: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self { seed: 7, paper_scale: false, samples: None, quick: false }
    }
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses the given argument strings.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a u64 value");
                }
                "--paper-scale" => out.paper_scale = true,
                "--quick" => out.quick = true,
                "--samples" => {
                    out.samples = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--samples needs a usize value"),
                    );
                }
                other => panic!("unknown flag {other}; see crate docs"),
            }
        }
        out
    }

    /// Picks a value by scale: `quick` < default < `paper`.
    pub fn scaled(&self, quick: usize, normal: usize, paper: usize) -> usize {
        if self.quick {
            quick
        } else if self.paper_scale {
            paper
        } else {
            normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|v| v.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seed, 7);
        assert!(!a.paper_scale && !a.quick);
        assert_eq!(a.samples, None);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--seed", "99", "--paper-scale", "--samples", "1234"]);
        assert_eq!(a.seed, 99);
        assert!(a.paper_scale);
        assert_eq!(a.samples, Some(1234));
    }

    #[test]
    fn scaled_picks_by_mode() {
        assert_eq!(parse(&["--quick"]).scaled(1, 2, 3), 1);
        assert_eq!(parse(&[]).scaled(1, 2, 3), 2);
        assert_eq!(parse(&["--paper-scale"]).scaled(1, 2, 3), 3);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--frobnicate"]);
    }
}
