//! Minimal shared CLI parsing for the experiment binaries.

/// Common experiment flags.
///
/// * `--seed <u64>` — base RNG seed (default 7).
/// * `--paper-scale` — raise sample counts/epochs toward the published
///   configuration (slower, closer to the paper's statistical power).
/// * `--samples <n>` — override the training-sample count.
/// * `--quick` — shrink everything for a fast smoke run.
/// * `--telemetry <path>` — enable the graf-obs telemetry layer: dump the
///   JSONL event log to `path` and print the summary table at exit.
/// * `--profile` — enable the hierarchical self-profiler; binaries print the
///   per-phase wall-time tree at exit. Off by default (a disabled handle
///   costs one branch per scope and changes no numerics).
/// * `--audit <path>` — stream one JSON line per controller tick (inputs,
///   ladder rung, solver stats, applied deltas) to `path`; binaries that run
///   several controllers suffix the file name per run.
/// * `--threads <n>` — worker threads for data-parallel training (results
///   are bit-identical for any value; default 1).
/// * `--chaos <class>` — restrict chaos-aware binaries (`chaos_matrix`) to
///   one fault class (`trace_drop`, `metric_nan`, `metric_stale`,
///   `stale_model`, `creation_fail`, `slow_start`, `latency_spike`, or
///   `none`); all classes run when unset.
/// * `--sim-threads <n>` — worker threads for the sharded simulation
///   executor (results are bit-identical for any value; unset = serial
///   `World`, which is also the differential reference).
#[derive(Clone, Debug)]
pub struct Args {
    /// Base RNG seed.
    pub seed: u64,
    /// Use paper-scale sample counts and epochs.
    pub paper_scale: bool,
    /// Optional explicit sample-count override.
    pub samples: Option<usize>,
    /// Fast smoke-run mode.
    pub quick: bool,
    /// JSONL telemetry dump path (telemetry stays disabled when unset).
    pub telemetry: Option<String>,
    /// Enable the hierarchical self-profiler.
    pub profile: bool,
    /// JSONL decision-audit path (auditing stays disabled when unset).
    pub audit: Option<String>,
    /// Training worker threads (deterministic for any value; 1 = serial).
    pub threads: Option<usize>,
    /// Fault-class filter for chaos-aware binaries (None = all classes).
    pub chaos: Option<String>,
    /// Sharded-simulation worker threads (deterministic for any value;
    /// None = serial `World`).
    pub sim_threads: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            seed: 7,
            paper_scale: false,
            samples: None,
            quick: false,
            telemetry: None,
            profile: false,
            audit: None,
            threads: None,
            chaos: None,
            sim_threads: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses the given argument strings.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    out.seed =
                        it.next().and_then(|v| v.parse().ok()).expect("--seed needs a u64 value");
                }
                "--paper-scale" => out.paper_scale = true,
                "--quick" => out.quick = true,
                "--samples" => {
                    out.samples = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--samples needs a usize value"),
                    );
                }
                "--telemetry" => {
                    out.telemetry = Some(it.next().expect("--telemetry needs a file path"));
                }
                "--profile" => out.profile = true,
                "--audit" => {
                    out.audit = Some(it.next().expect("--audit needs a file path"));
                }
                "--chaos" => {
                    out.chaos = Some(it.next().expect("--chaos needs a fault-class name"));
                }
                "--threads" => {
                    out.threads = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .expect("--threads needs a positive integer"),
                    );
                }
                "--sim-threads" => {
                    out.sim_threads = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n >= 1)
                            .expect("--sim-threads needs a positive integer"),
                    );
                }
                other => panic!("unknown flag {other}; see crate docs"),
            }
        }
        out
    }

    /// A telemetry handle honoring `--telemetry`: enabled when a dump path
    /// was given, disabled (all no-ops) otherwise.
    pub fn obs(&self) -> graf_obs::Obs {
        match &self.telemetry {
            Some(path) => {
                // Fail on an unwritable path now, not after the experiment ran.
                std::fs::File::create(path)
                    .unwrap_or_else(|e| panic!("cannot write telemetry to {path}: {e}"));
                graf_obs::Obs::enabled()
            }
            None => graf_obs::Obs::disabled(),
        }
    }

    /// Finishes a telemetry session: writes the JSONL dump to the
    /// `--telemetry` path and prints the summary table. No-op when telemetry
    /// is off.
    pub fn finish_telemetry(&self, obs: &graf_obs::Obs) {
        let Some(path) = &self.telemetry else { return };
        obs.write_jsonl_path(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("writing telemetry to {path}: {e}"));
        println!("\n{}", obs.summary());
        println!("telemetry written to {path}");
    }

    /// A self-profiler handle honoring `--profile`: enabled when the flag
    /// was given, disabled (one branch per scope) otherwise.
    pub fn prof(&self) -> graf_prof::Prof {
        if self.profile {
            graf_prof::Prof::enabled()
        } else {
            graf_prof::Prof::disabled()
        }
    }

    /// Finishes a profiling session: prints the per-phase wall-time tree.
    /// No-op when `--profile` was not given.
    pub fn finish_profile(&self, prof: &graf_prof::Prof) {
        if prof.is_enabled() {
            println!("\n## self-profile (per-phase wall time)\n{}", prof.report().render());
        }
    }

    /// Picks a value by scale: `quick` < default < `paper`.
    pub fn scaled(&self, quick: usize, normal: usize, paper: usize) -> usize {
        if self.quick {
            quick
        } else if self.paper_scale {
            paper
        } else {
            normal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|v| v.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.seed, 7);
        assert!(!a.paper_scale && !a.quick);
        assert_eq!(a.samples, None);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--seed", "99", "--paper-scale", "--samples", "1234"]);
        assert_eq!(a.seed, 99);
        assert!(a.paper_scale);
        assert_eq!(a.samples, Some(1234));
    }

    #[test]
    fn telemetry_flag_takes_a_path_and_enables_obs() {
        let off = parse(&[]);
        assert_eq!(off.telemetry, None);
        assert!(!off.obs().is_enabled());
        let on = parse(&["--telemetry", "/tmp/t.jsonl"]);
        assert_eq!(on.telemetry.as_deref(), Some("/tmp/t.jsonl"));
        assert!(on.obs().is_enabled());
    }

    #[test]
    fn threads_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).threads, None);
        assert_eq!(parse(&["--threads", "3"]).threads, Some(3));
        let caught = std::panic::catch_unwind(|| parse(&["--threads", "0"]));
        assert!(caught.is_err(), "--threads 0 must be rejected");
    }

    #[test]
    fn sim_threads_flag_parses_and_rejects_zero() {
        assert_eq!(parse(&[]).sim_threads, None);
        assert_eq!(parse(&["--sim-threads", "4"]).sim_threads, Some(4));
        let caught = std::panic::catch_unwind(|| parse(&["--sim-threads", "0"]));
        assert!(caught.is_err(), "--sim-threads 0 must be rejected");
    }

    #[test]
    fn profile_flag_enables_the_self_profiler() {
        let off = parse(&[]);
        assert!(!off.profile && !off.prof().is_enabled());
        let on = parse(&["--profile"]);
        assert!(on.profile && on.prof().is_enabled());
    }

    #[test]
    fn audit_flag_takes_a_path() {
        assert_eq!(parse(&[]).audit, None);
        let a = parse(&["--audit", "results/audit.jsonl"]);
        assert_eq!(a.audit.as_deref(), Some("results/audit.jsonl"));
    }

    #[test]
    fn scaled_picks_by_mode() {
        assert_eq!(parse(&["--quick"]).scaled(1, 2, 3), 1);
        assert_eq!(parse(&[]).scaled(1, 2, 3), 2);
        assert_eq!(parse(&["--paper-scale"]).scaled(1, 2, 3), 3);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--frobnicate"]);
    }

    #[test]
    #[should_panic(expected = "cannot write telemetry")]
    fn unwritable_telemetry_path_fails_before_the_run() {
        parse(&["--telemetry", "/nonexistent-dir/t.jsonl"]).obs();
    }
}
