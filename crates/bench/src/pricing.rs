//! AWS EC2 pricing (Table 3) and the Figure-19 cost-benefit arithmetic.
//!
//! The paper budgets GRAF's one-time cost — collecting 50 k samples at 15 s
//! each on a c4.2xlarge cluster with a c4.large load generator, plus 16 GPU
//! hours on g4dn.xlarge — against the ongoing savings of running fewer
//! instances, priced at EC2 on-demand rates.

/// On-demand $/hour prices used in Table 3 (us-east-1, 2021).
pub mod rates {
    /// c4.large (load generator).
    pub const C4_LARGE: f64 = 0.10;
    /// c4.2xlarge (worker node).
    pub const C4_2XLARGE: f64 = 0.398;
    /// g4dn.xlarge (GPU training).
    pub const G4DN_XLARGE: f64 = 0.526;
}

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct BudgetRow {
    /// Module name.
    pub module: &'static str,
    /// Instance type.
    pub instance: &'static str,
    /// Hours used.
    pub hours: f64,
    /// Cost in dollars.
    pub dollars: f64,
}

/// Table 3: expected budget for collecting `samples` samples at
/// `secs_per_sample` plus `gpu_hours` of training.
pub fn budget_table(samples: usize, secs_per_sample: f64, gpu_hours: f64) -> Vec<BudgetRow> {
    let collect_hours = samples as f64 * secs_per_sample / 3600.0;
    vec![
        BudgetRow {
            module: "Load Generator",
            instance: "CPU (c4.large)",
            hours: collect_hours,
            dollars: collect_hours * rates::C4_LARGE,
        },
        BudgetRow {
            module: "Worker Node",
            instance: "CPU (c4.2xlarge)",
            hours: collect_hours,
            dollars: collect_hours * rates::C4_2XLARGE,
        },
        BudgetRow {
            module: "Model Training",
            instance: "GPU (g4dn.xlarge)",
            hours: gpu_hours,
            dollars: gpu_hours * rates::G4DN_XLARGE,
        },
    ]
}

/// Total of a budget table, dollars.
pub fn budget_total(rows: &[BudgetRow]) -> f64 {
    rows.iter().map(|r| r.dollars).sum()
}

/// Dollar value per instance-hour saved: the paper converts saved instances
/// to saved dollars at the worker-node rate, scaled by the fraction of a node
/// one instance occupies (a c4.2xlarge has 8 vCPUs; instances here are
/// sub-core containers, so we price per-vCPU).
pub fn instance_hour_value(cpu_unit_mc: f64) -> f64 {
    let vcpu_price = rates::C4_2XLARGE / 8.0;
    vcpu_price * (cpu_unit_mc / 1000.0)
}

/// Figure 19: days until GRAF's one-time cost is repaid, given the mean
/// number of instances saved at a workload level.
///
/// Returns `None` when nothing is saved.
pub fn breakeven_days(one_time_cost: f64, instances_saved: f64, cpu_unit_mc: f64) -> Option<f64> {
    if instances_saved <= 0.0 {
        return None;
    }
    let per_day = instances_saved * instance_hour_value(cpu_unit_mc) * 24.0;
    Some(one_time_cost / per_day)
}

/// Figure 19 classification: a `(update_period_days, workload)` point is
/// profitable when the break-even happens before the next model-invalidating
/// application update.
pub fn is_profitable(
    update_period_days: f64,
    instances_saved: f64,
    one_time_cost: f64,
    cpu_unit_mc: f64,
) -> bool {
    match breakeven_days(one_time_cost, instances_saved, cpu_unit_mc) {
        Some(days) => days <= update_period_days,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces_paper_budget() {
        // 50 k samples × 15 s = 208.3 h; 16 GPU hours; total ≈ $112.17.
        let rows = budget_table(50_000, 15.0, 16.0);
        assert!((rows[0].hours - 208.33).abs() < 0.01, "{:?}", rows[0]);
        assert!((rows[0].dollars - 20.83).abs() < 0.05);
        assert!((rows[1].dollars - 82.92).abs() < 0.05);
        assert!((rows[2].dollars - 8.42).abs() < 0.05);
        let total = budget_total(&rows);
        assert!((total - 112.17).abs() < 0.2, "total {total}");
    }

    #[test]
    fn breakeven_scales_inversely_with_savings() {
        let few = breakeven_days(112.0, 2.0, 500.0).unwrap();
        let many = breakeven_days(112.0, 20.0, 500.0).unwrap();
        assert!((few / many - 10.0).abs() < 1e-9);
        assert_eq!(breakeven_days(112.0, 0.0, 500.0), None);
    }

    #[test]
    fn profitability_boundary() {
        // High workload (many saved instances) is profitable even for short
        // update periods; low workload needs long periods — the Figure-19
        // frontier shape.
        assert!(is_profitable(10.0, 20.0, 112.0, 500.0));
        assert!(!is_profitable(1.0, 0.5, 112.0, 500.0));
        // 3 saved 500 mc instances repay $112 in ≈ 63 days at these rates.
        let short = is_profitable(5.0, 3.0, 112.0, 500.0);
        let long = is_profitable(90.0, 3.0, 112.0, 500.0);
        assert!(!short || long, "longer periods cannot be less profitable");
        assert!(long);
    }
}
