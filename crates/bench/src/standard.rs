//! Standard experiment setups shared by the figure binaries.
//!
//! The paper trains one latency prediction model per application and reuses
//! it for every result (§5, *Sample Collection and Training*). These helpers
//! pin the per-application probe workloads, SLOs and CPU units so all
//! binaries evaluate against the same artifacts.

use graf_apps::{bookinfo, online_boutique, robot_shop, social_network};
use graf_core::{Graf, GrafBuildConfig, SamplingConfig, TrainConfig};
use graf_sim::topology::AppTopology;

use crate::args::Args;

/// A standard per-application evaluation setup.
#[derive(Clone, Debug)]
pub struct AppSetup {
    /// Application.
    pub topo: AppTopology,
    /// Probe workload per API, req/s (total ≈ the paper's operating point).
    pub probe_qps: Vec<f64>,
    /// End-to-end p99 SLO, ms.
    pub slo_ms: f64,
    /// Instance CPU unit, millicores.
    pub cpu_unit_mc: f64,
}

/// Online Boutique under the three-API Locust-style mix.
pub fn boutique_setup() -> AppSetup {
    AppSetup {
        topo: online_boutique(),
        probe_qps: vec![180.0, 180.0, 240.0],
        slo_ms: 80.0,
        cpu_unit_mc: 100.0,
    }
}

/// Social Network under Vegeta post-compose load.
pub fn social_setup() -> AppSetup {
    AppSetup { topo: social_network(), probe_qps: vec![600.0], slo_ms: 80.0, cpu_unit_mc: 100.0 }
}

/// Robot Shop under a browse-heavy three-API mix (browse/user/cart).
pub fn robot_shop_setup() -> AppSetup {
    AppSetup {
        topo: robot_shop(),
        probe_qps: vec![240.0, 120.0, 120.0],
        slo_ms: 80.0,
        cpu_unit_mc: 100.0,
    }
}

/// Bookinfo under product-page load.
pub fn bookinfo_setup() -> AppSetup {
    AppSetup { topo: bookinfo(), probe_qps: vec![400.0], slo_ms: 80.0, cpu_unit_mc: 100.0 }
}

/// The standard sampling configuration for a setup, scaled by `args`.
pub fn sampling_config(setup: &AppSetup, args: &Args) -> SamplingConfig {
    SamplingConfig {
        slo_ms: setup.slo_ms,
        probe_qps: setup.probe_qps.clone(),
        workload_range: (0.25, 1.6),
        cpu_unit_mc: setup.cpu_unit_mc,
        measure_secs: if args.quick { 4.0 } else { 10.0 },
        warmup_secs: if args.quick { 2.0 } else { 5.0 },
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        seed: args.seed,
        ..SamplingConfig::default()
    }
}

/// The standard build configuration (samples + training scale) for a setup.
pub fn build_config(setup: &AppSetup, args: &Args) -> GrafBuildConfig {
    let num_samples = args.samples.unwrap_or_else(|| args.scaled(150, 1200, 8000));
    let threads = args.threads.unwrap_or(1);
    let train = if args.paper_scale {
        TrainConfig { seed: args.seed, threads, ..TrainConfig::paper() }
    } else {
        TrainConfig {
            epochs: args.scaled(15, 60, 450),
            seed: args.seed,
            threads,
            ..TrainConfig::default()
        }
    };
    GrafBuildConfig {
        sampling: sampling_config(setup, args),
        train,
        num_samples,
        split_seed: args.seed ^ 0x5EED,
        ..Default::default()
    }
}

/// Builds the standard GRAF pipeline for a setup.
pub fn build_graf(setup: &AppSetup, args: &Args) -> Graf {
    Graf::build(setup.topo.clone(), build_config(setup, args))
}

/// [`build_graf`] with the build pipeline reporting through `obs`.
pub fn build_graf_observed(setup: &AppSetup, args: &Args, obs: &graf_obs::Obs) -> Graf {
    Graf::build_observed(setup.topo.clone(), build_config(setup, args), obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_are_consistent() {
        for setup in [boutique_setup(), social_setup(), robot_shop_setup(), bookinfo_setup()] {
            assert_eq!(
                setup.probe_qps.len(),
                setup.topo.num_apis(),
                "{}: one probe rate per API",
                setup.topo.name
            );
        }
    }

    #[test]
    fn build_config_scales_with_args() {
        let setup = boutique_setup();
        let quick = build_config(&setup, &Args { quick: true, ..Default::default() });
        let normal = build_config(&setup, &Args::default());
        let paper = build_config(&setup, &Args { paper_scale: true, ..Default::default() });
        assert!(quick.num_samples < normal.num_samples);
        assert!(normal.num_samples < paper.num_samples);
        assert!(quick.train.epochs < paper.train.epochs);
        let explicit = build_config(&setup, &Args { samples: Some(42), ..Default::default() });
        assert_eq!(explicit.num_samples, 42);
    }
}
