//! Maps `graf-sweep` grid axes onto concrete GRAF scenarios.
//!
//! The sweep machinery (`crates/sweep`) is scenario-agnostic — axes and
//! values are strings. This module gives those strings meaning:
//!
//! | axis | values | default |
//! |---|---|---|
//! | `app` | `boutique`, `social`, `robot_shop`, `bookinfo` | `boutique` |
//! | `slo` | end-to-end p99 SLO in ms (any positive number) | the app's standard SLO |
//! | `surge` | `none`, `step`, `ramp`, `spike` | `none` |
//! | `chaos` | the `graf_chaos::CATALOG` names | `none` |
//! | `policy` | `hpa`, `firm`, `static`, `graf`, `ladder` | — (required) |
//! | `load` | base-load multiplier (any positive number) | `1` |
//!
//! Every cell replays the Figure-21-style scenario: warm up at a base user
//! population, optionally surge at `SURGE_S`, inject the cell's fault class
//! over a window bracketing the surge, and report post-surge tail latency,
//! convergence time and instance usage.
//!
//! **Seed discipline.** The cell seed (derived by `graf-sweep` from
//! `(grid_seed, cell key)`) drives the simulated world and the load
//! generator. Model training uses the *grid* seed: the paper trains one
//! model per application and reuses it for every result, so all cells of a
//! sweep share per-app models and a cell's result cannot depend on which
//! other cells trained first.

use std::collections::BTreeMap;

use graf_chaos::ChaosSchedule;
use graf_core::{Graf, PolicyMode, ResilientConfig, ResilientController};
use graf_loadgen::ClosedLoop;
use graf_orchestrator::{
    Autoscaler, Cluster, CreationModel, Deployment, FirmLike, HpaConfig, KubernetesHpa,
    StaticScaler,
};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{SimConfig, World};
use graf_sweep::{Cell, CellResult, Grid};

use crate::standard::{
    bookinfo_setup, boutique_setup, build_graf, robot_shop_setup, social_setup, AppSetup,
};
use crate::timeline::{convergence_time_s, percentile_between, run_with_timeline};
use crate::Args;

/// Axis names this mapper understands, sorted.
pub const KNOWN_AXES: &[&str] = &["app", "chaos", "load", "policy", "slo", "surge"];

/// Application axis values.
pub const APPS: &[&str] = &["boutique", "social", "robot_shop", "bookinfo"];

/// Surge-shape axis values.
pub const SURGES: &[&str] = &["none", "step", "ramp", "spike"];

/// Controller-policy axis values.
pub const POLICIES: &[&str] = &["hpa", "firm", "static", "graf", "ladder"];

/// Named grid presets (`--grid @smoke` etc.).
///
/// * `@smoke` — 2×2 cells, HPA only (no model training): the CI
///   worker-count-invariance check.
/// * `@default` — the everyday sweep: GRAF vs HPA across SLOs and surge
///   shapes on Online Boutique.
/// * `@fleet` — the full matrix: every app, four policies, surges and the
///   high-signal fault classes.
pub const PRESETS: &[(&str, &str)] = &[
    ("@smoke", "app=boutique;policy=hpa;slo=60,90;surge=none,step"),
    ("@default", "app=boutique;policy=graf,hpa;slo=60,90;surge=none,step,spike"),
    (
        "@fleet",
        "app=boutique,social,robot_shop,bookinfo;policy=graf,hpa,firm,ladder;\
         slo=60,90;surge=step,spike;chaos=none,trace_drop,creation_fail",
    ),
];

/// Scenario clock: warmup until the surge fires, then a measurement window.
const SURGE_S: f64 = 180.0;
const END_S: f64 = 480.0;
/// Quick mode shrinks the whole timeline (budget knob, not a claim knob).
const QUICK_SURGE_S: f64 = 60.0;
const QUICK_END_S: f64 = 180.0;
/// Fault window bracketing the surge, relative to the surge time.
const FAULT_LEAD_S: f64 = 30.0;
const FAULT_TAIL_S: f64 = 120.0;

/// Resolves a grid spec — either a `@preset` name or a literal
/// `axis=v1,v2;axis2=v3` spec — and validates every axis and value.
pub fn resolve_grid(spec: &str) -> Result<Grid, String> {
    let literal = if spec.starts_with('@') {
        PRESETS.iter().find(|(name, _)| *name == spec).map(|&(_, s)| s).ok_or_else(|| {
            let names: Vec<&str> = PRESETS.iter().map(|&(n, _)| n).collect();
            format!("unknown preset {spec:?}; available: {}", names.join(", "))
        })?
    } else {
        spec
    };
    let grid = Grid::parse(literal)?;
    validate(&grid)?;
    Ok(grid)
}

/// Validates axis names and values so typos fail before the fleet spins up.
pub fn validate(grid: &Grid) -> Result<(), String> {
    let mut has_policy = false;
    for axis in grid.axes() {
        match axis.name.as_str() {
            "app" => check_values(&axis.values, APPS, "app")?,
            "surge" => check_values(&axis.values, SURGES, "surge")?,
            "policy" => {
                has_policy = true;
                check_values(&axis.values, POLICIES, "policy")?;
            }
            "chaos" => check_values(&axis.values, graf_chaos::CATALOG, "chaos")?,
            "slo" => check_numbers(&axis.values, "slo")?,
            "load" => check_numbers(&axis.values, "load")?,
            other => {
                return Err(format!(
                    "unknown axis {other:?}; known axes: {}",
                    KNOWN_AXES.join(", ")
                ))
            }
        }
    }
    if !has_policy {
        return Err("grid must include a `policy` axis".to_string());
    }
    Ok(())
}

fn check_values(values: &[String], known: &[&str], axis: &str) -> Result<(), String> {
    for v in values {
        if !known.contains(&v.as_str()) {
            return Err(format!("unknown {axis} value {v:?}; known: {}", known.join(", ")));
        }
    }
    Ok(())
}

fn check_numbers(values: &[String], axis: &str) -> Result<(), String> {
    for v in values {
        let ok = v.parse::<f64>().map(|x| x.is_finite() && x > 0.0).unwrap_or(false);
        if !ok {
            return Err(format!("{axis} value {v:?} is not a positive number"));
        }
    }
    Ok(())
}

/// Scale knobs shared by every cell of a sweep (budget, never claims).
#[derive(Clone, Debug)]
pub struct SweepScale {
    /// Shrink timelines and training budgets for smoke runs.
    pub quick: bool,
    /// Explicit training-sample override.
    pub samples: Option<usize>,
    /// Training worker threads (deterministic for any value).
    pub threads: usize,
}

impl Default for SweepScale {
    fn default() -> Self {
        Self { quick: false, samples: None, threads: 1 }
    }
}

/// One worker's cell evaluator: owns a per-worker cache of trained GRAF
/// models (lazy, keyed by app — only `graf`/`ladder` cells pay for
/// training, and training is deterministic per `(app, grid_seed)` so every
/// worker's cache holds identical models).
pub struct CellRunner {
    grid_seed: u64,
    scale: SweepScale,
    models: BTreeMap<String, Graf>,
}

impl CellRunner {
    /// Creates a runner for one worker of a sweep seeded with `grid_seed`.
    pub fn new(grid_seed: u64, scale: SweepScale) -> Self {
        Self { grid_seed, scale, models: BTreeMap::new() }
    }

    fn model_for(&mut self, app: &str, setup: &AppSetup) -> &Graf {
        if !self.models.contains_key(app) {
            let args = Args {
                seed: self.grid_seed,
                quick: self.scale.quick,
                samples: self.scale.samples,
                threads: Some(self.scale.threads),
                ..Args::default()
            };
            let graf = build_graf(setup, &args);
            self.models.insert(app.to_string(), graf);
        }
        &self.models[app]
    }

    /// Evaluates one cell under its derived seed. Errors (unknown values —
    /// normally caught by [`validate`] — or degenerate scenarios) become
    /// error records; the fleet keeps going.
    pub fn run_cell(&mut self, cell: &Cell, seed: u64) -> Result<CellResult, String> {
        let app = cell.get("app").unwrap_or("boutique");
        let setup = match app {
            "boutique" => boutique_setup(),
            "social" => social_setup(),
            "robot_shop" => robot_shop_setup(),
            "bookinfo" => bookinfo_setup(),
            other => return Err(format!("unknown app {other:?}")),
        };
        let slo_ms = match cell.get("slo") {
            Some(v) => v.parse::<f64>().map_err(|_| format!("slo value {v:?} is not a number"))?,
            None => setup.slo_ms,
        };
        let load = match cell.get("load") {
            Some(v) => v.parse::<f64>().map_err(|_| format!("load value {v:?} is not a number"))?,
            None => 1.0,
        };
        if !(slo_ms > 0.0 && load > 0.0) {
            return Err(format!("slo ({slo_ms}) and load ({load}) must be positive"));
        }
        let surge = cell.get("surge").unwrap_or("none");
        let chaos = cell.get("chaos").unwrap_or("none");
        let policy = cell.get("policy").ok_or("cell has no policy axis")?.to_string();

        let (surge_s, end_s) =
            if self.scale.quick { (QUICK_SURGE_S, QUICK_END_S) } else { (SURGE_S, END_S) };

        let topo = setup.topo.clone();
        let num_services = topo.num_services();
        let sched = chaos_schedule(chaos, &setup, seed, surge_s)?;

        let world = World::new(topo, SimConfig::default(), seed);
        let deployments = (0..num_services)
            .map(|s| Deployment::new(ServiceId(s as u16), setup.cpu_unit_mc, 4))
            .collect();
        let mut cluster = Cluster::new(world, deployments, CreationModel::default());
        if !sched.is_empty() {
            cluster.arm_chaos(&sched);
        }

        let mut users = users_loadgen(&setup, surge, load, surge_s, seed)?;

        let mut scaler: Box<dyn Autoscaler> = match policy.as_str() {
            "static" => Box::new(StaticScaler),
            "hpa" => Box::new(KubernetesHpa::new(HpaConfig::with_threshold(0.5), num_services)),
            "firm" => Box::new(FirmLike {
                latency_ceiling: SimDuration::from_millis(slo_ms * 1.5),
                ..FirmLike::default()
            }),
            "graf" => Box::new(self.model_for(app, &setup).controller(slo_ms)),
            "ladder" => {
                let ctrl = self.model_for(app, &setup).controller(slo_ms);
                let mut rc = ResilientController::new(
                    ctrl,
                    ResilientConfig { mode: PolicyMode::Ladder, ..ResilientConfig::default() },
                );
                if !sched.is_empty() {
                    rc.arm_chaos(&sched);
                }
                Box::new(rc)
            }
            other => return Err(format!("unknown policy {other:?}")),
        };

        let (tl, comps) = run_with_timeline(
            &mut cluster,
            &mut users,
            scaler.as_mut(),
            SimTime::from_secs(end_s),
            SimDuration::from_secs(5.0),
        );

        // All window metrics cover [surge_s, end_s) — the post-surge period,
        // or simply the steady tail when surge=none.
        let window: Vec<&graf_sim::world::Completion> = comps
            .iter()
            .filter(|c| {
                let t = c.end.as_secs_f64();
                t >= surge_s && t < end_s
            })
            .collect();
        let completed = window.len();
        let timeouts = window.iter().filter(|c| c.timed_out).count();
        let within_slo = window
            .iter()
            .filter(|c| !c.timed_out && c.latency_us() as f64 / 1000.0 <= slo_ms)
            .count();
        let post = |p: &&crate::timeline::TimelinePoint| p.t_s >= surge_s;

        let mut r = CellResult::default();
        r.push("completed", completed as f64);
        r.push("timeouts", timeouts as f64);
        r.push("p99_ms", percentile_between(&comps, surge_s, end_s, 0.99).unwrap_or(-1.0));
        r.push("converge_s", convergence_time_s(&tl, surge_s, slo_ms, 4).unwrap_or(-1.0));
        r.push(
            "slo_attained",
            if completed > 0 { within_slo as f64 / completed as f64 } else { -1.0 },
        );
        r.push("final_instances", tl.last().map_or(0, |p| p.total_instances) as f64);
        r.push(
            "peak_instances",
            tl.iter().filter(post).map(|p| p.total_instances).max().unwrap_or(0) as f64,
        );
        let post_points: Vec<f64> =
            tl.iter().filter(post).map(|p| p.total_instances as f64).collect();
        r.push(
            "mean_instances",
            if post_points.is_empty() {
                -1.0
            } else {
                post_points.iter().sum::<f64>() / post_points.len() as f64
            },
        );
        Ok(r)
    }
}

/// Builds the cell's fault schedule: the named catalog fault over a window
/// bracketing the surge, `latency_spike` pointed at the app's hottest
/// (highest per-request CPU) service.
fn chaos_schedule(
    name: &str,
    setup: &AppSetup,
    seed: u64,
    surge_s: f64,
) -> Result<ChaosSchedule, String> {
    let hot = setup
        .topo
        .services
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.work_ms.partial_cmp(&b.1.work_ms).expect("finite work_ms"))
        .map(|(i, _)| ServiceId(i as u16))
        .expect("topology has services");
    let faults =
        graf_chaos::named_faults(name, hot).ok_or_else(|| format!("unknown chaos {name:?}"))?;
    let mut sched = ChaosSchedule::new(seed);
    for kind in faults {
        sched = sched.fault(
            kind,
            SimTime::from_secs((surge_s - FAULT_LEAD_S).max(0.0)),
            SimTime::from_secs(surge_s + FAULT_TAIL_S),
        );
    }
    Ok(sched)
}

/// Builds the cell's closed-loop population: a base population sized to the
/// app's trained operating point (scaled by `load`), then the surge shape.
fn users_loadgen(
    setup: &AppSetup,
    surge: &str,
    load: f64,
    surge_s: f64,
    seed: u64,
) -> Result<ClosedLoop, String> {
    let mix: Vec<(ApiId, f64)> =
        setup.probe_qps.iter().enumerate().map(|(i, &q)| (ApiId(i as u16), q)).collect();
    // ~2.5 users per probe req/s puts the population at the trained
    // operating point (think time U[0, 5 s]); base load holds at half that.
    let base = ((setup.probe_qps.iter().sum::<f64>() * 1.25 * load).round() as usize).max(1);
    let mut users = ClosedLoop::with_mix(mix, base, seed ^ 0x21);
    match surge {
        "none" => {}
        "step" => users.set_users(SimTime::from_secs(surge_s), base * 2),
        "ramp" => {
            // Linear climb to 2× over eight 15 s steps.
            for k in 1..=8usize {
                users.set_users(
                    SimTime::from_secs(surge_s + (k as f64 - 1.0) * 15.0),
                    base + base * k / 8,
                );
            }
        }
        "spike" => {
            users.set_users(SimTime::from_secs(surge_s), base * 3);
            users.set_users(SimTime::from_secs(surge_s + 60.0), base);
        }
        other => return Err(format!("unknown surge {other:?}")),
    }
    Ok(users)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sweep::derive_seed;

    #[test]
    fn presets_resolve_and_validate() {
        for (name, _) in PRESETS {
            let grid = resolve_grid(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!grid.cells().is_empty());
        }
        assert_eq!(resolve_grid("@smoke").unwrap().cells().len(), 4);
        assert!(resolve_grid("@bogus").unwrap_err().contains("unknown preset"));
    }

    #[test]
    fn validation_rejects_typos() {
        let bad_axis = Grid::parse("policy=hpa;zone=us").unwrap();
        assert!(validate(&bad_axis).unwrap_err().contains("unknown axis"));
        let bad_value = Grid::parse("policy=hpa;app=buotique").unwrap();
        assert!(validate(&bad_value).unwrap_err().contains("unknown app value"));
        let bad_slo = Grid::parse("policy=hpa;slo=-5").unwrap();
        assert!(validate(&bad_slo).unwrap_err().contains("positive number"));
        let no_policy = Grid::parse("app=boutique").unwrap();
        assert!(validate(&no_policy).unwrap_err().contains("policy"));
    }

    #[test]
    fn smoke_cell_runs_deterministically() {
        let grid = resolve_grid("@smoke").unwrap();
        let cell = &grid.cells()[0];
        let seed = derive_seed(7, &cell.key());
        let scale = SweepScale { quick: true, ..SweepScale::default() };
        let a = CellRunner::new(7, scale.clone()).run_cell(cell, seed).unwrap();
        let b = CellRunner::new(7, scale).run_cell(cell, seed).unwrap();
        assert_eq!(a, b, "same cell + seed → identical metrics");
        assert!(a.get("completed").unwrap_or(0.0) > 0.0, "requests completed");
    }

    #[test]
    fn unknown_cell_values_are_runtime_errors_not_panics() {
        let mut runner = CellRunner::new(7, SweepScale { quick: true, ..SweepScale::default() });
        let cell = Cell::from_key("app=nope/policy=hpa").expect("parseable key");
        assert!(runner.run_cell(&cell, 1).is_err());
        let cell = Cell::from_key("policy=nope").expect("parseable key");
        assert!(runner.run_cell(&cell, 1).is_err());
    }
}
