//! Maps `graf-sweep` grid axes onto concrete GRAF scenarios.
//!
//! The sweep machinery (`crates/sweep`) is scenario-agnostic — axes and
//! values are strings. This module gives those strings meaning:
//!
//! | axis | values | default |
//! |---|---|---|
//! | `app` | `boutique`, `social`, `robot_shop`, `bookinfo` | `boutique` |
//! | `slo` | end-to-end p99 SLO in ms (any positive number) | the app's standard SLO |
//! | `surge` | `none`, `step`, `ramp`, `spike` | `none` |
//! | `chaos` | the `graf_chaos::CATALOG` names | `none` |
//! | `policy` | `hpa`, `firm`, `static`, `graf`, `ladder` | — (required) |
//! | `load` | base-load multiplier (any positive number) | `1` |
//!
//! A grid with a `tier` axis is a **parallel-sim ablation grid** instead: no
//! controller runs, each cell replays a fixed open-loop Online Boutique
//! scenario on the simulator alone and reports simulation metrics only. Its
//! axes (mutually exclusive with the scenario axes above):
//!
//! | axis | values | default |
//! |---|---|---|
//! | `tier` | `sim600` (≈600 req/s), `sim5k` (≈5 000 req/s) | — (required) |
//! | `queue` | `calendar`, `heap` | `calendar` |
//! | `simthreads` | worker count; `0` = the serial `World` reference | `0` |
//!
//! Ablation records deliberately exclude wall-clock time, so the rows for
//! `simthreads=1,2,8` of the same `(tier, queue)` must be byte-identical —
//! the sweep doubles as an end-to-end thread-count-invariance check (wall
//! clock lives in `BENCH_SIM.json`, see `scripts/bench.sh`). The
//! `simthreads=0` row runs the serial `World`: it draws service times from
//! one global RNG where the sharded executor draws from one RNG per shard,
//! so its conservation counts (`completed`, `in_flight`, and `spans` under
//! full trace sampling) match the sharded rows exactly while its latency
//! quantiles and sampled-span counts match only statistically.
//!
//! Every scenario cell replays the Figure-21-style scenario: warm up at a base user
//! population, optionally surge at `SURGE_S`, inject the cell's fault class
//! over a window bracketing the surge, and report post-surge tail latency,
//! convergence time and instance usage.
//!
//! **Seed discipline.** The cell seed (derived by `graf-sweep` from
//! `(grid_seed, cell key)`) drives the simulated world and the load
//! generator. Model training uses the *grid* seed: the paper trains one
//! model per application and reuses it for every result, so all cells of a
//! sweep share per-app models and a cell's result cannot depend on which
//! other cells trained first.

use std::collections::BTreeMap;

use graf_chaos::ChaosSchedule;
use graf_core::{Graf, PolicyMode, ResilientConfig, ResilientController};
use graf_loadgen::ClosedLoop;
use graf_orchestrator::{
    Autoscaler, Cluster, CreationModel, Deployment, FirmLike, HpaConfig, KubernetesHpa,
    StaticScaler,
};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{SimConfig, World};
use graf_sweep::{Cell, CellResult, Grid};

use crate::standard::{
    bookinfo_setup, boutique_setup, build_graf, robot_shop_setup, social_setup, AppSetup,
};
use crate::timeline::{convergence_time_s, percentile_between, run_with_timeline};
use crate::Args;

/// Axis names this mapper understands, sorted.
pub const KNOWN_AXES: &[&str] =
    &["app", "chaos", "load", "policy", "queue", "simthreads", "slo", "surge", "tier"];

/// Application axis values.
pub const APPS: &[&str] = &["boutique", "social", "robot_shop", "bookinfo"];

/// Surge-shape axis values.
pub const SURGES: &[&str] = &["none", "step", "ramp", "spike"];

/// Controller-policy axis values.
pub const POLICIES: &[&str] = &["hpa", "firm", "static", "graf", "ladder"];

/// Parallel-sim ablation load tiers.
pub const TIERS: &[&str] = &["sim600", "sim5k"];

/// Event-queue axis values (ablation grids).
pub const QUEUES: &[&str] = &["calendar", "heap"];

/// Named grid presets (`--grid @smoke` etc.).
///
/// * `@smoke` — 2×2 cells, HPA only (no model training): the CI
///   worker-count-invariance check.
/// * `@default` — the everyday sweep: GRAF vs HPA across SLOs and surge
///   shapes on Online Boutique.
/// * `@fleet` — the full matrix: every app, four policies, surges and the
///   high-signal fault classes.
/// * `@parsim` — the parallel-sim ablation: both load tiers × both event
///   queues × worker counts 0 (serial reference), 1, 2 and 8; the
///   `simthreads=1,2,8` rows of a `(tier, queue)` pair must be
///   byte-identical, the serial row matches on conservation counts.
pub const PRESETS: &[(&str, &str)] = &[
    ("@smoke", "app=boutique;policy=hpa;slo=60,90;surge=none,step"),
    ("@default", "app=boutique;policy=graf,hpa;slo=60,90;surge=none,step,spike"),
    (
        "@fleet",
        "app=boutique,social,robot_shop,bookinfo;policy=graf,hpa,firm,ladder;\
         slo=60,90;surge=step,spike;chaos=none,trace_drop,creation_fail",
    ),
    ("@parsim", "tier=sim600,sim5k;queue=calendar,heap;simthreads=0,1,2,8"),
];

/// Scenario clock: warmup until the surge fires, then a measurement window.
const SURGE_S: f64 = 180.0;
const END_S: f64 = 480.0;
/// Quick mode shrinks the whole timeline (budget knob, not a claim knob).
const QUICK_SURGE_S: f64 = 60.0;
const QUICK_END_S: f64 = 180.0;
/// Fault window bracketing the surge, relative to the surge time.
const FAULT_LEAD_S: f64 = 30.0;
const FAULT_TAIL_S: f64 = 120.0;

/// Resolves a grid spec — either a `@preset` name or a literal
/// `axis=v1,v2;axis2=v3` spec — and validates every axis and value.
pub fn resolve_grid(spec: &str) -> Result<Grid, String> {
    let literal = if spec.starts_with('@') {
        PRESETS.iter().find(|(name, _)| *name == spec).map(|&(_, s)| s).ok_or_else(|| {
            let names: Vec<&str> = PRESETS.iter().map(|&(n, _)| n).collect();
            format!("unknown preset {spec:?}; available: {}", names.join(", "))
        })?
    } else {
        spec
    };
    let grid = Grid::parse(literal)?;
    validate(&grid)?;
    Ok(grid)
}

/// Validates axis names and values so typos fail before the fleet spins up.
///
/// Scenario grids require a `policy` axis; ablation grids (any grid with a
/// `tier` axis) take only `tier`/`queue`/`simthreads` — mixing the two axis
/// families is an error, since controllers never run in ablation cells.
pub fn validate(grid: &Grid) -> Result<(), String> {
    let mut has_policy = false;
    let mut has_tier = false;
    let mut ablation_only = true;
    for axis in grid.axes() {
        match axis.name.as_str() {
            "app" => check_values(&axis.values, APPS, "app")?,
            "surge" => check_values(&axis.values, SURGES, "surge")?,
            "policy" => {
                has_policy = true;
                check_values(&axis.values, POLICIES, "policy")?;
            }
            "chaos" => check_values(&axis.values, graf_chaos::CATALOG, "chaos")?,
            "slo" => check_numbers(&axis.values, "slo")?,
            "load" => check_numbers(&axis.values, "load")?,
            "tier" => {
                has_tier = true;
                check_values(&axis.values, TIERS, "tier")?;
            }
            "queue" => check_values(&axis.values, QUEUES, "queue")?,
            "simthreads" => check_counts(&axis.values, "simthreads")?,
            other => {
                return Err(format!(
                    "unknown axis {other:?}; known axes: {}",
                    KNOWN_AXES.join(", ")
                ))
            }
        }
        ablation_only &= matches!(axis.name.as_str(), "tier" | "queue" | "simthreads");
    }
    if has_tier && !ablation_only {
        return Err(
            "ablation grids (a `tier` axis) take only tier/queue/simthreads axes".to_string()
        );
    }
    if !has_tier && grid.axes().iter().any(|a| matches!(a.name.as_str(), "queue" | "simthreads")) {
        return Err("queue/simthreads axes need a `tier` axis (ablation grids)".to_string());
    }
    if !has_tier && !has_policy {
        return Err("grid must include a `policy` axis".to_string());
    }
    Ok(())
}

fn check_values(values: &[String], known: &[&str], axis: &str) -> Result<(), String> {
    for v in values {
        if !known.contains(&v.as_str()) {
            return Err(format!("unknown {axis} value {v:?}; known: {}", known.join(", ")));
        }
    }
    Ok(())
}

fn check_numbers(values: &[String], axis: &str) -> Result<(), String> {
    for v in values {
        let ok = v.parse::<f64>().map(|x| x.is_finite() && x > 0.0).unwrap_or(false);
        if !ok {
            return Err(format!("{axis} value {v:?} is not a positive number"));
        }
    }
    Ok(())
}

fn check_counts(values: &[String], axis: &str) -> Result<(), String> {
    for v in values {
        if v.parse::<usize>().is_err() {
            return Err(format!("{axis} value {v:?} is not a worker count"));
        }
    }
    Ok(())
}

/// Scale knobs shared by every cell of a sweep (budget, never claims).
#[derive(Clone, Debug)]
pub struct SweepScale {
    /// Shrink timelines and training budgets for smoke runs.
    pub quick: bool,
    /// Explicit training-sample override.
    pub samples: Option<usize>,
    /// Training worker threads (deterministic for any value).
    pub threads: usize,
    /// Default sharded-simulation worker count for ablation cells that do
    /// not pin a `simthreads` axis value (`None`/0 = the serial `World`).
    /// Deterministic for any value.
    pub sim_threads: Option<usize>,
}

impl Default for SweepScale {
    fn default() -> Self {
        Self { quick: false, samples: None, threads: 1, sim_threads: None }
    }
}

/// One worker's cell evaluator: owns a per-worker cache of trained GRAF
/// models (lazy, keyed by app — only `graf`/`ladder` cells pay for
/// training, and training is deterministic per `(app, grid_seed)` so every
/// worker's cache holds identical models).
pub struct CellRunner {
    grid_seed: u64,
    scale: SweepScale,
    models: BTreeMap<String, Graf>,
}

impl CellRunner {
    /// Creates a runner for one worker of a sweep seeded with `grid_seed`.
    pub fn new(grid_seed: u64, scale: SweepScale) -> Self {
        Self { grid_seed, scale, models: BTreeMap::new() }
    }

    fn model_for(&mut self, app: &str, setup: &AppSetup) -> &Graf {
        if !self.models.contains_key(app) {
            let args = Args {
                seed: self.grid_seed,
                quick: self.scale.quick,
                samples: self.scale.samples,
                threads: Some(self.scale.threads),
                ..Args::default()
            };
            let graf = build_graf(setup, &args);
            self.models.insert(app.to_string(), graf);
        }
        &self.models[app]
    }

    /// Evaluates one cell under its derived seed. Errors (unknown values —
    /// normally caught by [`validate`] — or degenerate scenarios) become
    /// error records; the fleet keeps going.
    pub fn run_cell(&mut self, cell: &Cell, seed: u64) -> Result<CellResult, String> {
        if cell.get("tier").is_some() {
            return self.run_ablation_cell(cell, seed);
        }
        let app = cell.get("app").unwrap_or("boutique");
        let setup = match app {
            "boutique" => boutique_setup(),
            "social" => social_setup(),
            "robot_shop" => robot_shop_setup(),
            "bookinfo" => bookinfo_setup(),
            other => return Err(format!("unknown app {other:?}")),
        };
        let slo_ms = match cell.get("slo") {
            Some(v) => v.parse::<f64>().map_err(|_| format!("slo value {v:?} is not a number"))?,
            None => setup.slo_ms,
        };
        let load = match cell.get("load") {
            Some(v) => v.parse::<f64>().map_err(|_| format!("load value {v:?} is not a number"))?,
            None => 1.0,
        };
        if !(slo_ms > 0.0 && load > 0.0) {
            return Err(format!("slo ({slo_ms}) and load ({load}) must be positive"));
        }
        let surge = cell.get("surge").unwrap_or("none");
        let chaos = cell.get("chaos").unwrap_or("none");
        let policy = cell.get("policy").ok_or("cell has no policy axis")?.to_string();

        let (surge_s, end_s) =
            if self.scale.quick { (QUICK_SURGE_S, QUICK_END_S) } else { (SURGE_S, END_S) };

        let topo = setup.topo.clone();
        let num_services = topo.num_services();
        let sched = chaos_schedule(chaos, &setup, seed, surge_s)?;

        let world = World::new(topo, SimConfig::default(), seed);
        let deployments = (0..num_services)
            .map(|s| Deployment::new(ServiceId(s as u16), setup.cpu_unit_mc, 4))
            .collect();
        let mut cluster = Cluster::new(world, deployments, CreationModel::default());
        if !sched.is_empty() {
            cluster.arm_chaos(&sched);
        }

        let mut users = users_loadgen(&setup, surge, load, surge_s, seed)?;

        let mut scaler: Box<dyn Autoscaler> = match policy.as_str() {
            "static" => Box::new(StaticScaler),
            "hpa" => Box::new(KubernetesHpa::new(HpaConfig::with_threshold(0.5), num_services)),
            "firm" => Box::new(FirmLike {
                latency_ceiling: SimDuration::from_millis(slo_ms * 1.5),
                ..FirmLike::default()
            }),
            "graf" => Box::new(self.model_for(app, &setup).controller(slo_ms)),
            "ladder" => {
                let ctrl = self.model_for(app, &setup).controller(slo_ms);
                let mut rc = ResilientController::new(
                    ctrl,
                    ResilientConfig { mode: PolicyMode::Ladder, ..ResilientConfig::default() },
                );
                if !sched.is_empty() {
                    rc.arm_chaos(&sched);
                }
                Box::new(rc)
            }
            other => return Err(format!("unknown policy {other:?}")),
        };

        let (tl, comps) = run_with_timeline(
            &mut cluster,
            &mut users,
            scaler.as_mut(),
            SimTime::from_secs(end_s),
            SimDuration::from_secs(5.0),
        );

        // All window metrics cover [surge_s, end_s) — the post-surge period,
        // or simply the steady tail when surge=none.
        let window: Vec<&graf_sim::world::Completion> = comps
            .iter()
            .filter(|c| {
                let t = c.end.as_secs_f64();
                t >= surge_s && t < end_s
            })
            .collect();
        let completed = window.len();
        let timeouts = window.iter().filter(|c| c.timed_out).count();
        let within_slo = window
            .iter()
            .filter(|c| !c.timed_out && c.latency_us() as f64 / 1000.0 <= slo_ms)
            .count();
        let post = |p: &&crate::timeline::TimelinePoint| p.t_s >= surge_s;

        let mut r = CellResult::default();
        r.push("completed", completed as f64);
        r.push("timeouts", timeouts as f64);
        r.push("p99_ms", percentile_between(&comps, surge_s, end_s, 0.99).unwrap_or(-1.0));
        r.push("converge_s", convergence_time_s(&tl, surge_s, slo_ms, 4).unwrap_or(-1.0));
        r.push(
            "slo_attained",
            if completed > 0 { within_slo as f64 / completed as f64 } else { -1.0 },
        );
        r.push("final_instances", tl.last().map_or(0, |p| p.total_instances) as f64);
        r.push(
            "peak_instances",
            tl.iter().filter(post).map(|p| p.total_instances).max().unwrap_or(0) as f64,
        );
        let post_points: Vec<f64> =
            tl.iter().filter(post).map(|p| p.total_instances as f64).collect();
        r.push(
            "mean_instances",
            if post_points.is_empty() {
                -1.0
            } else {
                post_points.iter().sum::<f64>() / post_points.len() as f64
            },
        );
        Ok(r)
    }

    /// Evaluates one parallel-sim ablation cell: a fixed open-loop Online
    /// Boutique replay on the simulator alone, no controller in the loop.
    /// `simthreads` picks the executor — `0` runs the serial [`World`]
    /// reference, `n ≥ 1` runs [`graf_sim::exec::ShardedWorld`] with `n`
    /// workers — and every recorded metric must be identical for any `n ≥ 1`
    /// (the serial reference matches on conservation counts; see the module
    /// docs). Wall-clock time is deliberately not recorded, so the rows are
    /// byte-comparable across the `simthreads` axis.
    fn run_ablation_cell(&self, cell: &Cell, _cell_seed: u64) -> Result<CellResult, String> {
        use graf_sim::events::QueueKind;
        use graf_sim::exec::ShardedWorld;
        use graf_sim::rng::DetRng;

        // The sweep's cell seed folds in every axis value — including
        // `simthreads`, which must NOT shift the scenario (the executor is
        // the thing under test, the scenario is the control). Re-derive the
        // seed from the cell key without that coordinate so all worker-count
        // rows of a `(tier, queue)` pair replay the same arrivals.
        let scenario_key: String = cell
            .key()
            .split('/')
            .filter(|part| !part.starts_with("simthreads="))
            .collect::<Vec<_>>()
            .join("/");
        let seed = graf_sweep::derive_seed(self.grid_seed, &scenario_key);

        let queue = match cell.get("queue").unwrap_or("calendar") {
            "calendar" => QueueKind::Calendar,
            "heap" => QueueKind::Heap,
            other => return Err(format!("unknown queue {other:?}")),
        };
        let threads: usize = match cell.get("simthreads") {
            Some(v) => {
                v.parse().map_err(|_| format!("simthreads value {v:?} is not a worker count"))?
            }
            None => self.scale.sim_threads.unwrap_or(0),
        };
        let base = SimConfig {
            request_timeout_us: None,
            return_us: 250,
            event_queue: queue,
            ..SimConfig::default()
        };
        let (rates, replicas, unit_mc, horizon_s, cfg) = match cell.get("tier") {
            Some("sim600") => (
                [180.0, 180.0, 240.0],
                vec![4usize; 6],
                250.0,
                if self.scale.quick { 2u64 } else { 6 },
                base,
            ),
            Some("sim5k") => (
                [1500.0, 1500.0, 2000.0],
                vec![5, 2, 3, 5, 7, 3],
                1000.0,
                if self.scale.quick { 1 } else { 3 },
                SimConfig { trace_sample: 0.05, cpu_checkpoint_us: 1_000, ..base },
            ),
            other => return Err(format!("unknown tier {other:?}")),
        };

        let topo = graf_apps::online_boutique();
        if replicas.len() != topo.num_services() {
            return Err(format!(
                "boutique has {} services, expected {}",
                topo.num_services(),
                replicas.len()
            ));
        }
        let mut rng = DetRng::new(seed ^ 0x5107);
        let mut arrivals: Vec<(ApiId, SimTime)> = Vec::new();
        for (api, rate) in rates.iter().enumerate() {
            let mut t = 0.0;
            loop {
                t += rng.exp(1e6 / rate);
                if t >= horizon_s as f64 * 1e6 {
                    break;
                }
                arrivals.push((ApiId(api as u16), SimTime(t as u64)));
            }
        }
        let quiesce = SimTime::from_secs(horizon_s as f64 + 30.0);
        let (comps, stats, in_flight) = if threads == 0 {
            let mut w = World::new(topo, cfg, seed);
            for (s, &n) in replicas.iter().enumerate() {
                w.add_instances(ServiceId(s as u16), n, unit_mc, SimTime::ZERO);
            }
            for &(api, t) in &arrivals {
                w.inject(api, t);
            }
            w.run_to_quiescence(quiesce);
            (w.drain_completions(), w.stats(), w.in_flight())
        } else {
            let mut w = ShardedWorld::new(topo, cfg, seed, threads);
            for (s, &n) in replicas.iter().enumerate() {
                w.add_instances(ServiceId(s as u16), n, unit_mc, SimTime::ZERO);
            }
            for &(api, t) in &arrivals {
                w.inject(api, t);
            }
            w.run_until(SimTime::from_secs(horizon_s as f64));
            w.run_to_quiescence(quiesce);
            (w.drain_completions(), w.stats(), w.in_flight())
        };

        let mut lat: Vec<u64> =
            comps.iter().filter(|c| !c.timed_out).map(|c| c.latency_us()).collect();
        lat.sort_unstable();
        let pct = |p: f64| -> f64 {
            if lat.is_empty() {
                return -1.0;
            }
            lat[((lat.len() as f64 - 1.0) * p).round() as usize] as f64 / 1000.0
        };
        let mut r = CellResult::default();
        r.push("completed", comps.len() as f64);
        r.push("events", stats.events as f64);
        r.push("spans", stats.spans as f64);
        r.push("p50_ms", pct(0.50));
        r.push("p99_ms", pct(0.99));
        r.push("in_flight", in_flight as f64);
        Ok(r)
    }
}

/// Builds the cell's fault schedule: the named catalog fault over a window
/// bracketing the surge, `latency_spike` pointed at the app's hottest
/// (highest per-request CPU) service.
fn chaos_schedule(
    name: &str,
    setup: &AppSetup,
    seed: u64,
    surge_s: f64,
) -> Result<ChaosSchedule, String> {
    let hot = setup
        .topo
        .services
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.work_ms.partial_cmp(&b.1.work_ms).expect("finite work_ms"))
        .map(|(i, _)| ServiceId(i as u16))
        .expect("topology has services");
    let faults =
        graf_chaos::named_faults(name, hot).ok_or_else(|| format!("unknown chaos {name:?}"))?;
    let mut sched = ChaosSchedule::new(seed);
    for kind in faults {
        sched = sched.fault(
            kind,
            SimTime::from_secs((surge_s - FAULT_LEAD_S).max(0.0)),
            SimTime::from_secs(surge_s + FAULT_TAIL_S),
        );
    }
    Ok(sched)
}

/// Builds the cell's closed-loop population: a base population sized to the
/// app's trained operating point (scaled by `load`), then the surge shape.
fn users_loadgen(
    setup: &AppSetup,
    surge: &str,
    load: f64,
    surge_s: f64,
    seed: u64,
) -> Result<ClosedLoop, String> {
    let mix: Vec<(ApiId, f64)> =
        setup.probe_qps.iter().enumerate().map(|(i, &q)| (ApiId(i as u16), q)).collect();
    // ~2.5 users per probe req/s puts the population at the trained
    // operating point (think time U[0, 5 s]); base load holds at half that.
    let base = ((setup.probe_qps.iter().sum::<f64>() * 1.25 * load).round() as usize).max(1);
    let mut users = ClosedLoop::with_mix(mix, base, seed ^ 0x21);
    match surge {
        "none" => {}
        "step" => users.set_users(SimTime::from_secs(surge_s), base * 2),
        "ramp" => {
            // Linear climb to 2× over eight 15 s steps.
            for k in 1..=8usize {
                users.set_users(
                    SimTime::from_secs(surge_s + (k as f64 - 1.0) * 15.0),
                    base + base * k / 8,
                );
            }
        }
        "spike" => {
            users.set_users(SimTime::from_secs(surge_s), base * 3);
            users.set_users(SimTime::from_secs(surge_s + 60.0), base);
        }
        other => return Err(format!("unknown surge {other:?}")),
    }
    Ok(users)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sweep::derive_seed;

    #[test]
    fn presets_resolve_and_validate() {
        for (name, _) in PRESETS {
            let grid = resolve_grid(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!grid.cells().is_empty());
        }
        assert_eq!(resolve_grid("@smoke").unwrap().cells().len(), 4);
        assert!(resolve_grid("@bogus").unwrap_err().contains("unknown preset"));
    }

    #[test]
    fn validation_rejects_typos() {
        let bad_axis = Grid::parse("policy=hpa;zone=us").unwrap();
        assert!(validate(&bad_axis).unwrap_err().contains("unknown axis"));
        let bad_value = Grid::parse("policy=hpa;app=buotique").unwrap();
        assert!(validate(&bad_value).unwrap_err().contains("unknown app value"));
        let bad_slo = Grid::parse("policy=hpa;slo=-5").unwrap();
        assert!(validate(&bad_slo).unwrap_err().contains("positive number"));
        let no_policy = Grid::parse("app=boutique").unwrap();
        assert!(validate(&no_policy).unwrap_err().contains("policy"));
    }

    #[test]
    fn smoke_cell_runs_deterministically() {
        let grid = resolve_grid("@smoke").unwrap();
        let cell = &grid.cells()[0];
        let seed = derive_seed(7, &cell.key());
        let scale = SweepScale { quick: true, ..SweepScale::default() };
        let a = CellRunner::new(7, scale.clone()).run_cell(cell, seed).unwrap();
        let b = CellRunner::new(7, scale).run_cell(cell, seed).unwrap();
        assert_eq!(a, b, "same cell + seed → identical metrics");
        assert!(a.get("completed").unwrap_or(0.0) > 0.0, "requests completed");
    }

    #[test]
    fn parsim_preset_is_the_tier_by_queue_by_threads_grid() {
        let grid = resolve_grid("@parsim").unwrap();
        assert_eq!(grid.cells().len(), 16, "2 tiers × 2 queues × 4 worker counts");
        assert!(grid.cells().iter().all(|c| c.get("policy").is_none()));
    }

    #[test]
    fn ablation_grids_reject_scenario_axes_and_vice_versa() {
        let mixed = Grid::parse("tier=sim600;policy=hpa").unwrap();
        assert!(validate(&mixed).unwrap_err().contains("ablation"));
        let orphan = Grid::parse("policy=hpa;simthreads=2").unwrap();
        assert!(validate(&orphan).unwrap_err().contains("tier"));
        let bad_count = Grid::parse("tier=sim600;simthreads=two").unwrap();
        assert!(validate(&bad_count).unwrap_err().contains("worker count"));
    }

    /// The ablation's core claim: sharded rows differing only in the
    /// `simthreads` coordinate carry identical metrics, and the serial
    /// reference row conserves the same requests and spans (its latency
    /// quantiles come from a different RNG stream — one global generator
    /// instead of one per shard — so they match only statistically).
    #[test]
    fn ablation_cells_are_identical_across_worker_counts() {
        let scale = SweepScale { quick: true, ..SweepScale::default() };
        let mut runner = CellRunner::new(7, scale);
        let mut row = |simthreads: &str| {
            let key = format!("queue=heap/simthreads={simthreads}/tier=sim600");
            let cell = Cell::from_key(&key).expect("parseable key");
            let seed = derive_seed(7, &cell.key());
            runner.run_cell(&cell, seed).unwrap()
        };
        let serial = row("0");
        let one = row("1");
        let three = row("3");
        assert!(one.get("completed").unwrap_or(0.0) > 0.0, "requests completed");
        assert_eq!(one.get("in_flight"), Some(0.0), "ablation drains fully");
        assert_eq!(one, three, "worker count leaked into ablation metrics");
        for metric in ["completed", "spans", "in_flight"] {
            assert_eq!(serial.get(metric), one.get(metric), "serial reference diverged: {metric}");
        }
    }

    #[test]
    fn unknown_cell_values_are_runtime_errors_not_panics() {
        let mut runner = CellRunner::new(7, SweepScale { quick: true, ..SweepScale::default() });
        let cell = Cell::from_key("app=nope/policy=hpa").expect("parseable key");
        assert!(runner.run_cell(&cell, 1).is_err());
        let cell = Cell::from_key("policy=nope").expect("parseable key");
        assert!(runner.run_cell(&cell, 1).is_err());
    }
}
