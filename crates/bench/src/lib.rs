//! # graf-bench
//!
//! The evaluation harness: one binary per table/figure of the paper (see
//! DESIGN.md's experiment index) plus Criterion benches for the timing
//! claims. This library holds the shared pieces:
//!
//! * [`args`] — a tiny flag parser (`--seed`, `--paper-scale`, …) shared by
//!   every experiment binary,
//! * [`perf`] — `BENCH_HISTORY.jsonl` records and the noise-aware
//!   regression comparator behind the `graf-perf` binary,
//! * [`pricing`] — the AWS EC2 on-demand prices of Table 3 and the
//!   cost-benefit arithmetic of Figure 19,
//! * [`sweepgrid`] — the axis mapping behind the `graf-sweep` binary: grid
//!   axes (`app`/`slo`/`surge`/`chaos`/`policy`/`load`) onto concrete
//!   scenarios, with per-worker model caches,
//! * [`standard`] — the standard experiment configurations: per-application
//!   probe workloads, SLOs, CPU units and pre-built GRAF pipelines, so every
//!   figure binary trains against the same artifacts the way the paper
//!   trains one model per application and reuses it for every result
//!   ("the model is trained once... used to reproduce every result").
//!
//! **Invariants.** Every experiment binary is deterministic per `--seed`:
//! rerunning one produces byte-identical output (the chaos matrix asserts
//! this property is preserved under fault injection too). Scale knobs
//! (`--quick`, `--paper-scale`, `--samples`) change budgets, never the
//! claim under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod perf;
pub mod pricing;
pub mod standard;
pub mod sweepgrid;
pub mod timeline;

pub use args::Args;
