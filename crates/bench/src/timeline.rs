//! Timeline recording for the time-series figures (2, 7, 20, 21, 22).

use graf_core::baseline::SteadyOutcome;
use graf_loadgen::LoadGen;
use graf_metrics::Summary;
use graf_orchestrator::{run_experiment, Autoscaler, Cluster, ExperimentHooks};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::ServiceId;
use graf_sim::world::Completion;

/// One sample of the cluster state during a run.
#[derive(Clone, Debug)]
pub struct TimelinePoint {
    /// Simulated time, seconds.
    pub t_s: f64,
    /// Total live instances across deployments.
    pub total_instances: usize,
    /// Live instances per service.
    pub per_service_instances: Vec<usize>,
    /// Perceived workload per service (req/s over the trailing 5 s) — the
    /// Figure-7 signal.
    pub per_service_rate: Vec<f64>,
    /// End-to-end p99 over the trailing 10 s, ms.
    pub p99_ms: Option<f64>,
}

/// Runs an experiment while sampling a [`TimelinePoint`] every `every`.
/// Returns the timeline plus every completion (for offline percentile work).
pub fn run_with_timeline(
    cluster: &mut Cluster,
    loadgen: &mut dyn LoadGen,
    scaler: &mut dyn Autoscaler,
    until: SimTime,
    every: SimDuration,
) -> (Vec<TimelinePoint>, Vec<Completion>) {
    let n = cluster.world().topology().num_services();
    let mut timeline = Vec::new();
    let mut completions = Vec::new();
    let mut next = cluster.world().now() + every;
    let mut on_segment = |cluster: &mut Cluster, comps: &[Completion]| {
        completions.extend_from_slice(comps);
        let now = cluster.world().now();
        if now >= next {
            timeline.push(TimelinePoint {
                t_s: now.as_secs_f64(),
                total_instances: cluster.total_instances(),
                per_service_instances: (0..n)
                    .map(|s| cluster.live_instances(ServiceId(s as u16)))
                    .collect(),
                per_service_rate: (0..n)
                    .map(|s| cluster.world().service_arrival_rate(ServiceId(s as u16), 5))
                    .collect(),
                p99_ms: cluster.world().e2e_percentile(10, 0.99).map(|d| d.as_millis_f64()),
            });
            next += every;
        }
    };
    let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
    run_experiment(cluster, loadgen, scaler, until, &mut hooks);
    (timeline, completions)
}

/// p-quantile (ms) of completions finishing in `[from_s, to_s)`.
pub fn percentile_between(comps: &[Completion], from_s: f64, to_s: f64, q: f64) -> Option<f64> {
    let mut s = Summary::new();
    for c in comps {
        let t = c.end.as_secs_f64();
        if t >= from_s && t < to_s {
            s.record(c.latency_us() as f64 / 1000.0);
        }
    }
    s.percentile(q)
}

/// Figure 22's convergence time: seconds from `surge_s` until the trailing
/// p99 stays at or below `slo_ms` for `hold` consecutive timeline points.
/// Returns `None` if it never settles within the timeline.
pub fn convergence_time_s(
    timeline: &[TimelinePoint],
    surge_s: f64,
    slo_ms: f64,
    hold: usize,
) -> Option<f64> {
    let mut run_start: Option<f64> = None;
    let mut run_len = 0usize;
    for p in timeline.iter().filter(|p| p.t_s >= surge_s) {
        let ok = p.p99_ms.is_some_and(|v| v <= slo_ms);
        if ok {
            if run_len == 0 {
                run_start = Some(p.t_s);
            }
            run_len += 1;
            if run_len >= hold {
                return run_start.map(|t| t - surge_s);
            }
        } else {
            run_len = 0;
            run_start = None;
        }
    }
    None
}

/// Aggregates a timeline's tail into a [`SteadyOutcome`]-style summary over
/// `[from_s, to_s)` (used when a figure also reports steady numbers).
pub fn window_summary(
    timeline: &[TimelinePoint],
    comps: &[Completion],
    from_s: f64,
    to_s: f64,
) -> SteadyOutcome {
    let pts: Vec<&TimelinePoint> =
        timeline.iter().filter(|p| p.t_s >= from_s && p.t_s < to_s).collect();
    let div = pts.len().max(1) as f64;
    let n = pts.first().map_or(0, |p| p.per_service_instances.len());
    let mut per_inst = vec![0.0; n];
    for p in &pts {
        for (i, &v) in p.per_service_instances.iter().enumerate() {
            per_inst[i] += v as f64;
        }
    }
    SteadyOutcome {
        p99_ms: percentile_between(comps, from_s, to_s, 0.99),
        p95_ms: percentile_between(comps, from_s, to_s, 0.95),
        mean_instances: pts.iter().map(|p| p.total_instances as f64).sum::<f64>() / div,
        mean_quota_mc: 0.0,
        per_service_quota_mc: Vec::new(),
        per_service_instances: per_inst.iter().map(|v| v / div).collect(),
        completed: comps
            .iter()
            .filter(|c| {
                let t = c.end.as_secs_f64();
                t >= from_s && t < to_s
            })
            .count(),
        timeouts: comps
            .iter()
            .filter(|c| {
                let t = c.end.as_secs_f64();
                c.timed_out && t >= from_s && t < to_s
            })
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::frame::RequestId;
    use graf_sim::topology::ApiId;

    fn point(t_s: f64, p99: Option<f64>) -> TimelinePoint {
        TimelinePoint {
            t_s,
            total_instances: 1,
            per_service_instances: vec![1],
            per_service_rate: vec![0.0],
            p99_ms: p99,
        }
    }

    #[test]
    fn convergence_finds_first_sustained_ok_run() {
        let tl = vec![
            point(10.0, Some(500.0)),
            point(20.0, Some(90.0)), // blip, not sustained
            point(30.0, Some(400.0)),
            point(40.0, Some(80.0)),
            point(50.0, Some(70.0)),
            point(60.0, Some(60.0)),
        ];
        let t = convergence_time_s(&tl, 10.0, 100.0, 3).unwrap();
        assert_eq!(t, 30.0, "converged at t=40 after surge at 10");
        assert_eq!(convergence_time_s(&tl, 10.0, 10.0, 3), None);
    }

    #[test]
    fn percentile_between_filters_by_time() {
        let mk = |end_s: f64, lat_ms: u64| Completion {
            request: RequestId(0),
            api: ApiId(0),
            start: SimTime::from_secs(end_s - lat_ms as f64 / 1000.0),
            end: SimTime::from_secs(end_s),
            timed_out: false,
        };
        let comps = vec![mk(1.0, 10), mk(2.0, 20), mk(10.0, 1000)];
        let p = percentile_between(&comps, 0.0, 5.0, 1.0).unwrap();
        assert!((p - 20.0).abs() < 0.5);
    }
}
