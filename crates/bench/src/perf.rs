//! Bench-history records and the noise-aware perf-regression comparator
//! behind `graf-perf compare`.
//!
//! `bench_compute --history BENCH_HISTORY.jsonl` appends one record per
//! benchmark per run: the git revision, the bench id, the median wall-clock
//! and the inter-quartile range of the timed repetitions. The IQR is the
//! point of the whole scheme — it is a per-run noise estimate, so a later
//! `graf-perf compare <revA> <revB>` can distinguish "10 % slower" from
//! "10 % slower but the run-to-run jitter is 15 %", and only fail CI on the
//! former.
//!
//! The decision rule ([`compare`]): a bench REGRESSED from `a` to `b` when
//! the median moved by more than `threshold_pct` **and** by more than the
//! larger of the two noise estimates. IMPROVED is the mirror image; anything
//! else is UNCHANGED. Revisions with no history produce an empty report
//! (callers treat that leniently — a fresh clone must not fail CI).

use graf_obs::json::{self, Json};

/// One benchmark measurement as stored in `BENCH_HISTORY.jsonl`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRun {
    /// Git revision (full SHA as written by `bench_compute`, but any
    /// string works — comparisons are prefix-tolerant).
    pub rev: String,
    /// Benchmark id, e.g. `sim_boutique_10s_600qps_ms`.
    pub bench: String,
    /// Median wall-clock of the timed repetitions, milliseconds.
    pub median_ms: f64,
    /// Inter-quartile range of the timed repetitions, milliseconds — the
    /// per-run noise estimate.
    pub iqr_ms: f64,
    /// `"full"` or `"smoke"` — smoke runs use fewer repetitions, so their
    /// IQR is a weaker estimate, but they still carry signal.
    pub mode: String,
}

impl BenchRun {
    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"rev\": ");
        json::write_str(&mut out, &self.rev);
        out.push_str(", \"bench\": ");
        json::write_str(&mut out, &self.bench);
        out.push_str(", \"median_ms\": ");
        json::write_f64(&mut out, self.median_ms);
        out.push_str(", \"iqr_ms\": ");
        json::write_f64(&mut out, self.iqr_ms);
        out.push_str(", \"mode\": ");
        json::write_str(&mut out, &self.mode);
        out.push('}');
        out
    }

    /// Parses one JSONL line. Errors name the missing/ill-typed field.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let doc = json::parse(line)?;
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing/non-string field {k:?}"))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing/non-number field {k:?}"))
        };
        Ok(Self {
            rev: str_field("rev")?,
            bench: str_field("bench")?,
            median_ms: num_field("median_ms")?,
            iqr_ms: num_field("iqr_ms")?,
            mode: str_field("mode").unwrap_or_else(|_| "full".to_string()),
        })
    }
}

/// Parses a whole history file. Returns the runs plus the number of lines
/// skipped (blank lines and unparseable records — a history file is
/// append-only across many revisions of this tool, so old/partial lines must
/// not poison the comparison).
pub fn parse_history(text: &str) -> (Vec<BenchRun>, usize) {
    let mut runs = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match BenchRun::from_json(line) {
            Ok(run) => runs.push(run),
            Err(_) => skipped += 1,
        }
    }
    (runs, skipped)
}

/// Median and inter-quartile range of `samples` (nearest-rank quartiles,
/// matching `bench_compute`'s median convention). Empty input yields zeros.
pub fn median_iqr(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let med = xs[xs.len() / 2];
    let iqr = xs[(3 * xs.len()) / 4] - xs[xs.len() / 4];
    (med, iqr)
}

/// The verdict on one benchmark between two revisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Median slower by more than the threshold AND more than the noise.
    Regressed,
    /// Median faster by more than the threshold AND more than the noise.
    Improved,
    /// Within threshold or within noise.
    Unchanged,
}

/// Per-benchmark comparison row.
#[derive(Clone, Debug)]
pub struct BenchVerdict {
    /// Benchmark id.
    pub bench: String,
    /// Aggregated median at the base revision, ms.
    pub base_ms: f64,
    /// Aggregated median at the new revision, ms.
    pub new_ms: f64,
    /// Noise estimate used for the decision (max of both sides), ms.
    pub noise_ms: f64,
    /// `(new - base) / base`, percent.
    pub delta_pct: f64,
    /// The decision.
    pub verdict: Verdict,
}

/// The full comparison between two revisions.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// One row per benchmark present at both revisions.
    pub rows: Vec<BenchVerdict>,
    /// Benchmarks present only at the base revision.
    pub only_base: Vec<String>,
    /// Benchmarks present only at the new revision.
    pub only_new: Vec<String>,
}

impl CompareReport {
    /// `true` when any row regressed.
    pub fn has_regressions(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// `true` when the two revisions did not measure the same bench set.
    pub fn has_coverage_gaps(&self) -> bool {
        !self.only_base.is_empty() || !self.only_new.is_empty()
    }
}

/// `true` when `history` holds at least one run for `rev` (prefix-tolerant).
pub fn rev_has_runs(history: &[BenchRun], rev: &str) -> bool {
    history.iter().any(|r| rev_matches(&r.rev, rev))
}

/// Whether a `--strict` compare must fail on coverage: only when **both**
/// revisions have history and their bench sets still differ. A revision with
/// no history at all (fresh clone, or a commit whose history was appended
/// pre-commit and so never lists its own SHA) stays lenient — otherwise
/// strict mode would permanently fail `compare HEAD~1 HEAD` in CI.
pub fn strict_coverage_failure(
    history: &[BenchRun],
    rev_a: &str,
    rev_b: &str,
    report: &CompareReport,
) -> bool {
    report.has_coverage_gaps() && rev_has_runs(history, rev_a) && rev_has_runs(history, rev_b)
}

/// `true` when `run.rev` matches the query revision (exact or the stored
/// SHA extends an abbreviated query).
fn rev_matches(run_rev: &str, query: &str) -> bool {
    run_rev == query || (query.len() >= 7 && run_rev.starts_with(query))
}

/// Pools every run of one bench at one revision into `(median, noise)`.
///
/// Center: median of the run medians. Noise: the largest per-run IQR, or the
/// spread between the pooled run medians when that is bigger — repeated runs
/// at the same revision are themselves a noise sample.
fn pool(runs: &[&BenchRun]) -> (f64, f64) {
    let medians: Vec<f64> = runs.iter().map(|r| r.median_ms).collect();
    let (center, spread) = median_iqr(&medians);
    let max_iqr = runs.iter().map(|r| r.iqr_ms).fold(0.0f64, f64::max);
    (center, max_iqr.max(spread))
}

/// Compares all benchmarks between `rev_a` (base) and `rev_b` (new).
///
/// `threshold_pct` is the regression gate (the repo's CI uses 10.0): a bench
/// regresses only when its median slows by more than this percentage **and**
/// by more than the noise estimate.
pub fn compare(
    history: &[BenchRun],
    rev_a: &str,
    rev_b: &str,
    threshold_pct: f64,
) -> CompareReport {
    let mut report = CompareReport::default();
    // Stable bench order: first appearance in the history file.
    let mut benches: Vec<&str> = Vec::new();
    for run in history {
        if !benches.contains(&run.bench.as_str()) {
            benches.push(&run.bench);
        }
    }
    for bench in benches {
        let at = |rev: &str| -> Vec<&BenchRun> {
            history.iter().filter(|r| r.bench == bench && rev_matches(&r.rev, rev)).collect()
        };
        let (base_runs, new_runs) = (at(rev_a), at(rev_b));
        match (base_runs.is_empty(), new_runs.is_empty()) {
            (true, true) => {}
            (false, true) => report.only_base.push(bench.to_string()),
            (true, false) => report.only_new.push(bench.to_string()),
            (false, false) => {
                let (base_ms, base_noise) = pool(&base_runs);
                let (new_ms, new_noise) = pool(&new_runs);
                let noise_ms = base_noise.max(new_noise);
                let delta = new_ms - base_ms;
                let delta_pct = if base_ms > 0.0 { delta / base_ms * 100.0 } else { 0.0 };
                let verdict = if delta_pct > threshold_pct && delta > noise_ms {
                    Verdict::Regressed
                } else if delta_pct < -threshold_pct && -delta > noise_ms {
                    Verdict::Improved
                } else {
                    Verdict::Unchanged
                };
                report.rows.push(BenchVerdict {
                    bench: bench.to_string(),
                    base_ms,
                    new_ms,
                    noise_ms,
                    delta_pct,
                    verdict,
                });
            }
        }
    }
    report
}

/// The parsed `BENCH_SIM.json` report: every simulator tier plus the name of
/// the headline tier.
///
/// The file's top level is a *pointer* (`"headline": "<bench name>"`) into
/// the `benches` array — the headline numbers exist exactly once, so the two
/// can never drift apart (the failure mode of the old shape, which
/// duplicated the headline entry at top level).
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Name of the headline bench (must appear in [`SimReport::benches`]).
    pub headline: String,
    /// Every simulator tier (`rev` is empty — the file is per-checkout).
    pub benches: Vec<BenchRun>,
}

impl SimReport {
    /// The headline tier's measurement.
    pub fn headline_run(&self) -> &BenchRun {
        self.benches
            .iter()
            .find(|b| b.bench == self.headline)
            .expect("parse_bench_sim verified the pointer resolves")
    }
}

/// Parses `BENCH_SIM.json`. Accepts the current headline-pointer shape and
/// the legacy shape (headline fields duplicated at top level) so old
/// checkouts keep working; in both cases the headline must resolve to an
/// entry of `benches`.
pub fn parse_bench_sim(text: &str) -> Result<SimReport, String> {
    let doc = json::parse(text)?;
    let headline = doc
        .get("headline")
        .or_else(|| doc.get("bench"))
        .and_then(Json::as_str)
        .ok_or("missing \"headline\" (or legacy \"bench\") field")?
        .to_string();
    let Some(Json::Arr(items)) = doc.get("benches") else {
        return Err("missing/non-array field \"benches\"".to_string());
    };
    let mut benches = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let bench = item
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("benches[{i}]: missing/non-string \"bench\""))?
            .to_string();
        let num = |k: &str| {
            item.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("benches[{i}]: missing/non-number {k:?}"))
        };
        let mode = item.get("mode").and_then(Json::as_str).unwrap_or("full").to_string();
        benches.push(BenchRun {
            rev: String::new(),
            bench,
            median_ms: num("median_ms")?,
            iqr_ms: num("iqr_ms")?,
            mode,
        });
    }
    if !benches.iter().any(|b| b.bench == headline) {
        return Err(format!("headline {headline:?} not present in benches[]"));
    }
    Ok(SimReport { headline, benches })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rev: &str, bench: &str, median: f64, iqr: f64) -> BenchRun {
        BenchRun {
            rev: rev.to_string(),
            bench: bench.to_string(),
            median_ms: median,
            iqr_ms: iqr,
            mode: "full".to_string(),
        }
    }

    #[test]
    fn bench_run_round_trips_through_jsonl() {
        let r = run("abc123def4567", "solver_solve_6svc_ms", 12.5, 0.75);
        let line = r.to_json();
        assert_eq!(BenchRun::from_json(&line).unwrap(), r);
    }

    #[test]
    fn parse_history_skips_garbage_lines() {
        let text = format!(
            "{}\n\nnot json at all\n{}\n{{\"rev\": \"x\"}}\n",
            run("a", "b1", 1.0, 0.1).to_json(),
            run("a", "b2", 2.0, 0.2).to_json()
        );
        let (runs, skipped) = parse_history(&text);
        assert_eq!(runs.len(), 2);
        assert_eq!(skipped, 2);
    }

    #[test]
    fn median_iqr_nearest_rank() {
        let (m, i) = median_iqr(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(m, 3.0); // sorted [1,2,3,4], index 4/2 = 2
        assert_eq!(i, 4.0 - 2.0); // q3 at index 3, q1 at index 1
        assert_eq!(median_iqr(&[]), (0.0, 0.0));
        assert_eq!(median_iqr(&[7.0]), (7.0, 0.0));
    }

    #[test]
    fn clear_regression_is_flagged() {
        let hist = vec![
            run("aaaaaaaa", "train_step_ms", 10.0, 0.2),
            run("bbbbbbbb", "train_step_ms", 13.0, 0.3),
        ];
        let report = compare(&hist, "aaaaaaaa", "bbbbbbbb", 10.0);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        assert!(report.has_regressions());
        assert!((report.rows[0].delta_pct - 30.0).abs() < 1e-9);
    }

    #[test]
    fn regression_within_noise_does_not_fail() {
        // 30 % slower, but the base IQR is ±5 ms: the 3 ms delta is noise.
        let hist = vec![run("aaaaaaaa", "sim_ms", 10.0, 5.0), run("bbbbbbbb", "sim_ms", 13.0, 0.3)];
        let report = compare(&hist, "aaaaaaaa", "bbbbbbbb", 10.0);
        assert_eq!(report.rows[0].verdict, Verdict::Unchanged);
        assert!(!report.has_regressions());
    }

    #[test]
    fn improvement_and_small_delta_are_not_regressions() {
        let hist = vec![
            run("aaaaaaaa", "fast_ms", 10.0, 0.1),
            run("bbbbbbbb", "fast_ms", 7.0, 0.1),
            run("aaaaaaaa", "flat_ms", 10.0, 0.1),
            run("bbbbbbbb", "flat_ms", 10.5, 0.1),
        ];
        let report = compare(&hist, "aaaaaaaa", "bbbbbbbb", 10.0);
        let by_name = |n: &str| report.rows.iter().find(|r| r.bench == n).unwrap();
        assert_eq!(by_name("fast_ms").verdict, Verdict::Improved);
        assert_eq!(by_name("flat_ms").verdict, Verdict::Unchanged);
    }

    #[test]
    fn repeated_runs_pool_and_spread_counts_as_noise() {
        // Same revision measured three times with spread 2.0; the cross-rev
        // delta of 1.5 is inside that spread even though per-run IQRs are 0.
        let hist = vec![
            run("aaaaaaaa", "x_ms", 9.0, 0.0),
            run("aaaaaaaa", "x_ms", 10.0, 0.0),
            run("aaaaaaaa", "x_ms", 11.0, 0.0),
            run("bbbbbbbb", "x_ms", 11.5, 0.0),
        ];
        let report = compare(&hist, "aaaaaaaa", "bbbbbbbb", 10.0);
        assert_eq!(report.rows[0].verdict, Verdict::Unchanged);
    }

    #[test]
    fn missing_revisions_produce_empty_or_partial_reports() {
        let hist = vec![run("aaaaaaaa", "x_ms", 10.0, 0.1)];
        let report = compare(&hist, "aaaaaaaa", "cccccccc", 10.0);
        assert!(report.rows.is_empty());
        assert_eq!(report.only_base, vec!["x_ms".to_string()]);
        assert!(!report.has_regressions());
        let empty = compare(&[], "aaaaaaaa", "bbbbbbbb", 10.0);
        assert!(empty.rows.is_empty() && empty.only_base.is_empty() && empty.only_new.is_empty());
    }

    #[test]
    fn strict_fails_only_when_both_revisions_have_history() {
        let hist = vec![
            run("aaaaaaaa", "x_ms", 10.0, 0.1),
            run("aaaaaaaa", "gone_ms", 5.0, 0.1),
            run("bbbbbbbb", "x_ms", 10.0, 0.1),
        ];
        let report = compare(&hist, "aaaaaaaa", "bbbbbbbb", 10.0);
        assert!(report.has_coverage_gaps());
        assert!(strict_coverage_failure(&hist, "aaaaaaaa", "bbbbbbbb", &report));
        // The new revision has NO history at all (the CI `compare HEAD~1
        // HEAD` case — history is appended pre-commit): strict stays green.
        let report = compare(&hist, "aaaaaaaa", "cccccccc", 10.0);
        assert!(report.has_coverage_gaps());
        assert!(!strict_coverage_failure(&hist, "aaaaaaaa", "cccccccc", &report));
        // Identical bench sets: nothing to fail on.
        let report = compare(&hist, "bbbbbbbb", "bbbbbbbb", 10.0);
        assert!(!report.has_coverage_gaps());
        assert!(!strict_coverage_failure(&hist, "bbbbbbbb", "bbbbbbbb", &report));
    }

    #[test]
    fn bench_sim_headline_is_a_pointer_into_benches() {
        let text = r#"{
          "headline": "sim_10s_ms",
          "benches": [
            { "bench": "sim_10s_ms", "median_ms": 13.3, "iqr_ms": 0.5, "mode": "full" },
            { "bench": "sim_50k_ms", "median_ms": 5903.6, "iqr_ms": 227.9, "mode": "full" }
          ]
        }"#;
        let report = parse_bench_sim(text).unwrap();
        assert_eq!(report.headline, "sim_10s_ms");
        assert_eq!(report.benches.len(), 2);
        assert_eq!(report.headline_run().median_ms, 13.3);
    }

    #[test]
    fn bench_sim_legacy_duplicate_shape_still_parses() {
        let text = r#"{
          "bench": "sim_10s_ms", "median_ms": 13.3, "iqr_ms": 0.5, "mode": "full",
          "benches": [
            { "bench": "sim_10s_ms", "median_ms": 13.3, "iqr_ms": 0.5, "mode": "full" }
          ]
        }"#;
        let report = parse_bench_sim(text).unwrap();
        assert_eq!(report.headline, "sim_10s_ms");
        assert_eq!(report.headline_run().iqr_ms, 0.5);
    }

    #[test]
    fn bench_sim_dangling_headline_is_rejected() {
        let text = r#"{ "headline": "nope_ms", "benches": [
            { "bench": "sim_10s_ms", "median_ms": 1.0, "iqr_ms": 0.1 } ] }"#;
        assert!(parse_bench_sim(text).unwrap_err().contains("not present"));
        assert!(parse_bench_sim("{}").is_err());
        assert!(parse_bench_sim(r#"{ "headline": "x" }"#).is_err());
    }

    #[test]
    fn abbreviated_revs_match_stored_full_shas() {
        let hist = vec![
            run("aaaaaaaa11112222", "x_ms", 10.0, 0.1),
            run("bbbbbbbb33334444", "x_ms", 20.0, 0.1),
        ];
        let report = compare(&hist, "aaaaaaaa", "bbbbbbbb", 10.0);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].verdict, Verdict::Regressed);
        // Too-short prefixes (< 7 chars) do not match: ambiguity guard.
        let none = compare(&hist, "aaa", "bbb", 10.0);
        assert!(none.rows.is_empty());
    }
}
