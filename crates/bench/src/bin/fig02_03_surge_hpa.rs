//! Figures 2 & 3: total instances over time and end-to-end latency when
//! traffic surges, comparing manual proactive scaling against the Kubernetes
//! HPA at utilization thresholds 10 %, 25 % and 50 % (§2.1).
//!
//! The paper drives the cart page at 300 qps with Vegeta. Our reproduction
//! surges from a converged 100 qps baseline to 300 qps (a cold 0→300 start on
//! CPU-limited instances would only measure the client-timeout ceiling; real
//! pods burst above their requests during cold start — see EXPERIMENTS.md).
//! The shape under test: the proactive jump creates all instances at once
//! and settles tail latency several times faster with several times fewer
//! instances than the low-threshold HPA.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig02_03_surge_hpa
//! ```

use graf_apps::{boutique, online_boutique};
use graf_bench::timeline::{percentile_between, run_with_timeline, TimelinePoint};
use graf_bench::Args;
use graf_loadgen::OpenLoop;
use graf_orchestrator::{
    Autoscaler, Cluster, CreationModel, Deployment, HpaConfig, KubernetesHpa, ProactiveOnce,
    StaticScaler,
};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{Completion, SimConfig, World};

const BASE_QPS: f64 = 100.0;
const SURGE_QPS: f64 = 300.0;
const WARMUP_S: f64 = 360.0; // HPA stabilization window passes before the surge
const SURGE_AT_S: f64 = WARMUP_S;
const END_S: f64 = WARMUP_S + 350.0;
const CPU_UNIT: f64 = 100.0;

/// Headroom-provisioned instance targets for a given cart-page rate — the
/// §2.1 "heuristically determined number of instances".
fn targets_for(rate_qps: f64) -> Vec<(ServiceId, usize)> {
    let topo = online_boutique();
    let api = ApiId(boutique::API_CART);
    (0..topo.num_services() as u16)
        .map(|s| {
            let mult = topo.multiplicity(api, ServiceId(s));
            let offered_mc = rate_qps * mult * topo.services[s as usize].work_ms;
            let with_headroom = offered_mc * 1.8 + 60.0;
            (ServiceId(s), (with_headroom / CPU_UNIT).ceil().max(1.0) as usize)
        })
        .collect()
}

fn cluster(seed: u64, initial: &[(ServiceId, usize)]) -> Cluster {
    let topo = online_boutique();
    let world = World::new(topo, SimConfig::default(), seed);
    let deployments = initial.iter().map(|&(s, n)| Deployment::new(s, CPU_UNIT, n)).collect();
    Cluster::new(world, deployments, CreationModel::default())
}

fn load(seed: u64) -> OpenLoop {
    OpenLoop::new(seed ^ 0x5).poisson().schedule(
        ApiId(boutique::API_CART),
        vec![(SimTime::ZERO, BASE_QPS), (SimTime::from_secs(SURGE_AT_S), SURGE_QPS)],
    )
}

fn run(
    name: &str,
    scaler: &mut dyn Autoscaler,
    initial: &[(ServiceId, usize)],
    seed: u64,
) -> (Vec<TimelinePoint>, Vec<Completion>) {
    let mut c = cluster(seed, initial);
    let mut lg = load(seed);
    let (tl, comps) = run_with_timeline(
        &mut c,
        &mut lg,
        scaler,
        SimTime::from_secs(END_S),
        SimDuration::from_secs(5.0),
    );
    let p = |q: f64| percentile_between(&comps, SURGE_AT_S, END_S, q).unwrap_or(f64::NAN);
    let timeouts =
        comps.iter().filter(|c| c.timed_out && c.end.as_secs_f64() >= SURGE_AT_S).count();
    println!(
        "{name}: p90 {:.2} s, p95 {:.2} s, p99 {:.2} s, timeouts {}, final instances {}",
        p(0.90) / 1000.0,
        p(0.95) / 1000.0,
        p(0.99) / 1000.0,
        timeouts,
        tl.last().map_or(0, |x| x.total_instances)
    );
    (tl, comps)
}

fn main() {
    let args = Args::parse();
    println!(
        "# Figures 2 & 3 — proactive vs HPA thresholds, cart-page {BASE_QPS}→{SURGE_QPS} qps \
         surge at t={SURGE_AT_S}s"
    );
    let base = targets_for(BASE_QPS);
    let surge = targets_for(SURGE_QPS);
    println!(
        "proactive targets: base {:?} → surge {:?}",
        base.iter().map(|&(_, n)| n).collect::<Vec<_>>(),
        surge.iter().map(|&(_, n)| n).collect::<Vec<_>>()
    );

    println!("\n## Figure 3 rows (latency over the surge window)");
    let mut variants: Vec<Vec<TimelinePoint>> = Vec::new();
    {
        // Proactive: statically at the base targets, jump to surge targets
        // the moment the front-end rate changes.
        let mut p = ProactiveOnce::new(SimTime::from_secs(SURGE_AT_S), surge.clone());
        let (tl, _) = run("Proactive", &mut p, &base, args.seed);
        variants.push(tl);
    }
    for thr in [0.10, 0.25, 0.50] {
        let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(thr), 6);
        let (tl, _) =
            run(&format!("K8s Autoscaler({:.0}%)", thr * 100.0), &mut hpa, &base, args.seed);
        variants.push(tl);
    }
    {
        // Reference: never scaling shows the raw damage of the surge.
        let (tl, _) = run("No scaling", &mut StaticScaler, &base, args.seed);
        variants.push(tl);
    }

    println!("\n## Figure 2 series (total instances over time, t relative to surge)");
    println!("t_s,proactive,hpa10,hpa25,hpa50,static");
    let len = variants.iter().map(Vec::len).min().unwrap_or(0);
    for i in 0..len {
        if variants[0][i].t_s < SURGE_AT_S - 60.0 {
            continue; // show a bit of pre-surge context only
        }
        print!("{:.0}", variants[0][i].t_s - SURGE_AT_S);
        for tl in &variants {
            print!(",{}", tl[i].total_instances);
        }
        println!();
    }
}
