//! Thread-count identity gate for the sharded simulator.
//!
//! Runs a fixed Online Boutique scenario — steady load plus a contention
//! anomaly and a span-drop fault window, the full set of randomness
//! consumers — on [`graf_sim::exec::ShardedWorld`] and prints a canonical
//! dump: per-segment metrics lines, final stats, and order-sensitive
//! fingerprints of the merged completion and trace streams. `scripts/ci.sh`
//! runs this binary at `--sim-threads 1` and `--sim-threads 4` and requires
//! byte-identical output (the same style as the sweep worker-count gate);
//! any divergence means worker scheduling leaked into simulation results.
//!
//! Flags (see `graf_bench::Args`): `--seed` picks the scenario seed,
//! `--sim-threads` the worker count (default 1), `--quick` shortens the
//! horizon from 8 s to 2 s.

use graf_bench::Args;
use graf_sim::exec::{fingerprint_completions, fingerprint_traces, ShardedWorld};
use graf_sim::rng::DetRng;
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::SimConfig;

fn main() {
    let args = Args::parse();
    let threads = args.sim_threads.unwrap_or(1);
    let horizon_s = args.scaled(2, 8, 8) as u64;

    let topo = graf_apps::online_boutique();
    let n_services = topo.num_services() as u16;
    let cfg = SimConfig { request_timeout_us: None, return_us: 250, ..SimConfig::default() };
    let mut w = ShardedWorld::new(topo, cfg, args.seed, threads);
    println!(
        "# sim-identity seed={} horizon={}s shards={} lookahead_us={}",
        args.seed,
        horizon_s,
        w.partition().num_shards(),
        w.partition().lookahead_us()
    );

    for s in 0..n_services {
        w.add_instances(ServiceId(s), 4, 250.0, SimTime::ZERO);
    }
    // Exercise every cross-shard path under stress: a 3× contention window
    // on the hottest service and a span-drop fault over the middle third.
    let third = SimTime::from_secs(horizon_s as f64 / 3.0);
    let two_thirds = SimTime(2 * third.0);
    w.inject_contention(ServiceId(4), 3.0, third, two_thirds);
    w.inject_span_drop(third, two_thirds, 0.25);

    let mut rng = DetRng::new(args.seed ^ 0x1de27);
    for (api, rate) in [(0u16, 180.0f64), (1, 180.0), (2, 240.0)] {
        let mut t = 0.0;
        loop {
            t += rng.exp(1e6 / rate);
            if t >= horizon_s as f64 * 1e6 {
                break;
            }
            w.inject(ApiId(api), SimTime(t as u64));
        }
    }

    let mut all_completions = Vec::new();
    let mut all_traces = Vec::new();
    for seg in 1..=horizon_s {
        w.run_until(SimTime::from_secs(seg as f64));
        // At `run_until(seg)` the trailing-1 window is the just-started empty
        // one; trailing-2 covers the segment that just finished.
        let p99 = w.e2e_percentile(2, 0.99).unwrap_or(SimDuration::from_micros(0));
        let p50 = w.e2e_percentile(2, 0.50).unwrap_or(SimDuration::from_micros(0));
        let stats = w.stats();
        println!(
            "seg={seg} injected={} completed={} events={} spans={} dropped={} p50_us={} p99_us={}",
            stats.injected,
            stats.completed,
            stats.events,
            stats.spans,
            stats.spans_dropped,
            p50.as_micros(),
            p99.as_micros()
        );
        all_completions.extend(w.drain_completions());
        all_traces.extend(w.drain_traces());
    }
    w.run_to_quiescence(SimTime::from_secs(horizon_s as f64 + 30.0));
    all_completions.extend(w.drain_completions());
    all_traces.extend(w.drain_traces());

    for s in 0..n_services {
        let sid = ServiceId(s);
        let p99 = w.service_percentile(sid, horizon_s as usize, 0.99).map_or(0, |d| d.as_micros());
        println!(
            "service={s} p99_us={p99} rate={:.3} pending={}",
            w.service_arrival_rate(sid, horizon_s as usize),
            w.service_pending(sid)
        );
    }
    let stats = w.stats();
    println!(
        "final injected={} completed={} timeouts={} events={} spans={} dropped={} in_flight={}",
        stats.injected,
        stats.completed,
        stats.timeouts,
        stats.events,
        stats.spans,
        stats.spans_dropped,
        w.in_flight()
    );
    println!(
        "fingerprint completions={:016x} traces={:016x}",
        fingerprint_completions(&all_completions),
        fingerprint_traces(&all_traces)
    );
}
