//! Ablation of the §6 scalability extension: one full-graph GNN vs an
//! ensemble of per-partition GNNs on Social Network (10 services).
//!
//! The readout input grows linearly with the service count; partitioning
//! caps each sub-model's size. This measures the accuracy cost of the
//! additive composition at k = 2 and k = 3 partitions.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin ablation_partition
//! ```

use graf_bench::standard::{build_graf, social_setup};
use graf_bench::Args;
use graf_core::{NetKind, PartitionedLatencyModel};

fn main() {
    let args = Args::parse();
    let setup = social_setup();
    println!("# Partitioning ablation — Social Network, full GNN vs k-part ensembles");
    println!("training full GRAF...");
    let graf = build_graf(&setup, &args);

    // Reference: full model's error on its held-out test set.
    let table = graf.model.error_table(&graf.test_set);
    println!("\n{:<14} {:>12} {:>16} {:>14}", "model", "parts", "params", "MAPE (%)");
    println!(
        "{:<14} {:>12} {:>16} {:>14.1}",
        "full GNN",
        1,
        graf.model.num_params(),
        table.regions[3].3
    );

    // Evaluate the partitioned ensembles on the same raw samples (the exact
    // test rows differ by feature slicing, so MAPE is computed over the whole
    // sample set for both — the full model's whole-set MAPE is printed too).
    let mut full_mape = 0.0;
    for s in &graf.samples {
        let p = graf.model.predict_ms(&s.workloads, &s.quotas_mc);
        full_mape += ((p - s.p99_ms) / s.p99_ms.max(1e-9)).abs();
    }
    full_mape *= 100.0 / graf.samples.len() as f64;
    println!("{:<14} {:>12} {:>16} {:>14.1}", "(whole set)", 1, graf.model.num_params(), full_mape);

    for k in [2usize, 3] {
        let (model, _reports) = PartitionedLatencyModel::build(
            NetKind::Gnn,
            graf.analyzer.edges(),
            setup.topo.num_services(),
            k,
            graf.model.scaler,
            &graf.samples,
            &graf.build_cfg.train,
            graf.build_cfg.split_seed,
        );
        println!(
            "{:<14} {:>12} {:>16} {:>14.1}",
            format!("{k}-part"),
            model.num_parts(),
            model.num_params(),
            model.mape(&graf.samples)
        );
    }
    println!(
        "\n(per-part readouts shrink with the part size; the additive composition \
         costs some accuracy on non-chain structure — §6's suggested trade)"
    );
}
