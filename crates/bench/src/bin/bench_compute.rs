//! Compute-backend wall-clock benchmark, the repo's perf trajectory recorder.
//!
//! Measures the three hot paths of the GRAF control loop — latency-model
//! training (§3.4), the configuration solver (§3.5) and an end-to-end pilot
//! tick (solve + §6 integer refinement + prediction) — plus raw simulator
//! throughput, and writes the medians into `BENCH_COMPUTE.json` next to the
//! stored baseline so every PR can see the before/after ratio.
//!
//! Flags:
//! * `--out <path>` — write/update the JSON file (preserves an existing
//!   `baseline` section; the fresh numbers go under `current`).
//! * `--as-baseline` — store the fresh numbers as the `baseline` section
//!   instead (used once, before an optimization lands).
//! * `--smoke` — a fast sanity pass (fewer repetitions, no file written
//!   unless `--out` is also given): CI uses it to keep the bench runnable.
//! * `--threads <n>` — worker threads for the training measurements.
//! * `--history <path>` — append one JSONL record per benchmark
//!   (`{rev, bench, median_ms, iqr_ms, mode}`) for `graf-perf compare`.
//! * `--rev <str>` — revision tag for `--history` records (default:
//!   `git rev-parse HEAD`).
//! * `--sim-out <path>` — write the simulator tiers (headline: median + IQR
//!   of the 10 s / ~600 qps Online Boutique run; `benches` array adds the
//!   60 s / ~50k qps tier) to their own small JSON file.

use std::time::Instant;

use graf_bench::perf::{median_iqr, BenchRun};

use graf_core::features::FeatureScaler;
use graf_core::latency_model::{LatencyModel, NetKind, TrainConfig};
use graf_core::sample_collector::{Bounds, Sample};
use graf_core::solver::{integer_refine, solve, SolverConfig};
use graf_gnn::{GnnConfig, GraphSpec, LatencyNet, MicroserviceGnn};
use graf_nn::{Adam, AsymmetricHuber, Matrix};
use graf_sim::exec::ShardedWorld;
use graf_sim::rng::DetRng;
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{Completion, SimConfig, World};

/// Runs `f` `reps` times (after `warmup` unmeasured runs) and returns the
/// `(median, IQR)` wall-clock in milliseconds. The IQR is the per-run noise
/// estimate `graf-perf compare` weighs regressions against.
fn time_stats_ms(warmup: usize, reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    for _ in 0..warmup {
        f();
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    median_iqr(&times)
}

fn chain_edges(n: usize) -> Vec<(u16, u16)> {
    (0..n as u16 - 1).map(|i| (i, i + 1)).collect()
}

fn training_batch(n_nodes: usize, batch: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = DetRng::new(seed);
    let x = Matrix::from_fn(batch, n_nodes * 2, |_, _| rng.unit());
    let y = (0..batch).map(|_| rng.uniform(0.2, 3.0)).collect();
    (x, y)
}

/// One optimizer step at Table-1 batch size on an `n`-node chain GNN.
fn bench_train_step(n: usize, threads: usize, warmup: usize, reps: usize) -> (f64, f64) {
    let (x, y) = training_batch(n, 256, 7);
    let mut rng = DetRng::new(1);
    let mut gnn = MicroserviceGnn::new(
        GraphSpec::from_edges(n, &chain_edges(n)),
        GnnConfig::default(),
        &mut rng,
    );
    gnn.set_threads(threads);
    let loss = AsymmetricHuber::default();
    let mut opt = Adam::new(1e-3);
    let mut drop_rng = DetRng::new(2);
    time_stats_ms(warmup, reps, || {
        gnn.train_step(&x, &y, &loss, &mut opt, &mut drop_rng);
    })
}

/// One pass over a 2560-sample dataset (10 × 256 steps): the "train epoch".
fn bench_train_epoch(n: usize, threads: usize, warmup: usize, reps: usize) -> (f64, f64) {
    let (x, y) = training_batch(n, 2560, 8);
    let mut rng = DetRng::new(1);
    let mut gnn = MicroserviceGnn::new(
        GraphSpec::from_edges(n, &chain_edges(n)),
        GnnConfig::default(),
        &mut rng,
    );
    gnn.set_threads(threads);
    let loss = AsymmetricHuber::default();
    let mut opt = Adam::new(1e-3);
    let mut drop_rng = DetRng::new(2);
    time_stats_ms(warmup, reps, || {
        for b in 0..10 {
            let xb = x.slice_rows(b * 256, (b + 1) * 256);
            let yb = &y[b * 256..(b + 1) * 256];
            gnn.train_step(&xb, yb, &loss, &mut opt, &mut drop_rng);
        }
    })
}

/// The solver-bench scenario: a 6-service chain trained on a synthetic convex
/// latency surface (identical to `benches/solver.rs`).
fn solver_model() -> (LatencyModel, Bounds, Vec<f64>) {
    let works = [0.5, 0.2, 0.4, 0.3, 1.0, 0.8];
    let n = works.len();
    let mut rng = DetRng::new(42);
    let mut samples = Vec::new();
    for _ in 0..800 {
        let w = rng.uniform(50.0, 250.0);
        let quotas: Vec<f64> =
            works.iter().map(|wk| rng.uniform(100.0 + wk * 260.0, 2000.0)).collect();
        let mut p99 = 4.0;
        for i in 0..n {
            let head = (quotas[i] - w * works[i]).max(10.0);
            p99 += 600.0 * works[i] / head + works[i];
        }
        samples.push(Sample {
            api_rates: vec![w],
            workloads: vec![w; n],
            quotas_mc: quotas,
            p99_ms: p99,
        });
    }
    let scaler = FeatureScaler::fit(
        samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
    );
    let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
    let split = ds.split(0.8, 0.1, 1);
    let edges = chain_edges(n);
    let mut model = LatencyModel::new(NetKind::Gnn, &edges, n, scaler, split.train.label_mean(), 3);
    model.train(&split, &TrainConfig { epochs: 30, evals: 5, ..Default::default() });
    let bounds =
        Bounds { lower: works.iter().map(|w| 100.0 + w * 260.0).collect(), upper: vec![2000.0; n] };
    (model, bounds, vec![150.0; n])
}

/// The simulator-bench scenario: 10 s of Online Boutique at ~600 qps.
fn bench_sim_10s(warmup: usize, reps: usize) -> (f64, f64) {
    time_stats_ms(warmup, reps, || {
        let topo = graf_apps::online_boutique();
        let mut w = World::new(topo, SimConfig::default(), 9);
        for s in 0..6u16 {
            w.add_instances(ServiceId(s), 4, 250.0, SimTime::ZERO);
        }
        let mut rng = DetRng::new(9 ^ 0x51);
        for (api, rate) in [(0u16, 180.0f64), (1, 180.0), (2, 240.0)] {
            let mut t = 0.0;
            loop {
                t += rng.exp(1e6 / rate);
                if t >= 10e6 {
                    break;
                }
                w.inject(ApiId(api), SimTime(t as u64));
            }
        }
        w.run_until(SimTime::from_secs(10.0));
    })
}

/// The high-rate simulator tier: 60 s of Online Boutique at ~50k qps —
/// ROADMAP item 1's "millions of users" traffic scale. Run like a real
/// experiment: load injected and completions/traces drained in 1 s segments
/// so memory stays bounded, 1 % trace sampling and a 1 ms CPU-checkpoint
/// resolution (production-style observability settings at this rate).
fn bench_sim_50k(warmup: usize, reps: usize) -> (f64, f64) {
    struct ApiLoad {
        api: u16,
        rng: DetRng,
        mean_us: f64,
        next: f64,
    }
    time_stats_ms(warmup, reps, || {
        let topo = graf_apps::online_boutique();
        let cfg = SimConfig {
            trace_sample: 0.01,
            request_timeout_us: None,
            cpu_checkpoint_us: 1_000,
            ..SimConfig::default()
        };
        let mut w = World::new(topo, cfg, 11);
        // Replica counts sized for ~50 % utilization at the offered load.
        for (s, &n) in [50usize, 16, 26, 42, 70, 30].iter().enumerate() {
            w.add_instances(ServiceId(s as u16), n, 1000.0, SimTime::ZERO);
        }
        let mut loads: Vec<ApiLoad> = [(0u16, 15_000.0f64), (1, 15_000.0), (2, 20_000.0)]
            .iter()
            .map(|&(api, rate)| {
                let mut rng = DetRng::new(11 ^ (0x51 + api as u64));
                let mean_us = 1e6 / rate;
                let next = rng.exp(mean_us);
                ApiLoad { api, rng, mean_us, next }
            })
            .collect();
        let mut sink: Vec<Completion> = Vec::new();
        for seg in 1..=60u64 {
            let seg_end = seg as f64 * 1e6;
            for l in &mut loads {
                while l.next < seg_end {
                    w.inject(ApiId(l.api), SimTime(l.next as u64));
                    l.next += l.rng.exp(l.mean_us);
                }
            }
            w.run_until(SimTime(seg * 1_000_000));
            w.drain_completions_into(&mut sink);
            w.traces_mut().drain_finished();
        }
        assert!(w.stats().completed > 2_500_000, "50k tier actually ran");
    })
}

/// The parallel tier of the 10 s scenario: the same boutique run on the
/// sharded executor ([`ShardedWorld`]) with `threads` workers. Sharded mode
/// requires no client timeout and a nonzero child-return delay, so the
/// config differs from the serial tier exactly there (`return_us: 250`, the
/// boutique's fastest hop) — which is why the parallel tiers carry their own
/// bench ids instead of replacing the serial baseline.
fn bench_sim_10s_sharded(threads: usize, warmup: usize, reps: usize) -> (f64, f64) {
    time_stats_ms(warmup, reps, || {
        let topo = graf_apps::online_boutique();
        let cfg = SimConfig { request_timeout_us: None, return_us: 250, ..SimConfig::default() };
        let mut w = ShardedWorld::new(topo, cfg, 9, threads);
        for s in 0..6u16 {
            w.add_instances(ServiceId(s), 4, 250.0, SimTime::ZERO);
        }
        let mut rng = DetRng::new(9 ^ 0x51);
        for (api, rate) in [(0u16, 180.0f64), (1, 180.0), (2, 240.0)] {
            let mut t = 0.0;
            loop {
                t += rng.exp(1e6 / rate);
                if t >= 10e6 {
                    break;
                }
                w.inject(ApiId(api), SimTime(t as u64));
            }
        }
        w.run_until(SimTime::from_secs(10.0));
    })
}

/// The parallel tier of the 50k-qps scenario (segmented draining like the
/// serial tier; completions merge in deterministic order regardless of
/// `threads`).
fn bench_sim_50k_sharded(threads: usize, warmup: usize, reps: usize) -> (f64, f64) {
    struct ApiLoad {
        api: u16,
        rng: DetRng,
        mean_us: f64,
        next: f64,
    }
    time_stats_ms(warmup, reps, || {
        let topo = graf_apps::online_boutique();
        let cfg = SimConfig {
            trace_sample: 0.01,
            request_timeout_us: None,
            cpu_checkpoint_us: 1_000,
            return_us: 250,
            ..SimConfig::default()
        };
        let mut w = ShardedWorld::new(topo, cfg, 11, threads);
        for (s, &n) in [50usize, 16, 26, 42, 70, 30].iter().enumerate() {
            w.add_instances(ServiceId(s as u16), n, 1000.0, SimTime::ZERO);
        }
        let mut loads: Vec<ApiLoad> = [(0u16, 15_000.0f64), (1, 15_000.0), (2, 20_000.0)]
            .iter()
            .map(|&(api, rate)| {
                let mut rng = DetRng::new(11 ^ (0x51 + api as u64));
                let mean_us = 1e6 / rate;
                let next = rng.exp(mean_us);
                ApiLoad { api, rng, mean_us, next }
            })
            .collect();
        let mut sink: Vec<Completion> = Vec::new();
        for seg in 1..=60u64 {
            let seg_end = seg as f64 * 1e6;
            for l in &mut loads {
                while l.next < seg_end {
                    w.inject(ApiId(l.api), SimTime(l.next as u64));
                    l.next += l.rng.exp(l.mean_us);
                }
            }
            w.run_until(SimTime(seg * 1_000_000));
            w.drain_completions_into(&mut sink);
            w.drain_traces();
        }
        assert!(w.stats().completed > 2_500_000, "50k tier actually ran");
    })
}

/// The simulator headline metric's bench id (also the `BENCH_SIM.json` key).
const SIM_BENCH: &str = "sim_boutique_10s_600qps_ms";

/// Bench id of the high-rate tier recorded alongside the headline.
const SIM_BENCH_50K: &str = "sim_boutique_60s_50kqps_ms";

/// Sharded-tier worker counts recorded alongside the serial sim benches.
const SIM_PARALLEL_TIERS: [usize; 3] = [1, 2, 8];

fn measure(smoke: bool, threads: usize) -> Vec<(String, f64, f64)> {
    let (w, r) = if smoke { (1, 3) } else { (3, 15) };
    let mut out = Vec::new();
    let push = |out: &mut Vec<(String, f64, f64)>, k: &str, (med, iqr): (f64, f64)| {
        out.push((k.to_string(), med, iqr));
    };
    eprintln!("measuring training (threads={threads})...");
    push(&mut out, "train_step_gnn6_b256_ms", bench_train_step(6, threads, w, r));
    push(&mut out, "train_step_gnn10_b256_ms", bench_train_step(10, threads, w, r));
    push(
        &mut out,
        "train_epoch_gnn6_2560_ms",
        bench_train_epoch(6, threads, 1, if smoke { 2 } else { 7 }),
    );
    eprintln!("measuring solver...");
    let (mut model, bounds, workloads) = solver_model();
    let cfg = SolverConfig::default();
    push(
        &mut out,
        "solver_solve_6svc_ms",
        time_stats_ms(w, r, || {
            solve(&mut model, &workloads, 40.0, &bounds, &cfg);
        }),
    );
    push(
        &mut out,
        "pilot_tick_6svc_ms",
        time_stats_ms(w, r, || {
            let res = solve(&mut model, &workloads, 40.0, &bounds, &cfg);
            let (_counts, _pred) =
                integer_refine(&model, &workloads, &res.quotas_mc, &bounds, 100.0, 40.0);
            model.predict_ms(&workloads, &res.quotas_mc);
        }),
    );
    eprintln!("measuring simulator...");
    push(&mut out, SIM_BENCH, bench_sim_10s(if smoke { 0 } else { 1 }, if smoke { 2 } else { 5 }));
    eprintln!("measuring simulator (50k qps tier)...");
    push(
        &mut out,
        SIM_BENCH_50K,
        bench_sim_50k(if smoke { 0 } else { 1 }, if smoke { 1 } else { 5 }),
    );
    for t in SIM_PARALLEL_TIERS {
        eprintln!("measuring simulator (sharded, {t} worker(s))...");
        push(
            &mut out,
            &format!("sim_boutique_10s_600qps_p{t}_ms"),
            bench_sim_10s_sharded(t, if smoke { 0 } else { 1 }, if smoke { 2 } else { 5 }),
        );
        push(
            &mut out,
            &format!("sim_boutique_60s_50kqps_p{t}_ms"),
            bench_sim_50k_sharded(t, if smoke { 0 } else { 1 }, if smoke { 1 } else { 3 }),
        );
    }
    out
}

fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string())
}

fn render_section(vals: &[(String, f64)], indent: &str) -> String {
    let body: Vec<String> =
        vals.iter().map(|(k, v)| format!("{indent}  \"{k}\": {v:.4}")).collect();
    format!("{{\n{}\n{indent}}}", body.join(",\n"))
}

/// Pulls `"key": number` pairs out of a named flat JSON object in `text`.
/// Enough of a parser for the file this binary itself writes.
fn parse_section(text: &str, section: &str) -> Vec<(String, f64)> {
    let Some(start) = text.find(&format!("\"{section}\"")) else { return Vec::new() };
    let Some(open) = text[start..].find('{') else { return Vec::new() };
    let body_start = start + open + 1;
    let Some(close) = text[body_start..].find('}') else { return Vec::new() };
    let body = &text[body_start..body_start + close];
    let mut out = Vec::new();
    for pair in body.split(',') {
        let mut it = pair.splitn(2, ':');
        let (Some(k), Some(v)) = (it.next(), it.next()) else { continue };
        let k = k.trim().trim_matches('"').to_string();
        if let Ok(v) = v.trim().parse::<f64>() {
            out.push((k, v));
        }
    }
    out
}

/// The current git HEAD SHA, or `"unknown"` outside a work tree.
fn git_head() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut sim_out_path: Option<String> = None;
    let mut history_path: Option<String> = None;
    let mut rev: Option<String> = None;
    let mut as_baseline = false;
    let mut smoke = false;
    let mut threads = 1usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().expect("--out needs a path")),
            "--sim-out" => sim_out_path = Some(it.next().expect("--sim-out needs a path")),
            "--history" => history_path = Some(it.next().expect("--history needs a path")),
            "--rev" => rev = Some(it.next().expect("--rev needs a string")),
            "--as-baseline" => as_baseline = true,
            "--smoke" => smoke = true,
            "--threads" => {
                threads = it.next().and_then(|v| v.parse().ok()).expect("--threads needs a usize");
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let stats: Vec<(String, f64, f64)> = measure(smoke, threads);
    let fresh: Vec<(String, f64)> = stats.iter().map(|(k, m, _)| (k.clone(), *m)).collect();

    println!("\n{:<34} {:>12} {:>10}", "metric", "median ms", "iqr ms");
    for (k, m, i) in &stats {
        println!("{k:<34} {m:>12.4} {i:>10.4}");
    }

    if let Some(path) = &history_path {
        let rev = rev.unwrap_or_else(git_head);
        let mode = if smoke { "smoke" } else { "full" };
        let mut lines = String::new();
        for (k, m, i) in &stats {
            let run = BenchRun {
                rev: rev.clone(),
                bench: k.clone(),
                median_ms: *m,
                iqr_ms: *i,
                mode: mode.to_string(),
            };
            lines.push_str(&run.to_json());
            lines.push('\n');
        }
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("opening {path}: {e}"));
        f.write_all(lines.as_bytes()).unwrap_or_else(|e| panic!("appending to {path}: {e}"));
        println!(
            "\nappended {} run(s) for rev {} to {path}",
            stats.len(),
            &rev[..rev.len().min(12)]
        );
    }

    if let Some(path) = &sim_out_path {
        let mode = if smoke { "smoke" } else { "full" };
        assert!(
            stats.iter().any(|(k, _, _)| k == SIM_BENCH),
            "headline bench {SIM_BENCH} was not measured"
        );
        // The top level is a named *pointer* into `benches` — the headline
        // tier's numbers exist exactly once, so pointer and entry can never
        // drift apart (readers: `graf_bench::perf::parse_bench_sim`).
        let entries: Vec<String> = stats
            .iter()
            .filter(|(k, _, _)| k.starts_with("sim_"))
            .map(|(k, em, ei)| {
                format!(
                    "    {{ \"bench\": \"{k}\", \"median_ms\": {em:.4}, \"iqr_ms\": {ei:.4}, \"mode\": \"{mode}\" }}"
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"headline\": \"{SIM_BENCH}\",\n  \"benches\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("simulator tiers written to {path}");
    }

    let Some(path) = out_path else {
        println!("\n(no --out given; compute summary not written)");
        return;
    };
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let baseline = if as_baseline {
        fresh.clone()
    } else {
        let b = parse_section(&existing, "baseline");
        if b.is_empty() {
            fresh.clone()
        } else {
            b
        }
    };

    let mut speedups = Vec::new();
    for (k, cur) in &fresh {
        if let Some((_, base)) = baseline.iter().find(|(bk, _)| bk == k) {
            if *cur > 0.0 {
                speedups.push((format!("{k}_x"), base / cur));
            }
        }
    }
    println!();
    for (k, x) in &speedups {
        println!("{k:<34} {x:>11.2}x");
    }

    let json = format!(
        "{{\n  \"machine\": {{\n    \"cpu_model\": \"{}\",\n    \"cpus\": {},\n    \"os\": \"{} {}\",\n    \"threads_flag\": {}\n  }},\n  \"baseline\": {},\n  \"current\": {},\n  \"speedup_vs_baseline\": {}\n}}\n",
        cpu_model(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        std::env::consts::OS,
        std::env::consts::ARCH,
        threads,
        render_section(&baseline, "  "),
        render_section(&fresh, "  "),
        render_section(&speedups, "  "),
    );
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwritten to {path}");
}
