//! Figures 21 & 22: GRAF vs the Kubernetes HPA vs a FIRM-like scaler when
//! Locust doubles its user population (§5.3, *Handling traffic surge*).
//!
//! The paper surges from 250 to 500 Locust threads against Online Boutique
//! and reports (a) the total-instance timelines — GRAF creates the required
//! instances concurrently at ~50 s while the others ramp — and (b) the time
//! for end-to-end tail latency to converge, GRAF being up to 2.6× faster
//! with 13–60 % fewer instances.
//!
//! Our user counts are scaled to this reproduction's operating point (the
//! apps' CPU demands differ from the real deployments); the shape under test
//! is who converges faster and with how many instances.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig21_22_surge_comparison
//! # with telemetry (JSONL event log + summary table):
//! cargo run --release -p graf-bench --bin fig21_22_surge_comparison -- --telemetry /tmp/surge.jsonl
//! ```

use graf_apps::online_boutique;
use graf_bench::standard::{boutique_setup, build_graf_observed};
use graf_bench::timeline::{convergence_time_s, run_with_timeline, TimelinePoint};
use graf_bench::Args;
use graf_loadgen::ClosedLoop;
use graf_orchestrator::{
    Autoscaler, Cluster, CreationModel, Deployment, FirmLike, HpaConfig, KubernetesHpa,
};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{SimConfig, World};

const WARMUP_S: f64 = 360.0;
const RUN_S: f64 = 300.0;

fn users_loadgen(before: usize, after: usize, seed: u64) -> ClosedLoop {
    ClosedLoop::with_mix(vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)], before, seed)
        .users_at(SimTime::from_secs(WARMUP_S), after)
}

fn run(
    scaler: &mut dyn Autoscaler,
    before: usize,
    after: usize,
    unit: f64,
    seed: u64,
    obs: &graf_obs::Obs,
) -> Vec<TimelinePoint> {
    let topo = online_boutique();
    let world = World::new(topo.clone(), SimConfig::default(), seed);
    let deployments =
        (0..topo.num_services()).map(|s| Deployment::new(ServiceId(s as u16), unit, 4)).collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    cluster.set_obs(obs.clone());
    let mut users = users_loadgen(before, after, seed ^ 0x21);
    let (tl, _) = run_with_timeline(
        &mut cluster,
        &mut users,
        scaler,
        SimTime::from_secs(WARMUP_S + RUN_S),
        SimDuration::from_secs(5.0),
    );
    tl
}

fn main() {
    let args = Args::parse();
    let obs = args.obs();
    let setup = boutique_setup();
    println!("# Figures 21 & 22 — surge handling: GRAF vs HPA vs FIRM-like");
    println!("training GRAF...");
    let graf = build_graf_observed(&setup, &args, &obs);
    println!("trained: {} samples, best val loss {:.4}", graf.samples.len(), graf.report.best_val);

    // User populations scaled to the trained operating point: ~600 qps total
    // ≈ 1500 users at ≤5 s think time.
    for (before, after) in [(750usize, 1500usize), (1500, 3000)] {
        println!("\n## Surge {before} → {after} users at t=0 (relative to surge)");
        let mut results: Vec<(&str, Vec<TimelinePoint>)> = Vec::new();

        let mut graf_ctrl = graf.controller(setup.slo_ms);
        graf_ctrl.set_obs(obs.clone());
        results
            .push(("GRAF", run(&mut graf_ctrl, before, after, setup.cpu_unit_mc, args.seed, &obs)));

        let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
        results.push(("K8s", run(&mut hpa, before, after, setup.cpu_unit_mc, args.seed, &obs)));

        let mut firm = FirmLike {
            latency_ceiling: SimDuration::from_millis(setup.slo_ms * 1.5),
            ..FirmLike::default()
        };
        results
            .push(("FIRM-like", run(&mut firm, before, after, setup.cpu_unit_mc, args.seed, &obs)));

        println!("### Figure 22 row: time to converge p99 ≤ {} ms (hold 4 samples)", setup.slo_ms);
        for (name, tl) in &results {
            let conv = convergence_time_s(tl, WARMUP_S, setup.slo_ms, 4);
            let final_inst = tl.last().map_or(0, |p| p.total_instances);
            let peak_inst = tl
                .iter()
                .filter(|p| p.t_s >= WARMUP_S)
                .map(|p| p.total_instances)
                .max()
                .unwrap_or(0);
            println!(
                "{name:>10}: converge {}, final instances {final_inst}, peak {peak_inst}",
                conv.map_or("never".to_string(), |t| format!("{t:.0} s")),
            );
        }

        println!("### Figure 21 series (total instances; t relative to surge)");
        println!("t_s,graf,k8s,firm");
        let len = results.iter().map(|(_, tl)| tl.len()).min().unwrap_or(0);
        for i in 0..len {
            let t = results[0].1[i].t_s;
            if t < WARMUP_S - 30.0 {
                continue;
            }
            print!("{:.0}", t - WARMUP_S);
            for (_, tl) in &results {
                print!(",{}", tl[i].total_instances);
            }
            println!();
        }
    }
    args.finish_telemetry(&obs);
}
