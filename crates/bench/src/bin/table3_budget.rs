//! Table 3: expected AWS budget for sample collection and model training.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin table3_budget
//! ```

use graf_bench::pricing::{budget_table, budget_total};

fn main() {
    println!("# Table 3 — Expected budget for 50k samples + training (Online Boutique)");
    println!("{:<16} {:<18} {:>9} {:>10}", "Module", "AWS EC2 Instance", "Time (h)", "Budget ($)");
    let rows = budget_table(50_000, 15.0, 16.0);
    for r in &rows {
        println!("{:<16} {:<18} {:>9.1} {:>10.2}", r.module, r.instance, r.hours, r.dollars);
    }
    println!("{:<16} {:<18} {:>9} {:>10.2}", "Total", "", "", budget_total(&rows));
    println!();
    println!(
        "(paper: 208.3 h / $20.83, 208.3 h / $82.92, 16 h / $8.42 — total $112.17; \
         sample collection parallelizes at constant cost)"
    );
}
