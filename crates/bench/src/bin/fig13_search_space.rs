//! Figure 13 and the §5.1 search-space statistic: Algorithm 1's reduced
//! per-microservice quota ranges versus the original search space.
//!
//! The paper reports the Online Boutique exploration shrinking to 0.00027×
//! the original volume.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig13_search_space
//! ```

use graf_bench::standard::{boutique_setup, sampling_config, social_setup, AppSetup};
use graf_bench::Args;
use graf_core::sample_collector::SampleCollector;

fn evaluate(setup: &AppSetup, args: &Args) {
    println!("\n## {}", setup.topo.name);
    let cfg = sampling_config(setup, args);
    let (min_q, max_q) = (cfg.min_quota_mc, cfg.abundant_quota_mc);
    let collector = SampleCollector::new(setup.topo.clone(), cfg);
    let bounds = collector.reduce_search_space();
    println!(
        "{:<20} {:>10} {:>10} {:>22}",
        "service", "lower_mc", "upper_mc", "original range (mc)"
    );
    for (i, svc) in setup.topo.services.iter().enumerate() {
        println!(
            "{:<20} {:>10.0} {:>10.0} {:>14.0}..{:.0}",
            format!("MS{} {}", i + 1, svc.name),
            bounds.lower[i],
            bounds.upper[i],
            min_q,
            max_q
        );
    }
    println!(
        "search-space volume: {:.2e}× the original (paper, Online Boutique: 2.7e-4×)",
        bounds.volume_reduction(min_q, max_q)
    );
}

fn main() {
    let args = Args::parse();
    println!("# Figure 13 — Algorithm-1 reduced search space");
    evaluate(&boutique_setup(), &args);
    evaluate(&social_setup(), &args);
}
