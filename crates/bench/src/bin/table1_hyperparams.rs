//! Table 1: latency-prediction-model training hyper-parameters.
//!
//! Prints both the paper's published values and this reproduction's
//! CPU-scale defaults (`--paper-scale` restores the published iteration
//! budget in the other binaries).
//!
//! ```sh
//! cargo run --release -p graf-bench --bin table1_hyperparams
//! ```

use graf_core::TrainConfig;
use graf_gnn::GnnConfig;

fn main() {
    let paper = TrainConfig::paper();
    let ours = TrainConfig::default();
    let arch = GnnConfig::default();

    println!("# Table 1 — Latency Prediction Model training parameters");
    println!("{:<28} {:>14} {:>18}", "parameter", "paper", "repro default");
    println!("{:<28} {:>14} {:>18}", "optimizer iterations", "7e4", "epochs-based");
    println!("{:<28} {:>14} {:>18}", "epochs", paper.epochs, ours.epochs);
    println!("{:<28} {:>14} {:>18}", "batch size", 256, ours.batch_size);
    println!("{:<28} {:>14} {:>18}", "learning rate", "2e-4", format!("{:.0e}", ours.lr));
    println!("{:<28} {:>14} {:>18}", "dropout", 0.25, arch.dropout);
    println!("{:<28} {:>14} {:>18}", "asym. hüber θ_L", 0.1, ours.theta_l);
    println!("{:<28} {:>14} {:>18}", "asym. hüber θ_R", 0.3, ours.theta_r);
    println!();
    println!("# Architecture (§4)");
    println!("MPNN φ/γ: 2 hidden layers × {} units, ReLU", arch.hidden);
    println!("message dim {}, embedding dim {}", arch.msg_dim, arch.embed_dim);
    println!(
        "readout: 2 hidden layers × {} units, ReLU, dropout on all but last",
        arch.readout_hidden
    );
    println!("node features: (workload, CPU quota) = {} per node", arch.feature_dim);
}
