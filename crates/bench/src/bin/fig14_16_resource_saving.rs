//! Figures 14, 15 & 16: steady-state CPU totals and per-microservice quotas,
//! GRAF vs the fine-tuned Kubernetes autoscaler (§5.3, *Resource saving*).
//!
//! The paper hand-tunes one global HPA utilization threshold per application
//! to meet the latency SLO, then reports that GRAF achieves the same tail
//! latency with 14–19 % less total CPU, by shifting quota toward
//! latency-sensitive microservices.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig14_16_resource_saving
//! ```

use graf_bench::standard::{boutique_setup, build_graf, social_setup, AppSetup};
use graf_bench::Args;
use graf_core::baseline::{run_steady, tune_hpa_threshold, SteadyTrial};
use graf_core::GrafControllerConfig;

fn evaluate(setup: &AppSetup, args: &Args) {
    println!("\n## {} (SLO {} ms p99)", setup.topo.name, setup.slo_ms);
    println!("training GRAF...");
    let graf = build_graf(setup, args);
    println!(
        "trained on {} samples; Algorithm-1 box: lower {:?}, upper {:?}",
        graf.samples.len(),
        graf.bounds.lower.iter().map(|v| v.round()).collect::<Vec<_>>(),
        graf.bounds.upper.iter().map(|v| v.round()).collect::<Vec<_>>(),
    );

    // Generous initial replicas avoid a cold-start backlog polluting warm-up.
    let trial = SteadyTrial::new(setup.topo.clone(), setup.probe_qps.clone()).initial_replicas(6);

    let mut graf_ctrl = graf.controller(setup.slo_ms);
    let graf_out = run_steady(&trial, &mut graf_ctrl);

    // §6 extension: eq.-7 ceil replaced by greedy integer refinement.
    let mut graf_ref_ctrl = graf.controller_with(GrafControllerConfig {
        slo_ms: setup.slo_ms,
        train_total_qps: graf.train_total_qps(),
        integer_refine: true,
        ..Default::default()
    });
    let graf_ref_out = run_steady(&trial, &mut graf_ref_ctrl);

    // The paper hand-tunes the threshold; 10%-step granularity.
    let grid: Vec<f64> = (1..=9).map(|i| 0.05 + 0.1 * (9 - i) as f64).collect();
    let (thr, hpa_out) = tune_hpa_threshold(&trial, setup.slo_ms, &grid);

    println!("\n### Figure 14 row (total CPU quota, millicores)");
    println!(
        "GRAF: {:.0} mc (p99 {:.0} ms, {} timeouts) | K8s@{:.2}: {:.0} mc (p99 {:.0} ms, {} timeouts)",
        graf_out.mean_quota_mc,
        graf_out.p99_ms.unwrap_or(f64::NAN),
        graf_out.timeouts,
        thr,
        hpa_out.mean_quota_mc,
        hpa_out.p99_ms.unwrap_or(f64::NAN),
        hpa_out.timeouts,
    );
    let saving = 1.0 - graf_out.mean_quota_mc / hpa_out.mean_quota_mc;
    println!("GRAF saves {:.1}% total CPU (paper: 14-19%)", saving * 100.0);
    println!(
        "GRAF+integer-refinement (§6): {:.0} mc (p99 {:.0} ms, {} timeouts) → saves {:.1}%",
        graf_ref_out.mean_quota_mc,
        graf_ref_out.p99_ms.unwrap_or(f64::NAN),
        graf_ref_out.timeouts,
        100.0 * (1.0 - graf_ref_out.mean_quota_mc / hpa_out.mean_quota_mc)
    );

    println!("\n### Figures 15/16 rows (per-microservice CPU quota, millicores)");
    println!("{:<18} {:>8} {:>8}", "service", "GRAF", "K8s");
    for (i, svc) in setup.topo.services.iter().enumerate() {
        println!(
            "{:<18} {:>8.0} {:>8.0}",
            format!("MS{} {}", i + 1, svc.name),
            graf_out.per_service_quota_mc[i],
            hpa_out.per_service_quota_mc[i],
        );
    }
}

fn main() {
    let args = Args::parse();
    println!("# Figures 14/15/16 — resource saving at equal SLO");
    evaluate(&boutique_setup(), &args);
    evaluate(&social_setup(), &args);
}
