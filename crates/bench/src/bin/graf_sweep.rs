//! `graf-sweep` — the sharded scenario-sweep fleet.
//!
//! ```text
//! graf-sweep run --grid <spec|@preset> [--workers N] [--seed U64] [--out PATH]
//!                [--log-dir DIR] [--quick] [--samples N] [--threads N]
//!                [--sim-threads N] [--history PATH] [--rev REV]
//! graf-sweep compare <revA> <revB> [--history PATH] [--gate METRIC]
//!                [--threshold PCT] [--strict]
//! ```
//!
//! `--sim-threads N` sets the sharded-simulation worker count for ablation
//! cells (grids with a `tier` axis, e.g. `@parsim`) that don't pin a
//! `simthreads` axis value; results are bit-identical for any value.
//!
//! `run` expands a declarative grid (`app=boutique;slo=60,90;policy=graf,hpa`
//! or a preset like `@smoke`) into cells, derives each cell's seed from
//! `(grid seed, cell key)`, shards cells across worker threads, and merges
//! the per-worker JSONL streams into one ordered report — byte-identical for
//! any `--workers` value. Failing cells become error records and the sweep
//! keeps going; the exit code is nonzero at the end if any cell failed.
//!
//! `compare` diffs two revisions' sweeps recorded in a history file (written
//! by `run --history --rev`), gating on one metric (default `p99_ms`,
//! higher-is-worse). Missing cells are warned loudly on stderr; `--strict`
//! turns a cell-coverage mismatch into a failure when both revisions have
//! history.

use std::path::PathBuf;
use std::process::Command;

use graf_bench::sweepgrid::{resolve_grid, CellRunner, SweepScale};
use graf_sweep::{
    aggregate, compare, record, render_compare, render_table, run_sweep, CellRecord, SweepConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: graf-sweep run --grid <spec|@preset> [--workers N] [--seed U64] [--out PATH]\n\
         \x20                  [--log-dir DIR] [--quick] [--samples N] [--threads N]\n\
         \x20                  [--sim-threads N] [--history PATH] [--rev REV]\n\
         \x20      graf-sweep compare <revA> <revB> [--history PATH] [--gate METRIC]\n\
         \x20                  [--threshold PCT] [--strict]"
    );
    std::process::exit(2);
}

/// Resolves a symbolic revision to a full SHA via `git rev-parse`, falling
/// back to the literal input (so synthetic histories work without git).
fn resolve_rev(rev: &str) -> String {
    let out = Command::new("git").args(["rev-parse", &format!("{rev}^{{commit}}")]).output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => rev.to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) {
    let mut grid_spec: Option<String> = None;
    let mut workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let mut seed = 7u64;
    let mut out: Option<PathBuf> = None;
    let mut log_dir: Option<PathBuf> = None;
    let mut scale = SweepScale::default();
    let mut history: Option<PathBuf> = None;
    let mut rev: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--grid" => grid_spec = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--out" => out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--log-dir" => log_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--quick" => scale.quick = true,
            "--samples" => {
                scale.samples =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--threads" => {
                scale.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--sim-threads" => {
                scale.sim_threads =
                    Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--history" => history = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--rev" => rev = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    let Some(grid_spec) = grid_spec else { usage() };
    let grid = resolve_grid(&grid_spec).unwrap_or_else(|e| {
        eprintln!("graf-sweep: {e}");
        std::process::exit(2);
    });

    if let Some(dir) = &log_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("graf-sweep: cannot create log dir {}: {e}", dir.display());
            std::process::exit(2);
        });
    }

    println!(
        "graf-sweep run  grid={grid_spec}  cells={}  workers={workers}  seed={seed}{}",
        grid.num_cells(),
        if scale.quick { "  (quick)" } else { "" }
    );

    let cfg = SweepConfig { workers, grid_seed: seed, worker_log_dir: log_dir.clone() };
    let reports = run_sweep(&grid, &cfg, |_worker| {
        let mut runner = CellRunner::new(seed, scale.clone());
        move |cell: &graf_sweep::Cell, cell_seed: u64| runner.run_cell(cell, cell_seed)
    });

    let records: Vec<CellRecord> = reports.into_iter().flat_map(|r| r.records).collect();
    let failed: Vec<&CellRecord> = records.iter().filter(|r| r.error.is_some()).collect();
    for r in &failed {
        eprintln!(
            "graf-sweep: cell {} FAILED: {}",
            r.cell,
            r.error.as_deref().unwrap_or("unknown")
        );
    }

    let aggregated = aggregate(records.clone()).unwrap_or_else(|e| {
        eprintln!("graf-sweep: aggregation failed: {e}");
        std::process::exit(1);
    });
    if let Some(path) = &out {
        std::fs::write(path, &aggregated).unwrap_or_else(|e| {
            eprintln!("graf-sweep: cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("aggregated report written to {}", path.display());
    }

    println!("\n{}", render_table(&records));

    if let Some(path) = &history {
        let full_rev = rev.map(|r| resolve_rev(&r)).unwrap_or_else(|| resolve_rev("HEAD"));
        let mut sink = graf_obs::JsonlSink::append(path).unwrap_or_else(|e| {
            eprintln!("graf-sweep: cannot append to {}: {e}", path.display());
            std::process::exit(1);
        });
        for r in &records {
            let mut tagged = (*r).clone();
            tagged.rev = Some(full_rev.clone());
            sink.record(&tagged.to_json()).unwrap_or_else(|e| {
                eprintln!("graf-sweep: writing history: {e}");
                std::process::exit(1);
            });
        }
        sink.finish().unwrap_or_else(|e| {
            eprintln!("graf-sweep: flushing history: {e}");
            std::process::exit(1);
        });
        println!("{} record(s) appended to {} as rev {full_rev}", records.len(), path.display());
    }

    if !failed.is_empty() {
        eprintln!("graf-sweep: {}/{} cell(s) failed", failed.len(), records.len());
        std::process::exit(1);
    }
}

fn cmd_compare(args: &[String]) {
    let mut rev_a: Option<String> = None;
    let mut rev_b: Option<String> = None;
    let mut history_path = "SWEEP_HISTORY.jsonl".to_string();
    let mut gate = "p99_ms".to_string();
    let mut threshold = 10.0f64;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--history" => history_path = it.next().unwrap_or_else(|| usage()).clone(),
            "--gate" => gate = it.next().unwrap_or_else(|| usage()).clone(),
            "--threshold" => {
                threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--strict" => strict = true,
            other if rev_a.is_none() => rev_a = Some(other.to_string()),
            other if rev_b.is_none() => rev_b = Some(other.to_string()),
            _ => usage(),
        }
    }
    let (Some(rev_a), Some(rev_b)) = (rev_a, rev_b) else { usage() };

    let Ok(text) = std::fs::read_to_string(&history_path) else {
        println!("graf-sweep: no history at {history_path}; nothing to compare (ok)");
        return;
    };
    let (history, skipped) = record::parse_history(&text);
    if skipped > 0 {
        eprintln!("graf-sweep: skipped {skipped} unparseable history line(s)");
    }

    let full_a = resolve_rev(&rev_a);
    let full_b = resolve_rev(&rev_b);
    let short = |s: &str| if s.len() > 12 { s[..12].to_string() } else { s.to_string() };
    println!(
        "graf-sweep compare  base={} ({})  new={} ({})  gate={gate}  threshold={threshold}%",
        rev_a,
        short(&full_a),
        rev_b,
        short(&full_b)
    );

    let report = compare(&history, &full_a, &full_b, &gate, threshold);
    print!("{}", render_compare(&report, &gate));

    let matches = |rev: &str| {
        history.iter().any(|r| {
            r.rev.as_deref().is_some_and(|rr| rr == rev || (rev.len() >= 7 && rr.starts_with(rev)))
        })
    };
    let (have_a, have_b) = (matches(&full_a), matches(&full_b));
    if report.rows.is_empty() && !report.has_coverage_gaps() {
        println!(
            "(base history: {}, new history: {}); nothing to gate (ok)",
            if have_a { "yes" } else { "none" },
            if have_b { "yes" } else { "none" }
        );
    }
    if report.has_coverage_gaps() {
        eprintln!(
            "graf-sweep: WARNING: cell coverage differs between revisions \
             ({} only at base, {} only at new)",
            report.only_base.len(),
            report.only_new.len()
        );
    }

    let mut fail = false;
    if report.has_regressions() {
        let n = report
            .rows
            .iter()
            .filter(|(_, v)| matches!(v, graf_sweep::CellVerdict::Regressed { .. }))
            .count();
        eprintln!("graf-sweep: {n} cell(s) regressed beyond {threshold}% on {gate}");
        fail = true;
    }
    if strict && have_a && have_b && report.has_coverage_gaps() {
        eprintln!("graf-sweep: --strict: differing cell sets are a failure");
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
    println!("graf-sweep: no regressions beyond {threshold}% on {gate}");
}
