//! Figure 18: total instances and instances saved by GRAF across simulated
//! user counts (§5.2, *Scaling workload*).
//!
//! The paper varies Locust's simulated users from 500 to 3000 and shows GRAF
//! matching the tuned HPA's tail latency while the number of saved instances
//! grows proportionally with workload. The HPA threshold is tuned once (at
//! the mid-range point) and reused — the paper's single global threshold.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig18_user_scaling
//! ```

use graf_bench::standard::{boutique_setup, build_graf};
use graf_bench::timeline::{percentile_between, run_with_timeline, window_summary};
use graf_bench::Args;
use graf_core::baseline::{hpa_with_threshold, tune_hpa_threshold, SteadyTrial};
use graf_loadgen::ClosedLoop;
use graf_orchestrator::{Autoscaler, Cluster, CreationModel, Deployment};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{SimConfig, World};

const WARMUP_S: f64 = 420.0;
const MEASURE_S: f64 = 180.0;

fn run_users(
    scaler: &mut dyn Autoscaler,
    users: usize,
    unit: f64,
    seed: u64,
) -> (f64, Option<f64>) {
    let topo = graf_apps::online_boutique();
    let world = World::new(topo.clone(), SimConfig::default(), seed);
    // Start near the expected footprint to keep warm-up clean.
    let initial = (users / 120).clamp(2, 60);
    let deployments = (0..topo.num_services())
        .map(|s| Deployment::new(ServiceId(s as u16), unit, initial))
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    let mut load = ClosedLoop::with_mix(
        vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)],
        users,
        seed ^ 0x18,
    );
    let end = WARMUP_S + MEASURE_S;
    let (tl, comps) = run_with_timeline(
        &mut cluster,
        &mut load,
        scaler,
        SimTime::from_secs(end),
        SimDuration::from_secs(5.0),
    );
    let summary = window_summary(&tl, &comps, WARMUP_S, end);
    let p99 = percentile_between(&comps, WARMUP_S, end, 0.99);
    (summary.mean_instances, p99)
}

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    println!("# Figure 18 — instances vs simulated users (Online Boutique)");
    println!("training GRAF...");
    let graf = build_graf(&setup, &args);

    // Tune the HPA once at the standard operating point (~1500 users worth
    // of open-loop traffic), as the paper tunes one global threshold.
    let trial = SteadyTrial::new(setup.topo.clone(), setup.probe_qps.clone()).initial_replicas(6);
    // The paper hand-tunes the threshold; 10%-step granularity.
    let grid: Vec<f64> = (1..=9).map(|i| 0.05 + 0.1 * (9 - i) as f64).collect();
    let (thr, _) = tune_hpa_threshold(&trial, setup.slo_ms, &grid);
    println!("HPA threshold tuned once: {thr:.2}");

    println!("\nusers,graf_instances,k8s_instances,saved,graf_p99_ms,k8s_p99_ms");
    for users in [500usize, 1000, 1500, 2000, 2500, 3000] {
        let mut graf_ctrl = graf.controller(setup.slo_ms);
        let (graf_inst, graf_p99) = run_users(&mut graf_ctrl, users, setup.cpu_unit_mc, args.seed);
        let mut hpa = hpa_with_threshold(thr, 6);
        let (hpa_inst, hpa_p99) = run_users(&mut hpa, users, setup.cpu_unit_mc, args.seed);
        println!(
            "{users},{graf_inst:.1},{hpa_inst:.1},{:.1},{:.0},{:.0}",
            hpa_inst - graf_inst,
            graf_p99.unwrap_or(f64::NAN),
            hpa_p99.unwrap_or(f64::NAN),
        );
    }
    println!("\n(paper: saved instances grow with users while tail latency matches)");
}
