//! Ablation of the §6 "Integer Optimization" extension: plain eq.-7 `ceil`
//! rounding vs the greedy model-checked integer refinement.
//!
//! The paper notes its rounding "is overprovisioning resources in every
//! microservices, yet bounded by the CPU resource unit for an instance" and
//! that integer optimization has "slight improvement room". This measures
//! that room: instances/quota saved by refinement at equal SLO, and whether
//! the refined configuration still meets the SLO when actually deployed.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin ablation_integer
//! ```

use graf_bench::standard::{boutique_setup, build_graf, sampling_config};
use graf_bench::Args;
use graf_core::sample_collector::SampleCollector;
use graf_core::solver::integer_refine;

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    println!("# Integer-refinement ablation (Online Boutique, SLO {} ms)", setup.slo_ms);
    println!("training GRAF...");
    let graf = build_graf(&setup, &args);
    let validator = SampleCollector::new(setup.topo.clone(), sampling_config(&setup, &args));
    let unit = setup.cpu_unit_mc;

    println!(
        "\n{:>5} {:>12} {:>12} {:>8} {:>14} {:>14}",
        "mult", "ceil_inst", "refined_inst", "saved", "ceil_p99", "refined_p99"
    );
    let mut ctrl = graf.controller(setup.slo_ms);
    for mult in [0.5, 0.75, 1.0] {
        let rates: Vec<f64> = setup.probe_qps.iter().map(|q| q * mult).collect();
        let (quotas, res, workloads, _s) = ctrl.plan_detailed(&rates);
        let ceil_counts: Vec<usize> =
            quotas.iter().map(|q| (q / unit).ceil().max(1.0) as usize).collect();
        let (refined, _pred) = integer_refine(
            &graf.model,
            &workloads,
            &res.quotas_mc,
            &graf.bounds,
            unit,
            setup.slo_ms,
        );
        let deploy =
            |counts: &[usize]| -> Vec<f64> { counts.iter().map(|&k| k as f64 * unit).collect() };
        let (ceil_out, _) = validator.measure(
            &deploy(&ceil_counts),
            &rates,
            args.seed ^ (mult * 100.0) as u64,
            false,
        );
        let (ref_out, _) = validator.measure(
            &deploy(&refined),
            &rates,
            args.seed ^ (mult * 100.0) as u64 ^ 1,
            false,
        );
        let tc: usize = ceil_counts.iter().sum();
        let tr: usize = refined.iter().sum();
        println!(
            "{mult:>5.2} {tc:>12} {tr:>12} {:>8} {:>14.1} {:>14.1}",
            tc - tr,
            ceil_out.e2e_tail_ms.unwrap_or(f64::NAN),
            ref_out.e2e_tail_ms.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\n(refinement strips whole instances the model judges unnecessary; \
         the measured p99 shows whether it cut into the SLO)"
    );
}
