//! Figure 6: per-microservice median latency as a function of CPU quota.
//!
//! The paper plots Robot Shop's Catalogue vs Web: Catalogue's curve is much
//! sharper, which is the §2.2 argument for shifting CPU toward
//! latency-sensitive services. This binary sweeps one service's quota while
//! the rest stay abundant and reports that service's p50.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig06_latency_curves
//! ```

use graf_apps::{online_boutique, robot_shop};
use graf_bench::Args;
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiId, AppTopology, ServiceId};
use graf_sim::world::{SimConfig, World};

/// Measures one service's p50 with the rest of the app well provisioned.
fn p50_at(
    topo: &AppTopology,
    service: usize,
    quota_mc: f64,
    rates: &[f64],
    seed: u64,
) -> Option<f64> {
    let mut quotas = vec![4000.0; topo.num_services()];
    quotas[service] = quota_mc;
    // Single-instance deployment so the quota–latency relation is direct.
    let mut world = World::new(topo.clone(), SimConfig::default(), seed);
    for (s, &q) in quotas.iter().enumerate() {
        world.add_instances(ServiceId(s as u16), 1, q, SimTime::ZERO);
    }
    let mut rng = graf_sim::rng::DetRng::new(seed ^ 0xF16);
    for (api, &rate) in rates.iter().enumerate() {
        if rate <= 0.0 {
            continue;
        }
        let mut t = 0.0f64;
        loop {
            t += rng.exp(1e6 / rate);
            if t >= 11e6 {
                break;
            }
            world.inject(ApiId(api as u16), SimTime(t as u64));
        }
    }
    world.run_until(SimTime::from_secs(11.0));
    world.service_percentile(ServiceId(service as u16), 8, 0.5).map(|d| d.as_millis_f64())
}

fn sweep(topo: &AppTopology, services: &[usize], rates: &[f64], seed: u64) {
    let quotas: Vec<f64> =
        vec![60.0, 80.0, 100.0, 150.0, 200.0, 300.0, 500.0, 750.0, 1000.0, 1500.0];
    print!("quota_mc");
    for &s in services {
        print!(",{}", topo.services[s].name);
    }
    println!();
    for &q in &quotas {
        print!("{q:.0}");
        for &s in services {
            match p50_at(topo, s, q, rates, seed) {
                Some(ms) => print!(",{ms:.2}"),
                None => print!(","),
            }
        }
        println!();
    }
}

fn main() {
    let args = Args::parse();
    println!("# Figure 6 — p50 latency vs CPU quota (one service varied at a time)");
    println!("## Robot Shop (paper's Catalogue vs Web)");
    let rs = robot_shop();
    sweep(&rs, &[0, 1], &[120.0, 40.0, 40.0], args.seed);
    println!("## Online Boutique (all six controlled services)");
    let ob = online_boutique();
    sweep(&ob, &[0, 1, 2, 3, 4, 5], &[180.0, 180.0, 240.0], args.seed);
}
