//! Chaos matrix: every fault class × degradation policy under a traffic
//! surge (EXPERIMENTS.md §7).
//!
//! Each cell replays the Fig-21-style surge scenario on a three-service
//! chain while `graf-chaos` injects one fault class over a window that
//! brackets the surge, and the controller runs under one of two policies:
//!
//! * **ladder** — [`ResilientController`] with the full degradation ladder
//!   (full solve → last-good plan → HPA fallback → freeze, with hysteresis
//!   and trace-gap interpolation),
//! * **freeze** — the naive strawman that freezes on *any* unhealthy signal
//!   and resumes only when every signal recovers.
//!
//! Reported per cell: post-surge p99, time for p99 to reconverge under the
//! SLO, final/peak instances and degradation transitions. The run is
//! bit-deterministic per seed; the same seed always yields the same table.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin chaos_matrix
//! # one fault class only:
//! cargo run --release -p graf-bench --bin chaos_matrix -- --chaos trace_drop
//! # per-cell decision audit trails + a self-profile of the control loop:
//! cargo run --release -p graf-bench --bin chaos_matrix -- --audit results/audit.jsonl --profile
//! ```

use std::path::{Path, PathBuf};

use graf_bench::timeline::{convergence_time_s, percentile_between, run_with_timeline};
use graf_bench::Args;
use graf_chaos::{ChaosSchedule, FaultKind};
use graf_core::{
    AuditTrail, Graf, GrafBuildConfig, PolicyMode, ResilientConfig, ResilientController,
    SamplingConfig, TrainConfig,
};
use graf_loadgen::ClosedLoop;
use graf_obs::FlightRecorder;
use graf_orchestrator::{Cluster, CreationModel, Deployment};
use graf_prof::Prof;
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf_sim::world::{SimConfig, World};

const SLO_MS: f64 = 60.0;
const UNIT_MC: f64 = 500.0;
/// Surge fires here; the controller has warmed up and planned by then.
const SURGE_S: f64 = 120.0;
const END_S: f64 = 420.0;
/// Fault window bracketing the surge.
const FAULT_FROM_S: f64 = 90.0;
const FAULT_UNTIL_S: f64 = 240.0;

/// gateway → auth → backend chain (front-loaded light, back-loaded heavy).
fn chain3() -> AppTopology {
    AppTopology::new(
        "chain3",
        vec![
            ServiceSpec::new("gateway", 1.0, 400),
            ServiceSpec::new("auth", 2.0, 300),
            ServiceSpec::new("backend", 4.0, 500),
        ],
        vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1).call(CallNode::new(2))))],
    )
}

/// The canonical fault catalog, with `latency_spike` pointed at the chain's
/// hottest service (the backend).
fn fault_classes() -> Vec<(&'static str, Vec<FaultKind>)> {
    graf_chaos::CATALOG
        .iter()
        .map(|&name| {
            (name, graf_chaos::named_faults(name, ServiceId(2)).expect("catalog name resolves"))
        })
        .collect()
}

fn schedule(kinds: &[FaultKind], seed: u64) -> ChaosSchedule {
    let mut s = ChaosSchedule::new(seed);
    for kind in kinds {
        s = s.fault(
            kind.clone(),
            SimTime::from_secs(FAULT_FROM_S),
            SimTime::from_secs(FAULT_UNTIL_S),
        );
    }
    s
}

struct Cell {
    p99_ms: Option<f64>,
    converge_s: Option<f64>,
    final_instances: usize,
    peak_instances: usize,
    transitions: u64,
    final_level: &'static str,
}

/// `results/audit.jsonl` + (`trace_drop`, `ladder`) →
/// `results/audit-trace_drop-ladder.jsonl`: one decision log per cell.
fn cell_audit_path(base: &str, fault: &str, policy: &str) -> PathBuf {
    let p = Path::new(base);
    let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("audit");
    let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
    p.with_file_name(format!("{stem}-{fault}-{policy}.{ext}"))
}

fn run_cell(
    graf: &Graf,
    sched: &ChaosSchedule,
    mode: PolicyMode,
    seed: u64,
    flight: (&FlightRecorder, &Path),
    prof: &Prof,
    audit: Option<PathBuf>,
) -> Cell {
    let topo = chain3();
    let world = World::new(topo.clone(), SimConfig::default(), seed);
    let deployments = (0..topo.num_services())
        .map(|s| Deployment::new(ServiceId(s as u16), UNIT_MC, 4))
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    cluster.arm_chaos(sched);

    let mut rc = ResilientController::new(
        graf.controller(SLO_MS),
        ResilientConfig { mode, ..ResilientConfig::default() },
    );
    rc.arm_chaos(sched);
    // All cells append to the same ring, so on a chaos-induced demotion (or
    // a panic) the dump holds the last ~1k decisions across the matrix.
    rc.set_flight(flight.0.clone(), flight.1.to_path_buf());
    rc.set_prof(prof.clone());
    if let Some(path) = audit {
        match AuditTrail::to_file(&path) {
            Ok(trail) => rc.set_audit(trail),
            Err(e) => eprintln!("audit: cannot write {}: {e}", path.display()),
        }
    }

    // ~300 qps before the surge, ~600 qps after (think time 2 s per user):
    // an under-provisioned post-surge cluster genuinely queues.
    let mut users = ClosedLoop::with_mix(vec![(ApiId(0), 2.0)], 600, seed ^ 0x21)
        .users_at(SimTime::from_secs(SURGE_S), 1200);
    let (tl, comps) = run_with_timeline(
        &mut cluster,
        &mut users,
        &mut rc,
        SimTime::from_secs(END_S),
        SimDuration::from_secs(5.0),
    );
    if let Some(trail) = rc.audit_mut() {
        trail.flush();
    }
    Cell {
        p99_ms: percentile_between(&comps, SURGE_S, END_S, 0.99),
        converge_s: convergence_time_s(&tl, SURGE_S, SLO_MS, 4),
        final_instances: tl.last().map_or(0, |p| p.total_instances),
        peak_instances: tl
            .iter()
            .filter(|p| p.t_s >= SURGE_S)
            .map(|p| p.total_instances)
            .max()
            .unwrap_or(0),
        transitions: rc.transitions(),
        final_level: rc.level().name(),
    }
}

fn main() {
    let args = Args::parse();
    let obs = args.obs();
    let prof = args.prof();
    let topo = chain3();
    println!("# Chaos matrix — fault class × degradation policy (surge at t={SURGE_S} s)");
    println!(
        "# fault window [{FAULT_FROM_S}, {FAULT_UNTIL_S}) s, SLO {SLO_MS} ms, seed {}",
        args.seed
    );
    println!("training GRAF on chain3...");
    let cfg = GrafBuildConfig {
        sampling: SamplingConfig {
            slo_ms: SLO_MS,
            probe_qps: vec![400.0],
            workload_range: (0.25, 1.6),
            cpu_unit_mc: UNIT_MC,
            measure_secs: if args.quick { 4.0 } else { 10.0 },
            warmup_secs: if args.quick { 2.0 } else { 5.0 },
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            seed: args.seed,
            ..SamplingConfig::default()
        },
        train: TrainConfig {
            epochs: args.scaled(12, 40, 200),
            seed: args.seed,
            threads: args.threads.unwrap_or(1),
            ..TrainConfig::default()
        },
        num_samples: args.samples.unwrap_or_else(|| args.scaled(120, 400, 2000)),
        split_seed: args.seed ^ 0x5EED,
        ..Default::default()
    };
    let graf = Graf::build_observed(topo, cfg, &obs);
    println!(
        "trained: {} samples, best val loss {:.4}\n",
        graf.samples.len(),
        graf.report.best_val
    );

    // Flight recorder: a bounded ring of recent per-tick decision records,
    // dumped for post-mortem on panic or chaos-induced ladder demotion.
    let flight_path = PathBuf::from(format!("results/flightrec-{}.jsonl", args.seed));
    let flight = FlightRecorder::new(graf_obs::flight::DEFAULT_FLIGHT_CAPACITY);
    flight.arm_panic_dump(flight_path.clone());

    println!(
        "{:<14} {:<8} {:>8} {:>11} {:>7} {:>6} {:>12} {:>11}",
        "fault", "policy", "p99_ms", "converge_s", "final", "peak", "transitions", "final_level"
    );
    let mut ladder_vs_freeze: Vec<(&str, f64, f64)> = Vec::new();
    for (name, kinds) in fault_classes() {
        if args.chaos.as_deref().is_some_and(|only| only != name) {
            continue;
        }
        let sched = schedule(&kinds, args.seed);
        let mut row: Vec<(&str, Cell)> = Vec::new();
        for (policy, mode) in
            [("ladder", PolicyMode::Ladder), ("freeze", PolicyMode::FreezeOnFault)]
        {
            let audit = args.audit.as_ref().map(|base| cell_audit_path(base, name, policy));
            let cell =
                run_cell(&graf, &sched, mode, args.seed, (&flight, &flight_path), &prof, audit);
            println!(
                "{:<14} {:<8} {:>8} {:>11} {:>7} {:>6} {:>12} {:>11}",
                name,
                policy,
                cell.p99_ms.map_or("n/a".into(), |v| format!("{v:.1}")),
                cell.converge_s.map_or("never".into(), |v| format!("{v:.0}")),
                cell.final_instances,
                cell.peak_instances,
                cell.transitions,
                cell.final_level,
            );
            row.push((policy, cell));
        }
        if let [(_, ladder), (_, freeze)] = &row[..] {
            if let (Some(l), Some(f)) = (ladder.p99_ms, freeze.p99_ms) {
                ladder_vs_freeze.push((name, l, f));
            }
        }
    }

    println!("\n## ladder vs freeze (post-surge p99)");
    for (name, l, f) in &ladder_vs_freeze {
        println!(
            "{name:>14}: ladder {l:.1} ms vs freeze {f:.1} ms ({})",
            if l < f { "ladder better" } else { "freeze no worse" }
        );
    }
    // The degradation ladder must strictly beat the freeze strawman where
    // degrading gracefully matters most: lost traces and failed creations.
    for target in ["trace_drop", "creation_fail"] {
        if let Some((_, l, f)) = ladder_vs_freeze.iter().find(|(n, _, _)| *n == target) {
            assert!(l < f, "ladder p99 ({l:.1} ms) must beat freeze ({f:.1} ms) under {target}");
        }
    }
    if let Some(base) = &args.audit {
        println!("\naudit trails written next to {base} (one JSONL file per cell)");
    }
    args.finish_profile(&prof);
    args.finish_telemetry(&obs);
}
