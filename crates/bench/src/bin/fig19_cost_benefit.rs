//! Figure 19: cost-benefit frontier — for which (microservice update period,
//! workload) points does GRAF's one-time sampling/training cost pay off?
//!
//! The paper prices the 50 k-sample collection + GPU training at $112.17
//! (Table 3) and converts saved instances (which grow with workload, Fig 18)
//! into saved dollars per day at EC2 rates. A point is profitable when the
//! cost amortizes before the application's next model-invalidating update.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig19_cost_benefit
//! ```

use graf_bench::pricing::{breakeven_days, budget_table, budget_total, is_profitable};

/// Saved instances as a function of workload, interpolated from the Figure-18
/// trend (saved instances grow roughly linearly with qps). The slope is
/// deliberately taken from the paper's ~19 % saving at the evaluated points.
fn saved_instances(qps: f64, cpu_unit_mc: f64) -> f64 {
    // ~19% of the K8s footprint; K8s footprint ≈ offered/(threshold·unit).
    let per_request_mc = 2.5; // mean CPU demand per request across the mix
    let k8s_quota = qps * per_request_mc / 0.55;
    0.19 * k8s_quota / cpu_unit_mc
}

fn main() {
    let cpu_unit = 100.0;
    let one_time = budget_total(&budget_table(50_000, 15.0, 16.0));
    println!("# Figure 19 — profit frontier (one-time cost ${one_time:.2})");
    println!("\n## Break-even days by workload");
    println!("qps,saved_instances,breakeven_days");
    for qps in [250.0, 500.0, 1000.0, 2000.0, 4000.0, 6000.0] {
        let saved = saved_instances(qps, cpu_unit);
        let days = breakeven_days(one_time, saved, cpu_unit);
        println!("{qps:.0},{saved:.1},{}", days.map_or("never".into(), |d| format!("{d:.1}")));
    }

    println!("\n## Profit grid: rows = workload (qps), cols = update period (days)");
    let periods = [5.0, 10.0, 20.0, 30.0, 45.0, 60.0];
    print!("qps\\days");
    for p in periods {
        print!(",{p:.0}");
    }
    println!();
    for qps in [250.0, 500.0, 1000.0, 2000.0, 4000.0, 6000.0] {
        print!("{qps:.0}");
        let saved = saved_instances(qps, cpu_unit);
        for p in periods {
            print!(
                ",{}",
                if is_profitable(p, saved, one_time, cpu_unit) { "profit" } else { "loss" }
            );
        }
        println!();
    }
    println!("\n(the frontier: higher workloads amortize the one-time cost within shorter");
    println!(" update periods — the paper's 'Profit Area' grows with qps and period)");
}
