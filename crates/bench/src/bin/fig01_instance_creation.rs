//! Figure 1: time to create microservice instances as a function of how many
//! are created at once.
//!
//! The paper measures 5.5 s for one instance up to 45.6 s for sixteen on one
//! worker node. The orchestrator's creation model is calibrated to that
//! curve; this binary verifies the end-to-end behaviour by actually creating
//! batches in a cluster and timing readiness.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig01_instance_creation
//! ```

use graf_bench::Args;
use graf_orchestrator::{Cluster, CreationModel, Deployment};
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf_sim::world::{SimConfig, World};

fn main() {
    let args = Args::parse();
    println!("# Figure 1 — time to create instances (batch size vs seconds)");
    println!("batch,measured_s,paper_s");
    let paper = [(1usize, 5.5), (2, 8.7), (4, 12.5), (8, 23.6), (16, 45.6)];
    for &(batch, paper_s) in &paper {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 1.0, 100)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let world = World::new(topo, SimConfig::default(), args.seed);
        let mut cluster = Cluster::new(
            world,
            vec![Deployment::new(ServiceId(0), 100.0, 1)],
            CreationModel::default(),
        );
        cluster.set_desired(ServiceId(0), 1 + batch);
        // Advance until every instance is ready; record the readiness time.
        let mut t = 0.0;
        loop {
            t += 0.1;
            cluster.world_mut().run_until(SimTime::from_secs(t));
            let (_, ready, _) = cluster.world().instance_counts(ServiceId(0));
            if ready == 1 + batch {
                break;
            }
            assert!(t < 300.0, "creation never completed");
        }
        println!("{batch},{t:.1},{paper_s}");
    }
}
