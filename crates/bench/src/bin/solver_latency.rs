//! §3.8 / §5.2 timing claims: the configuration solver's wall-clock latency
//! and iteration counts.
//!
//! The paper measures 3.4–6.8 s per solve (p90 ≈ 6.7 s to tolerance) on its
//! testbed — fast enough for synchronous control at a 15 s interval. This
//! reproduction's model is the same size but runs without Python overhead,
//! so solves complete in microseconds–milliseconds; the claim under test is
//! that the solve fits comfortably inside the control interval.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin solver_latency
//! ```

use std::time::Instant;

use graf_bench::standard::{boutique_setup, build_graf};
use graf_bench::Args;
use graf_metrics::Summary;
use graf_sim::rng::DetRng;

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    println!("# Solver latency (§3.8: 3.4–6.8 s on the paper's testbed)");
    println!("training GRAF...");
    let graf = build_graf(&setup, &args);
    let mut ctrl = graf.controller(setup.slo_ms);

    let mut wall = Summary::new();
    let mut iters = Summary::new();
    let mut rng = DetRng::new(args.seed ^ 0x50);
    let solves = 200;
    for _ in 0..solves {
        let mult = rng.uniform(0.3, 1.5);
        let rates: Vec<f64> = setup.probe_qps.iter().map(|q| q * mult).collect();
        let t0 = Instant::now();
        let (_, res) = ctrl.plan(&rates);
        wall.record(t0.elapsed().as_secs_f64() * 1000.0);
        iters.record(res.iterations as f64);
    }
    // Summaries are non-empty: the loop above recorded `solves` samples.
    let full = "summary holds one sample per solve";
    println!("\n{solves} solves across workloads 0.3–1.5× the operating point:");
    println!(
        "wall time  — p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        wall.percentile(0.50).expect(full),
        wall.percentile(0.90).expect(full),
        wall.percentile(0.99).expect(full),
        wall.max().expect(full)
    );
    println!(
        "iterations — p50 {:.0}, p90 {:.0}, max {:.0}",
        iters.percentile(0.50).expect(full),
        iters.percentile(0.90).expect(full),
        iters.max().expect(full)
    );
    let interval_ms = 15_000.0;
    println!(
        "\nworst solve uses {:.4}% of the 15 s control interval (paper: ~45%)",
        100.0 * wall.max().expect(full) / interval_ms
    );
}
