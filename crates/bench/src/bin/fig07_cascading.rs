//! Figure 7: the workload each microservice perceives over time during a
//! traffic surge — the cascading effect (§2.1).
//!
//! Under the HPA, the front end saturates first; deeper services only see
//! the increased workload after earlier services scale out, so their
//! perceived-peak times are staggered down the chain ("While 'Frontend'
//! perceives its peak traffic at 31 s, 'Cart' starts handling its peak
//! workload at 118 s... subsequent microservices see the peak even further
//! later at 155 s"). With proactive creation, every service reaches its peak
//! at about the same time.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig07_cascading
//! ```

use graf_apps::{boutique, online_boutique};
use graf_bench::timeline::{run_with_timeline, TimelinePoint};
use graf_bench::Args;
use graf_loadgen::OpenLoop;
use graf_orchestrator::{
    Autoscaler, Cluster, CreationModel, Deployment, HpaConfig, KubernetesHpa, ProactiveOnce,
};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{SimConfig, World};

const BASE_QPS: f64 = 60.0;
const SURGE_QPS: f64 = 300.0;
const WARMUP_S: f64 = 360.0;
const END_S: f64 = WARMUP_S + 300.0;
const CPU_UNIT: f64 = 100.0;

fn targets_for(rate_qps: f64) -> Vec<(ServiceId, usize)> {
    let topo = online_boutique();
    let api = ApiId(boutique::API_CART);
    (0..topo.num_services() as u16)
        .map(|s| {
            let mult = topo.multiplicity(api, ServiceId(s));
            let offered = rate_qps * mult * topo.services[s as usize].work_ms;
            (ServiceId(s), ((offered * 1.8 + 60.0) / CPU_UNIT).ceil().max(1.0) as usize)
        })
        .collect()
}

fn run(scaler: &mut dyn Autoscaler, seed: u64) -> Vec<TimelinePoint> {
    let topo = online_boutique();
    let world = World::new(topo, SimConfig::default(), seed);
    let deployments =
        targets_for(BASE_QPS).into_iter().map(|(s, n)| Deployment::new(s, CPU_UNIT, n)).collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    let mut load = OpenLoop::new(seed ^ 0x7).poisson().schedule(
        ApiId(boutique::API_CART),
        vec![(SimTime::ZERO, BASE_QPS), (SimTime::from_secs(WARMUP_S), SURGE_QPS)],
    );
    let (tl, _) = run_with_timeline(
        &mut cluster,
        &mut load,
        scaler,
        SimTime::from_secs(END_S),
        SimDuration::from_secs(5.0),
    );
    tl
}

/// First time (relative to the surge) a service's perceived rate reaches 90 %
/// of its final plateau.
fn peak_times(tl: &[TimelinePoint], n: usize) -> Vec<f64> {
    let last = tl.last().expect("non-empty timeline");
    (0..n)
        .map(|s| {
            let plateau = last.per_service_rate[s];
            tl.iter()
                .find(|p| p.t_s >= WARMUP_S && p.per_service_rate[s] >= 0.9 * plateau)
                .map_or(f64::NAN, |p| p.t_s - WARMUP_S)
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let topo = online_boutique();
    let names: Vec<&str> = topo.services.iter().map(|s| s.name.as_str()).collect();
    println!("# Figure 7 — perceived workload per microservice through a {BASE_QPS}→{SURGE_QPS} qps surge");

    let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 6);
    let hpa_tl = run(&mut hpa, args.seed);
    let mut pro = ProactiveOnce::new(SimTime::from_secs(WARMUP_S), targets_for(SURGE_QPS));
    let pro_tl = run(&mut pro, args.seed);

    println!("\n## Time (s after surge) for each service to perceive 90% of its peak workload");
    println!("{:<16} {:>14} {:>14}", "service", "k8s-autoscaler", "proactive");
    let hpa_peaks = peak_times(&hpa_tl, 6);
    let pro_peaks = peak_times(&pro_tl, 6);
    for (i, name) in names.iter().enumerate() {
        println!("{:<16} {:>14.0} {:>14.0}", name, hpa_peaks[i], pro_peaks[i]);
    }
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    println!(
        "\npeak-time spread — HPA: {:.0} s (staggered down the chain), proactive: {:.0} s",
        spread(&hpa_peaks),
        spread(&pro_peaks)
    );

    println!("\n## Per-service perceived workload (req/s), HPA run");
    print!("t_s");
    for n in &names {
        print!(",{n}");
    }
    println!();
    for p in hpa_tl.iter().filter(|p| p.t_s >= WARMUP_S - 30.0) {
        print!("{:.0}", p.t_s - WARMUP_S);
        for s in 0..6 {
            print!(",{:.0}", p.per_service_rate[s]);
        }
        println!();
    }

    println!("\n## Per-service perceived workload (req/s), proactive run");
    print!("t_s");
    for n in &names {
        print!(",{n}");
    }
    println!();
    for p in pro_tl.iter().filter(|p| p.t_s >= WARMUP_S - 30.0) {
        print!("{:.0}", p.t_s - WARMUP_S);
        for s in 0..6 {
            print!(",{:.0}", p.per_service_rate[s]);
        }
        println!();
    }
}
