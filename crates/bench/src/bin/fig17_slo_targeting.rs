//! Figure 17: measured tail latency of configurations targeting various
//! latency SLOs (§5.2).
//!
//! For every target SLO the configuration solver produces a quota vector;
//! deploying it and measuring the actual p99 shows how tightly GRAF tracks
//! the target. The paper reports 85.1 % of configurations landing within the
//! targeted SLO, with measured points densely clustered near the target.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig17_slo_targeting
//! ```

use graf_bench::standard::{boutique_setup, build_graf, sampling_config};
use graf_bench::Args;
use graf_core::sample_collector::SampleCollector;

fn main() {
    let args = Args::parse();
    // Sample for the loosest SLO in the sweep: Algorithm 1's lower bounds
    // derive from the sampling SLO, so the training box must span every
    // target the solver will be asked for.
    let mut setup = boutique_setup();
    setup.slo_ms = 180.0;
    println!("# Figure 17 — measured p99 vs targeted SLO (Online Boutique)");
    println!("training GRAF...");
    let graf = build_graf(&setup, &args);
    let validator = SampleCollector::new(setup.topo.clone(), sampling_config(&setup, &args));

    // Sweep SLO targets across the achievable band; several workload levels
    // per target to populate the scatter.
    println!("slo_ms,workload_mult,total_quota_mc,predicted_ms,measured_p99_ms,within_slo");
    let mut within = 0usize;
    let mut total = 0usize;
    for slo in [65.0, 80.0, 100.0, 120.0, 150.0, 180.0] {
        let mut ctrl = graf.controller(slo);
        for mult in [0.6, 0.8, 1.0] {
            let rates: Vec<f64> = setup.probe_qps.iter().map(|q| q * mult).collect();
            let (quotas, solve) = ctrl.plan(&rates);
            let (out, _) = validator.measure(
                &quotas,
                &rates,
                args.seed ^ (slo as u64) << 4 ^ (mult * 10.0) as u64,
                false,
            );
            let measured = out.e2e_tail_ms.unwrap_or(f64::NAN);
            let ok = measured <= slo;
            within += ok as usize;
            total += 1;
            println!(
                "{slo:.0},{mult:.1},{:.0},{:.1},{measured:.1},{}",
                quotas.iter().sum::<f64>(),
                solve.predicted_ms,
                ok as u8
            );
        }
    }
    println!(
        "\n{:.1}% of configurations fall within the targeted SLO (paper: 85.1%)",
        100.0 * within as f64 / total as f64
    );
}
