//! Figures 4, 5 and 10: the benchmark application topologies, as Graphviz
//! DOT (pipe into `dot -Tpng` to render the paper's diagrams).
//!
//! ```sh
//! cargo run --release -p graf-bench --bin topologies
//! ```

use graf_apps::all_apps;
use graf_sim::topology::ApiId;

fn main() {
    for topo in all_apps() {
        println!("// ===== {} =====", topo.name);
        print!("{}", topo.to_dot());
        for api in 0..topo.num_apis() {
            let spec = &topo.apis[api];
            let services: Vec<String> = topo
                .services_in_api(ApiId(api as u16))
                .iter()
                .map(|s| topo.services[s.0 as usize].name.clone())
                .collect();
            println!("// API {:>12}: {}", spec.name, services.join(" → "));
        }
        println!();
    }
}
