//! Table 2: latency-prediction accuracy by latency region, plus the
//! over-estimation bias (§5.1).
//!
//! The paper reports average absolute percentage error per sampled
//! 99 %-tile-latency region (21.3 % in 0–50 ms up to 31.9 % in 0–800 ms) and
//! a +5.2 % mean over-estimation — the asymmetric-Hüber design goal, since
//! over-estimating keeps the solver away from SLO-violating configurations.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin table2_prediction_error
//! ```

use graf_bench::standard::{boutique_setup, build_graf, social_setup, AppSetup};
use graf_bench::Args;

fn evaluate(setup: &AppSetup, args: &Args) {
    println!("\n## {}", setup.topo.name);
    let graf = build_graf(setup, &args.clone());
    let table = graf.model.error_table(&graf.test_set);
    println!(
        "test set: {} samples (of {} collected); best val loss {:.4}",
        table.count,
        graf.samples.len(),
        graf.report.best_val
    );
    println!("{:<12} {:>18} {:>9}", "region", "avg |error| (%)", "samples");
    for (name, _, _, err, n) in &table.regions {
        if err.is_nan() {
            println!("{name:<12} {:>18} {n:>9}", "-");
        } else {
            println!("{name:<12} {err:>18.1} {n:>9}");
        }
    }
    println!(
        "mean over-estimation: {:+.1}% ({:.0}% of points over-estimated) — paper: +5.2%",
        table.mean_overestimate_pct,
        table.overestimate_fraction * 100.0
    );
}

fn main() {
    let args = Args::parse();
    println!("# Table 2 — prediction percentage error by p99-latency region");
    evaluate(&boutique_setup(), &args);
    evaluate(&social_setup(), &args);
}
