//! Figure 20: total instances under a real-workload time series (§5.3,
//! *Real workload demonstration*).
//!
//! The paper replays AzurePublicDatasetV2 — per-minute function invocation
//! counts mapped to Locust user threads — over a 1900 s window, showing GRAF
//! tracking the workload up *and down* while the Kubernetes autoscaler lags
//! surges (cascading effect) and holds instances for 5 minutes after the
//! sharp drop at ~1500 s (scale-down stabilization). GRAF used 21 % fewer
//! net instances. The dataset itself is not redistributable; an equivalent
//! synthetic minute-series is generated (see DESIGN.md).
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig20_real_workload
//! ```

use graf_apps::online_boutique;
use graf_bench::standard::{boutique_setup, build_graf};
use graf_bench::timeline::{percentile_between, run_with_timeline, TimelinePoint};
use graf_bench::Args;
use graf_core::baseline::{hpa_with_threshold, tune_hpa_threshold, SteadyTrial};
use graf_loadgen::azure::{azure_series, AzureParams};
use graf_loadgen::ClosedLoop;
use graf_orchestrator::{Autoscaler, Cluster, CreationModel, Deployment};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{Completion, SimConfig, World};

const MINUTES: usize = 32; // ≈ 1900 s
const END_S: f64 = MINUTES as f64 * 60.0;

fn replay(
    scaler: &mut dyn Autoscaler,
    series: &[u32],
    unit: f64,
    seed: u64,
) -> (Vec<TimelinePoint>, Vec<Completion>) {
    let topo = online_boutique();
    let world = World::new(topo.clone(), SimConfig::default(), seed);
    let initial = (series[0] as usize / 120).clamp(2, 60);
    let deployments = (0..topo.num_services())
        .map(|s| Deployment::new(ServiceId(s as u16), unit, initial))
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    let mut users = ClosedLoop::with_mix(
        vec![(ApiId(0), 3.0), (ApiId(1), 3.0), (ApiId(2), 4.0)],
        series[0] as usize,
        seed ^ 0x20,
    );
    for (m, &u) in series.iter().enumerate().skip(1) {
        users.set_users(SimTime::from_secs(60.0 * m as f64), u as usize);
    }
    run_with_timeline(
        &mut cluster,
        &mut users,
        scaler,
        SimTime::from_secs(END_S),
        SimDuration::from_secs(10.0),
    )
}

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    // Scale the series to the trained operating point (~1500 users) with the
    // paper's sharp drop at ~1500 s.
    let params = AzureParams {
        mean_users: 1500.0,
        drop_at_min: Some(25),
        drop_to: 0.45,
        ..Default::default()
    };
    let series = azure_series(&params, MINUTES, args.seed ^ 0xA2);
    println!("# Figure 20 — instances under an Azure-like minute series ({} min)", MINUTES);
    println!("user series: {series:?}");

    println!("training GRAF...");
    let graf = build_graf(&setup, &args);
    let trial = SteadyTrial::new(setup.topo.clone(), setup.probe_qps.clone()).initial_replicas(6);
    // The paper hand-tunes the threshold; 10%-step granularity.
    let grid: Vec<f64> = (1..=9).map(|i| 0.05 + 0.1 * (9 - i) as f64).collect();
    let (thr, _) = tune_hpa_threshold(&trial, setup.slo_ms, &grid);
    println!("HPA threshold tuned once: {thr:.2}");

    let mut graf_ctrl = graf.controller(setup.slo_ms);
    let (graf_tl, graf_comps) = replay(&mut graf_ctrl, &series, setup.cpu_unit_mc, args.seed);
    let mut hpa = hpa_with_threshold(thr, 6);
    let (hpa_tl, hpa_comps) = replay(&mut hpa, &series, setup.cpu_unit_mc, args.seed);

    println!("\nt_s,users,graf_instances,k8s_instances");
    for (g, h) in graf_tl.iter().zip(&hpa_tl) {
        let minute = (g.t_s / 60.0) as usize;
        println!(
            "{:.0},{},{},{}",
            g.t_s,
            series.get(minute).copied().unwrap_or(0),
            g.total_instances,
            h.total_instances
        );
    }

    let mean = |tl: &[TimelinePoint]| {
        tl.iter().map(|p| p.total_instances as f64).sum::<f64>() / tl.len().max(1) as f64
    };
    let graf_mean = mean(&graf_tl);
    let hpa_mean = mean(&hpa_tl);
    println!(
        "\nmean instances — GRAF {:.1}, K8s {:.1}: GRAF uses {:.1}% fewer (paper: 21%)",
        graf_mean,
        hpa_mean,
        100.0 * (1.0 - graf_mean / hpa_mean)
    );
    let p95 = |c: &[Completion]| percentile_between(c, 120.0, END_S, 0.95).unwrap_or(f64::NAN);
    println!(
        "p95 latency — GRAF {:.0} ms, K8s {:.0} ms (paper: both ≈180 ms)",
        p95(&graf_comps),
        p95(&hpa_comps)
    );
    // Post-drop lag: mean instances in the 5 minutes after the drop.
    let drop_s = 25.0 * 60.0;
    let window = |tl: &[TimelinePoint]| {
        let pts: Vec<f64> = tl
            .iter()
            .filter(|p| p.t_s >= drop_s && p.t_s < drop_s + 300.0)
            .map(|p| p.total_instances as f64)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    println!(
        "mean instances in the 5 min after the drop — GRAF {:.1}, K8s {:.1} \
         (the HPA's stabilization window holds capacity)",
        window(&graf_tl),
        window(&hpa_tl)
    );
}
