//! Ablation: the state-aware sample collector (§3.7 / §5.1, *Efficient
//! Sample Collection*).
//!
//! Algorithm 1 confines sampling to the per-service quota box where the model
//! actually needs accuracy; a naive collector spends the same budget across
//! the full `[min, abundant]` hypercube, wasting samples on configurations
//! that are either hopelessly starved or flat-latency overprovisioned. At an
//! equal sample budget, the state-aware model should predict the operating
//! region much better.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin ablation_sampling
//! ```

use graf_bench::standard::{boutique_setup, sampling_config};
use graf_bench::Args;
use graf_core::sample_collector::{Bounds, Sample, SampleCollector};
use graf_core::{FeatureScaler, LatencyModel, NetKind, TrainConfig};
use graf_sim::rng::DetRng;

fn train_on(
    samples: &[Sample],
    edges: &[(u16, u16)],
    n: usize,
    train: &TrainConfig,
) -> LatencyModel {
    let scaler = FeatureScaler::fit(
        samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
    );
    let ds = LatencyModel::dataset_from_samples(&scaler, samples);
    let split = ds.split(0.8, 0.1, 5);
    let mut model = LatencyModel::new(NetKind::Gnn, edges, n, scaler, split.train.label_mean(), 5);
    model.train(&split, train);
    model
}

fn mape(model: &LatencyModel, samples: &[Sample]) -> f64 {
    let mut acc = 0.0;
    for s in samples {
        let p = model.predict_ms(&s.workloads, &s.quotas_mc);
        acc += ((p - s.p99_ms) / s.p99_ms.max(1e-9)).abs();
    }
    100.0 * acc / samples.len().max(1) as f64
}

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    let n = setup.topo.num_services();
    let cfg = sampling_config(&setup, &args);
    let budget = args.samples.unwrap_or_else(|| args.scaled(150, 900, 4000));

    let collector = SampleCollector::new(setup.topo.clone(), cfg.clone());
    println!("# Sampling ablation — Algorithm-1 box vs naive full-range, {budget} samples each");
    let analyzer = collector.profile();
    let edges: Vec<(u16, u16)> = analyzer.edges().to_vec();

    println!("running Algorithm 1...");
    let bounds = collector.reduce_search_space();
    println!(
        "reduced box volume: {:.2e}× the original",
        bounds.volume_reduction(cfg.min_quota_mc, cfg.abundant_quota_mc)
    );
    let smart = collector.collect(&bounds, &analyzer, budget);

    // Naive: same budget, quotas uniform over the full original range.
    let naive_bounds =
        Bounds { lower: vec![cfg.min_quota_mc; n], upper: vec![cfg.abundant_quota_mc; n] };
    let naive = collector.collect(&naive_bounds, &analyzer, budget);

    // Held-out evaluation set: fresh samples inside the operating box (where
    // the solver actually queries the model), different seeds.
    let mut eval_cfg = cfg.clone();
    eval_cfg.seed ^= 0xE7A1;
    let eval_collector = SampleCollector::new(setup.topo.clone(), eval_cfg);
    let eval = eval_collector.collect(&bounds, &analyzer, (budget / 4).max(60));

    let train = TrainConfig { epochs: args.scaled(25, 60, 200), ..Default::default() };
    let smart_model = train_on(&smart, &edges, n, &train);
    let naive_model = train_on(&naive, &edges, n, &train);

    println!("\n{:<26} {:>18}", "collector", "MAPE on operating region (%)");
    println!("{:<26} {:>18.1}", "state-aware (Algorithm 1)", mape(&smart_model, &eval));
    println!("{:<26} {:>18.1}", "naive full-range", mape(&naive_model, &eval));

    // Also show where naive samples were wasted.
    let mut rng = DetRng::new(1);
    let _ = rng.unit();
    let starved = naive.iter().filter(|s| s.p99_ms > cfg.slo_ms * 4.0).count();
    println!(
        "\nnaive samples with p99 > 4×SLO (wasted on starvation regions): {}/{}",
        starved,
        naive.len()
    );
}
