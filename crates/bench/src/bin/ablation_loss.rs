//! Ablation: the asymmetric Hüber percentage loss (§3.4's three "tricks").
//!
//! The paper motivates (a) percentage error — accuracy concentrated in the
//! small-latency region where SLOs live, (b) Hüber robustness against
//! irregular p99 samples, and (c) asymmetry — under-prediction is penalized
//! more, biasing the model toward over-estimation so the solver stays clear
//! of SLO violations. This ablation trains the same GNN on the same samples
//! with different loss shapes and reports the resulting bias and the
//! SLO-safety consequence (how often the solved configuration's *measured*
//! latency violates the target).
//!
//! ```sh
//! cargo run --release -p graf-bench --bin ablation_loss
//! ```

use graf_bench::standard::{boutique_setup, build_graf, sampling_config};
use graf_bench::Args;
use graf_core::sample_collector::SampleCollector;
use graf_core::solver::{solve, SolverConfig};
use graf_core::{FeatureScaler, LatencyModel, NetKind, TrainConfig};

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    println!("# Loss ablation — asymmetric Hüber (θ_L=0.1, θ_R=0.3) vs variants");
    println!("training base GRAF (for samples/bounds)...");
    let graf = build_graf(&setup, &args);
    let validator = SampleCollector::new(setup.topo.clone(), sampling_config(&setup, &args));

    // (name, θ_L, θ_R): symmetric Hüber; paper's asymmetric; near-quadratic
    // (huge thresholds ≈ pure percentage-MSE); strongly asymmetric.
    let variants: [(&str, f64, f64); 4] = [
        ("asymmetric (paper)", 0.1, 0.3),
        ("symmetric hüber", 0.2, 0.2),
        ("quadratic (no hüber)", 1e9, 1e9),
        ("strong asymmetry", 0.05, 0.5),
    ];

    println!(
        "\n{:<22} {:>10} {:>12} {:>14} {:>16}",
        "loss", "test_mape%", "over-est_%", "over-est_frac", "slo_violations"
    );
    for (name, tl, tr) in variants {
        // Retrain from the shared samples with the variant's thetas.
        let scaler = FeatureScaler::fit(
            graf.samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let ds = LatencyModel::dataset_from_samples(&scaler, &graf.samples);
        let split = ds.split(0.7, 0.15, graf.build_cfg.split_seed);
        let mut model = LatencyModel::new(
            NetKind::Gnn,
            graf.analyzer.edges(),
            setup.topo.num_services(),
            scaler,
            split.train.label_mean(),
            graf.build_cfg.split_seed ^ 0x6E7,
        );
        let train = TrainConfig { theta_l: tl, theta_r: tr, ..graf.build_cfg.train.clone() };
        model.train(&split, &train);
        let table = model.error_table(&split.test);

        // SLO-safety: solve for several (SLO, workload) targets and measure.
        let mut violations = 0usize;
        let mut trials = 0usize;
        for slo in [80.0, 100.0, 120.0] {
            for mult in [0.7, 1.0] {
                let rates: Vec<f64> = setup.probe_qps.iter().map(|q| q * mult).collect();
                let workloads = graf.analyzer.service_workloads(&rates);
                let res =
                    solve(&mut model, &workloads, slo, &graf.bounds, &SolverConfig::default());
                let (out, _) = validator.measure(
                    &res.quotas_mc,
                    &rates,
                    args.seed ^ (slo as u64) << 3 ^ (mult * 10.0) as u64,
                    false,
                );
                if out.e2e_tail_ms.is_some_and(|m| m > slo) {
                    violations += 1;
                }
                trials += 1;
            }
        }
        println!(
            "{:<22} {:>10.1} {:>12.1} {:>14.2} {:>12}/{trials}",
            name,
            table.regions[3].3,
            table.mean_overestimate_pct,
            table.overestimate_fraction,
            violations
        );
    }
    println!(
        "\n(the paper's asymmetry trades a little accuracy for an over-estimation \
         bias that keeps solved configurations on the safe side of the SLO)"
    );
}
