//! Figure 11: learning curves of GRAF vs GRAF without MPNN (§5.1, *Efficacy
//! of GNN*).
//!
//! Both models share the same samples, split, readout capacity and training
//! recipe; the ablation simply skips message passing. The paper observes the
//! no-MPNN model converging faster on the training set but generalizing
//! worse: the full model's *test/validation* loss ends lower.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig11_ablation_mpnn
//! ```

use graf_bench::standard::{boutique_setup, build_graf};
use graf_bench::Args;
use graf_core::{NetKind, TrainConfig};

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    println!("# Figure 11 — learning curves: GRAF vs GRAF w/o MPNN (Online Boutique)");
    println!("training GRAF (MPNN)...");
    let graf = build_graf(&setup, &args);
    println!("training the ablation (no MPNN)...");
    let (flat_model, flat_report) = graf.train_ablation(NetKind::FlatMlp);

    println!("\niteration,graf_val_loss,flat_val_loss");
    for i in 0..graf.report.iters.len().min(flat_report.iters.len()) {
        println!(
            "{},{:.4},{:.4}",
            graf.report.iters[i], graf.report.val_loss[i], flat_report.val_loss[i]
        );
    }

    let cfg = TrainConfig::default();
    let graf_test = graf.model.eval_loss(&graf.test_set, &cfg);
    let flat_test = flat_model.eval_loss(&graf.test_set, &cfg);
    println!(
        "\nbest validation loss — GRAF {:.4}, w/o MPNN {:.4}",
        graf.report.best_val, flat_report.best_val
    );
    println!("held-out test loss  — GRAF {:.4}, w/o MPNN {:.4}", graf_test, flat_test);
    println!(
        "\nGRAF generalizes {} on held-out data (paper: 'the trained model from GRAF \
         showed better performance than the model from GRAF without MPNN')",
        if graf_test < flat_test { "better" } else { "WORSE — investigate" }
    );
    let graf_table = graf.model.error_table(&graf.test_set);
    let flat_table = flat_model.error_table(&graf.test_set);
    println!(
        "test |error| (0-800ms region) — GRAF {:.1}%, w/o MPNN {:.1}%",
        graf_table.regions[3].3, flat_table.regions[3].3
    );
}
