//! `graf-perf` — the perf-regression gate over `BENCH_HISTORY.jsonl`.
//!
//! ```text
//! graf-perf compare <revA> <revB> [--history PATH] [--threshold PCT] [--strict]
//! graf-perf headline [--sim PATH]
//! ```
//!
//! `compare` compares every benchmark recorded for `revA` (base) against
//! `revB` (new) and prints a per-bench table. Exits nonzero only when a
//! median regresses by more than the threshold (default 10 %) **and** by
//! more than the run-to-run noise (IQR) — see `graf_bench::perf` for the
//! decision rule.
//!
//! Benchmarks measured at only one of the two revisions are warned about
//! **loudly on stderr** — a silently shrinking bench set is how perf
//! coverage rots. `--strict` upgrades that warning to a failure, but only
//! when *both* revisions have history: a revision with no runs at all (fresh
//! clone, or a commit whose history was appended pre-commit) stays lenient
//! so CI's `compare HEAD~1 HEAD` cannot wedge itself.
//!
//! `headline` resolves `BENCH_SIM.json`'s headline pointer and prints the
//! headline tier — shell tooling reads it from here instead of parsing JSON.
//!
//! Revisions are resolved through `git rev-parse` so symbolic names
//! (`HEAD~1`, branch names, abbreviated SHAs) work; when `git` is
//! unavailable or the name does not resolve, the literal string is used.
//! Missing history — no file, or no runs for one of the revisions — is
//! reported and exits 0: a fresh clone must not fail CI.

use std::process::Command;

use graf_bench::perf::{self, Verdict};

fn usage() -> ! {
    eprintln!(
        "usage: graf-perf compare <revA> <revB> [--history PATH] [--threshold PCT] [--strict]\n\
         \x20      graf-perf headline [--sim PATH]"
    );
    std::process::exit(2);
}

/// Resolves a symbolic revision to a full SHA via `git rev-parse`, falling
/// back to the literal input (so synthetic histories work without git).
fn resolve_rev(rev: &str) -> String {
    let out = Command::new("git").args(["rev-parse", &format!("{rev}^{{commit}}")]).output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => rev.to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => cmd_compare(&args[1..]),
        Some("headline") => cmd_headline(&args[1..]),
        _ => usage(),
    }
}

fn cmd_headline(args: &[String]) {
    let mut sim_path = "BENCH_SIM.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sim" => sim_path = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }
    let text = std::fs::read_to_string(&sim_path).unwrap_or_else(|e| {
        eprintln!("graf-perf: cannot read {sim_path}: {e}");
        std::process::exit(1);
    });
    let report = perf::parse_bench_sim(&text).unwrap_or_else(|e| {
        eprintln!("graf-perf: {sim_path}: {e}");
        std::process::exit(1);
    });
    let h = report.headline_run();
    println!(
        "{} median_ms={} iqr_ms={} mode={} ({} tier(s) in {sim_path})",
        h.bench,
        h.median_ms,
        h.iqr_ms,
        h.mode,
        report.benches.len()
    );
}

fn cmd_compare(args: &[String]) {
    let mut rev_a: Option<String> = None;
    let mut rev_b: Option<String> = None;
    let mut history_path = "BENCH_HISTORY.jsonl".to_string();
    let mut threshold = 10.0f64;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--history" => {
                history_path = it.next().unwrap_or_else(|| usage()).clone();
            }
            "--threshold" => {
                threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--strict" => strict = true,
            other if rev_a.is_none() => rev_a = Some(other.to_string()),
            other if rev_b.is_none() => rev_b = Some(other.to_string()),
            _ => usage(),
        }
    }
    let (Some(rev_a), Some(rev_b)) = (rev_a, rev_b) else { usage() };

    let Ok(text) = std::fs::read_to_string(&history_path) else {
        println!("graf-perf: no history at {history_path}; nothing to compare (ok)");
        return;
    };
    let (history, skipped) = perf::parse_history(&text);
    if skipped > 0 {
        eprintln!("graf-perf: skipped {skipped} unparseable history line(s)");
    }

    let full_a = resolve_rev(&rev_a);
    let full_b = resolve_rev(&rev_b);
    let short = |s: &str| if s.len() > 12 { s[..12].to_string() } else { s.to_string() };
    println!(
        "graf-perf compare  base={} ({})  new={} ({})  threshold={threshold}%{}",
        rev_a,
        short(&full_a),
        rev_b,
        short(&full_b),
        if strict { "  [strict]" } else { "" }
    );

    let report = perf::compare(&history, &full_a, &full_b, threshold);
    if report.rows.is_empty() && !report.has_coverage_gaps() {
        println!(
            "no overlapping benchmarks (base history: {}, new history: {}); nothing to gate (ok)",
            if perf::rev_has_runs(&history, &full_a) { "yes" } else { "none" },
            if perf::rev_has_runs(&history, &full_b) { "yes" } else { "none" }
        );
        return;
    }

    println!(
        "{:<34} {:>12} {:>12} {:>9} {:>9}  verdict",
        "bench", "base ms", "new ms", "delta", "noise ms"
    );
    for row in &report.rows {
        let verdict = match row.verdict {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::Unchanged => "ok",
        };
        println!(
            "{:<34} {:>12.4} {:>12.4} {:>8.1}% {:>9.4}  {verdict}",
            row.bench, row.base_ms, row.new_ms, row.delta_pct, row.noise_ms
        );
    }
    for b in &report.only_base {
        eprintln!(
            "graf-perf: WARNING: {b} measured at base but MISSING at new — perf coverage shrank"
        );
    }
    for b in &report.only_new {
        eprintln!("graf-perf: WARNING: {b} measured at new but missing at base (new bench?)");
    }

    let mut fail = false;
    if report.has_regressions() {
        let n = report.rows.iter().filter(|r| r.verdict == Verdict::Regressed).count();
        eprintln!("graf-perf: {n} benchmark(s) regressed beyond {threshold}% + noise");
        fail = true;
    }
    if strict && perf::strict_coverage_failure(&history, &full_a, &full_b, &report) {
        eprintln!(
            "graf-perf: --strict: bench sets differ between revisions ({} only at base, {} only at new)",
            report.only_base.len(),
            report.only_new.len()
        );
        fail = true;
    }
    if fail {
        std::process::exit(1);
    }
    println!("graf-perf: no regressions beyond {threshold}% + noise");
}
