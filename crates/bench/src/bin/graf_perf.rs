//! `graf-perf` — the perf-regression gate over `BENCH_HISTORY.jsonl`.
//!
//! ```text
//! graf-perf compare <revA> <revB> [--history PATH] [--threshold PCT]
//! ```
//!
//! Compares every benchmark recorded for `revA` (base) against `revB` (new)
//! and prints a per-bench table. Exits nonzero only when a median regresses
//! by more than the threshold (default 10 %) **and** by more than the
//! run-to-run noise (IQR) — see `graf_bench::perf` for the decision rule.
//!
//! Revisions are resolved through `git rev-parse` so symbolic names
//! (`HEAD~1`, branch names, abbreviated SHAs) work; when `git` is
//! unavailable or the name does not resolve, the literal string is used.
//! Missing history — no file, or no runs for one of the revisions — is
//! reported and exits 0: a fresh clone must not fail CI.

use std::process::Command;

use graf_bench::perf::{self, Verdict};

fn usage() -> ! {
    eprintln!("usage: graf-perf compare <revA> <revB> [--history PATH] [--threshold PCT]");
    std::process::exit(2);
}

/// Resolves a symbolic revision to a full SHA via `git rev-parse`, falling
/// back to the literal input (so synthetic histories work without git).
fn resolve_rev(rev: &str) -> String {
    let out = Command::new("git").args(["rev-parse", &format!("{rev}^{{commit}}")]).output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => rev.to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("compare") {
        usage();
    }
    let mut rev_a: Option<String> = None;
    let mut rev_b: Option<String> = None;
    let mut history_path = "BENCH_HISTORY.jsonl".to_string();
    let mut threshold = 10.0f64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--history" => {
                history_path = it.next().unwrap_or_else(|| usage()).clone();
            }
            "--threshold" => {
                threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            other if rev_a.is_none() => rev_a = Some(other.to_string()),
            other if rev_b.is_none() => rev_b = Some(other.to_string()),
            _ => usage(),
        }
    }
    let (Some(rev_a), Some(rev_b)) = (rev_a, rev_b) else { usage() };

    let Ok(text) = std::fs::read_to_string(&history_path) else {
        println!("graf-perf: no history at {history_path}; nothing to compare (ok)");
        return;
    };
    let (history, skipped) = perf::parse_history(&text);
    if skipped > 0 {
        eprintln!("graf-perf: skipped {skipped} unparseable history line(s)");
    }

    let full_a = resolve_rev(&rev_a);
    let full_b = resolve_rev(&rev_b);
    let short = |s: &str| if s.len() > 12 { s[..12].to_string() } else { s.to_string() };
    println!(
        "graf-perf compare  base={} ({})  new={} ({})  threshold={threshold}%",
        rev_a,
        short(&full_a),
        rev_b,
        short(&full_b)
    );

    let report = perf::compare(&history, &full_a, &full_b, threshold);
    if report.rows.is_empty() {
        let have_a = history.iter().any(|r| r.rev == full_a || r.rev.starts_with(&full_a));
        let have_b = history.iter().any(|r| r.rev == full_b || r.rev.starts_with(&full_b));
        println!(
            "no overlapping benchmarks (base history: {}, new history: {}); nothing to gate (ok)",
            if have_a { "yes" } else { "none" },
            if have_b { "yes" } else { "none" }
        );
        return;
    }

    println!(
        "{:<34} {:>12} {:>12} {:>9} {:>9}  verdict",
        "bench", "base ms", "new ms", "delta", "noise ms"
    );
    for row in &report.rows {
        let verdict = match row.verdict {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::Unchanged => "ok",
        };
        println!(
            "{:<34} {:>12.4} {:>12.4} {:>8.1}% {:>9.4}  {verdict}",
            row.bench, row.base_ms, row.new_ms, row.delta_pct, row.noise_ms
        );
    }
    for b in &report.only_base {
        println!("{b:<34} (only measured at base)");
    }
    for b in &report.only_new {
        println!("{b:<34} (only measured at new)");
    }

    if report.has_regressions() {
        let n = report.rows.iter().filter(|r| r.verdict == Verdict::Regressed).count();
        eprintln!("graf-perf: {n} benchmark(s) regressed beyond {threshold}% + noise");
        std::process::exit(1);
    }
    println!("graf-perf: no regressions beyond {threshold}% + noise");
}
