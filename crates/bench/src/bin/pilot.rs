//! Calibration pilot: full GRAF build on Online Boutique + GRAF-vs-HPA
//! steady-state comparison. Not a paper figure; used to validate defaults.
use std::time::Instant;

use graf_bench::standard::{boutique_setup, build_graf};
use graf_bench::Args;
use graf_core::baseline::{run_steady, tune_hpa_threshold, SteadyTrial};
use graf_sim::time::SimDuration;

fn main() {
    let args = Args::parse();
    let prof = args.prof();
    let setup = boutique_setup();

    let t0 = Instant::now();
    let graf = build_graf(&setup, &args);
    println!("build: {:.1}s ({} samples)", t0.elapsed().as_secs_f64(), graf.samples.len());
    println!("bounds lower: {:?}", graf.bounds.lower.iter().map(|v| v.round()).collect::<Vec<_>>());
    println!("bounds upper: {:?}", graf.bounds.upper.iter().map(|v| v.round()).collect::<Vec<_>>());
    println!("val loss: first {:.4} best {:.4}", graf.report.val_loss[0], graf.report.best_val);
    let table = graf.model.error_table(&graf.test_set);
    for r in &table.regions {
        println!("err {}: {:.1}% (n={})", r.0, r.3, r.4);
    }
    println!(
        "overestimate: {:.1}% of points, mean {:.1}%",
        table.overestimate_fraction * 100.0,
        table.mean_overestimate_pct
    );

    // What does GRAF want at the probe workload?
    let mut ctrl = graf.controller(setup.slo_ms);
    ctrl.set_prof(prof.clone());
    let t1 = Instant::now();
    let (quotas, res) = ctrl.plan(&setup.probe_qps);
    println!(
        "solve: {:.1} ms wall, {} iters, pred {:.1} ms",
        t1.elapsed().as_secs_f64() * 1000.0,
        res.iterations,
        res.predicted_ms
    );
    println!(
        "quotas: {:?} (total {:.0})",
        quotas.iter().map(|v| v.round()).collect::<Vec<_>>(),
        quotas.iter().sum::<f64>()
    );

    // Tune HPA once at the reference workload (as the paper does), then
    // compare GRAF vs that fixed threshold across workload multipliers.
    let grid: Vec<f64> = (1..=17).map(|i| 0.9 - 0.05 * i as f64).collect(); // 0.85..0.05
    let unit = setup.cpu_unit_mc;
    let mut ref_trial = SteadyTrial::new(setup.topo.clone(), setup.probe_qps.clone());
    ref_trial.cpu_unit_mc = unit;
    ref_trial.warmup = SimDuration::from_secs(180.0);
    ref_trial.measure = SimDuration::from_secs(120.0);
    ref_trial.seed = args.seed ^ 0xEEE;
    let t3 = Instant::now();
    let (thr, _) = tune_hpa_threshold(&ref_trial, setup.slo_ms, &grid);
    println!("HPA tuned once: threshold {thr:.2} ({:.0}s wall)", t3.elapsed().as_secs_f64());

    for mult in [1.0, 2.0, 3.0] {
        let rates: Vec<f64> = setup.probe_qps.iter().map(|q| q * mult).collect();
        let mut trial = ref_trial.clone();
        trial.rates = rates;

        let mut graf_ctrl = graf.controller(setup.slo_ms);
        graf_ctrl.set_prof(prof.clone());
        let graf_out = run_steady(&trial, &mut graf_ctrl);
        let mut hpa = graf_core::baseline::hpa_with_threshold(thr, setup.topo.num_services());
        let hpa_out = run_steady(&trial, &mut hpa);
        let saving = 1.0 - graf_out.mean_quota_mc / hpa_out.mean_quota_mc;
        println!(
            "mult={mult}: GRAF p99 {:?} quota {:.0} inst {:.1} | HPA p99 {:?} quota {:.0} inst {:.1} | saving {:.1}%",
            graf_out.p99_ms.map(|v| v.round()), graf_out.mean_quota_mc, graf_out.mean_instances,
            hpa_out.p99_ms.map(|v| v.round()), hpa_out.mean_quota_mc, hpa_out.mean_instances,
            saving * 100.0,
        );
        println!(
            "  graf per-svc: {:?}",
            graf_out.per_service_quota_mc.iter().map(|v| v.round()).collect::<Vec<_>>()
        );
        println!(
            "  hpa  per-svc: {:?}",
            hpa_out.per_service_quota_mc.iter().map(|v| v.round()).collect::<Vec<_>>()
        );
    }
    args.finish_profile(&prof);
}
