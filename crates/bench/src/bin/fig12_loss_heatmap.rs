//! Figure 12: heat-map of the configuration solver's loss over two services'
//! quotas (§5.2, *Configuration solver*).
//!
//! The loss surface `Σr + ρ·max(0, L̂ − SLO)` restricted to two quota axes is
//! empirically convex-ish: a violation wall at low quotas (the penalty) and a
//! gentle resource slope at high quotas, so gradient descent finds the global
//! optimum along the wall. Rows/columns sweep the two heaviest Online
//! Boutique services; other services stay at GRAF's solved configuration.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin fig12_loss_heatmap
//! ```

use graf_apps::boutique;
use graf_bench::standard::{boutique_setup, build_graf};
use graf_bench::Args;
use graf_core::solver::loss_at;

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    println!("# Figure 12 — solver loss over (recommendation, shipping) quotas");
    println!("training GRAF...");
    let graf = build_graf(&setup, &args);
    let mut ctrl = graf.controller(setup.slo_ms);
    let (solved, res) = ctrl.plan(&setup.probe_qps);
    println!(
        "solved configuration: {:?} (predicted {:.1} ms)",
        solved.iter().map(|v| v.round()).collect::<Vec<_>>(),
        res.predicted_ms
    );

    let workloads = graf.analyzer.service_workloads(&setup.probe_qps);
    let (a, b) = (boutique::RECOMMENDATION as usize, boutique::SHIPPING as usize);
    let steps = 12;
    let range = |i: usize, lo: f64, hi: f64| lo + (hi - lo) * i as f64 / (steps - 1) as f64;
    let (alo, ahi) = (graf.bounds.lower[a], graf.bounds.upper[a]);
    let (blo, bhi) = (graf.bounds.lower[b], graf.bounds.upper[b]);

    // Header: shipping quota columns.
    print!("rec\\ship");
    for j in 0..steps {
        print!(",{:.0}", range(j, blo, bhi));
    }
    println!();
    let mut model = graf.model.clone();
    let _ = &mut model;
    for i in 0..steps {
        let qa = range(i, alo, ahi);
        print!("{qa:.0}");
        for j in 0..steps {
            let qb = range(j, blo, bhi);
            let mut quotas = solved.clone();
            quotas[a] = qa;
            quotas[b] = qb;
            let loss = loss_at(&graf.model, &workloads, &quotas, setup.slo_ms, 40.0);
            print!(",{loss:.2}");
        }
        println!();
    }
    println!("\n(low-quota corner: SLO-violation penalty wall; high-quota corner: resource cost)");
}
