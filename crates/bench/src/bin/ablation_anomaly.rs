//! Ablation of the §6 "actively removing contention anomalies" extension:
//! GRAF alone vs GRAF wrapped in the [`graf_core::AnomalyGuard`] while a
//! contention event hits one microservice.
//!
//! GRAF minimizes resources for the modeled surface, so an unmodeled
//! contention spike (injected via the simulator's fault injection) violates
//! the SLO until the anomaly clears; the guard detects the per-service p99
//! excursion and temporarily boosts the afflicted service.
//!
//! ```sh
//! cargo run --release -p graf-bench --bin ablation_anomaly
//! ```

use graf_apps::online_boutique;
use graf_bench::standard::{boutique_setup, build_graf};
use graf_bench::timeline::{percentile_between, run_with_timeline};
use graf_bench::Args;
use graf_core::{AnomalyGuard, AnomalyGuardConfig};
use graf_loadgen::OpenLoop;
use graf_orchestrator::{Autoscaler, Cluster, CreationModel, Deployment};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{SimConfig, World};

const CONTENTION_FROM_S: f64 = 420.0;
const CONTENTION_TO_S: f64 = 600.0;
const END_S: f64 = 780.0;

fn run(
    setup: &graf_bench::standard::AppSetup,
    scaler: &mut dyn Autoscaler,
    seed: u64,
) -> (f64, f64, f64) {
    let topo = online_boutique();
    let mut world = World::new(topo.clone(), SimConfig::default(), seed);
    // recommendation (MS5) suffers 4x contention for 3 minutes.
    world.inject_contention(
        ServiceId(4),
        4.0,
        SimTime::from_secs(CONTENTION_FROM_S),
        SimTime::from_secs(CONTENTION_TO_S),
    );
    let deployments = (0..topo.num_services())
        .map(|s| Deployment::new(ServiceId(s as u16), setup.cpu_unit_mc, 6))
        .collect();
    let mut cluster = Cluster::new(world, deployments, CreationModel::default());
    let mut load = OpenLoop::new(seed ^ 0xA0).poisson();
    for (api, &r) in setup.probe_qps.iter().enumerate() {
        load = load.rate(ApiId(api as u16), r);
    }
    let (tl, comps) = run_with_timeline(
        &mut cluster,
        &mut load,
        scaler,
        SimTime::from_secs(END_S),
        SimDuration::from_secs(5.0),
    );
    let during = percentile_between(&comps, CONTENTION_FROM_S + 30.0, CONTENTION_TO_S, 0.99)
        .unwrap_or(f64::NAN);
    let violation_frac = {
        let pts: Vec<_> =
            tl.iter().filter(|p| p.t_s >= CONTENTION_FROM_S && p.t_s < CONTENTION_TO_S).collect();
        pts.iter().filter(|p| p.p99_ms.is_some_and(|v| v > setup.slo_ms)).count() as f64
            / pts.len().max(1) as f64
    };
    let mean_inst =
        tl.iter().filter(|p| p.t_s >= 120.0).map(|p| p.total_instances as f64).sum::<f64>()
            / tl.iter().filter(|p| p.t_s >= 120.0).count().max(1) as f64;
    (during, violation_frac, mean_inst)
}

fn main() {
    let args = Args::parse();
    let setup = boutique_setup();
    println!(
        "# Anomaly-guard ablation — 4× contention on recommendation during \
         [{CONTENTION_FROM_S}, {CONTENTION_TO_S}) s"
    );
    println!("training GRAF...");
    let graf = build_graf(&setup, &args);

    let mut plain = graf.controller(setup.slo_ms);
    let (p99_plain, viol_plain, inst_plain) = run(&setup, &mut plain, args.seed);

    let guarded_inner = graf.controller(setup.slo_ms);
    let mut guarded =
        AnomalyGuard::new(guarded_inner, setup.topo.num_services(), AnomalyGuardConfig::default());
    let (p99_guard, viol_guard, inst_guard) = run(&setup, &mut guarded, args.seed);

    println!(
        "\n{:<16} {:>16} {:>18} {:>16}",
        "controller", "p99 during (ms)", "SLO-violating time", "mean instances"
    );
    println!(
        "{:<16} {:>16.0} {:>17.0}% {:>16.1}",
        "GRAF",
        p99_plain,
        viol_plain * 100.0,
        inst_plain
    );
    println!(
        "{:<16} {:>16.0} {:>17.0}% {:>16.1}",
        "GRAF + guard",
        p99_guard,
        viol_guard * 100.0,
        inst_guard
    );
    println!("guard triggers: {}", guarded.triggers);
    println!(
        "\n(the guard spends a few extra instances during the anomaly to cut the \
         violation window — the §6 trade-off made concrete)"
    );
}
