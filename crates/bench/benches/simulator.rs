//! Criterion bench: discrete-event simulator throughput — how much simulated
//! traffic the substrate pushes per wall-second. This bounds how fast the
//! sample collector (§3.7) can gather training data.

use criterion::{criterion_group, criterion_main, Criterion};
use graf_apps::online_boutique;
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::{SimConfig, World};

/// Simulates 10 s of Online Boutique at the standard mix.
fn simulate_10s(seed: u64, trace: bool) -> u64 {
    let topo = online_boutique();
    let cfg = SimConfig { trace_sample: if trace { 1.0 } else { 0.0 }, ..SimConfig::default() };
    let mut w = World::new(topo, cfg, seed);
    for s in 0..6u16 {
        w.add_instances(ServiceId(s), 4, 250.0, SimTime::ZERO);
    }
    let mut rng = graf_sim::rng::DetRng::new(seed ^ 0x51);
    for (api, rate) in [(0u16, 180.0f64), (1, 180.0), (2, 240.0)] {
        let mut t = 0.0;
        loop {
            t += rng.exp(1e6 / rate);
            if t >= 10e6 {
                break;
            }
            w.inject(ApiId(api), SimTime(t as u64));
        }
    }
    w.run_until(SimTime::from_secs(10.0));
    w.stats().completed
}

fn bench_sim(c: &mut Criterion) {
    c.bench_function("boutique_10s_600qps_no_tracing", |b| b.iter(|| simulate_10s(9, false)));
    c.bench_function("boutique_10s_600qps_full_tracing", |b| b.iter(|| simulate_10s(9, true)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim
}
criterion_main!(benches);
