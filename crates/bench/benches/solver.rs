//! Criterion bench: configuration-solver latency (§3.8 claims 3.4–6.8 s on
//! the paper's Python/GPU stack; this measures our per-solve cost).

use criterion::{criterion_group, criterion_main, Criterion};
use graf_core::features::FeatureScaler;
use graf_core::latency_model::{LatencyModel, NetKind, TrainConfig};
use graf_core::sample_collector::{Bounds, Sample};
use graf_core::solver::{solve, SolverConfig};
use graf_sim::rng::DetRng;

/// Trains a 6-service chain model on a synthetic convex surface (no
/// simulation in the hot loop — this isolates the solver).
fn trained_model() -> (LatencyModel, Bounds, Vec<f64>) {
    let works = [0.5, 0.2, 0.4, 0.3, 1.0, 0.8];
    let n = works.len();
    let mut rng = DetRng::new(42);
    let mut samples = Vec::new();
    for _ in 0..800 {
        let w = rng.uniform(50.0, 250.0);
        let quotas: Vec<f64> =
            works.iter().map(|wk| rng.uniform(100.0 + wk * 260.0, 2000.0)).collect();
        let mut p99 = 4.0;
        for i in 0..n {
            let head = (quotas[i] - w * works[i]).max(10.0);
            p99 += 600.0 * works[i] / head + works[i];
        }
        samples.push(Sample {
            api_rates: vec![w],
            workloads: vec![w; n],
            quotas_mc: quotas,
            p99_ms: p99,
        });
    }
    let scaler = FeatureScaler::fit(
        samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
    );
    let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
    let split = ds.split(0.8, 0.1, 1);
    let edges: Vec<(u16, u16)> = (0..n as u16 - 1).map(|i| (i, i + 1)).collect();
    let mut model = LatencyModel::new(NetKind::Gnn, &edges, n, scaler, split.train.label_mean(), 3);
    model.train(&split, &TrainConfig { epochs: 30, evals: 5, ..Default::default() });
    let bounds =
        Bounds { lower: works.iter().map(|w| 100.0 + w * 260.0).collect(), upper: vec![2000.0; n] };
    (model, bounds, vec![150.0; n])
}

fn bench_solver(c: &mut Criterion) {
    let (mut model, bounds, workloads) = trained_model();
    let cfg = SolverConfig::default();
    c.bench_function("solve_6_services", |b| {
        b.iter(|| solve(&mut model, &workloads, 40.0, &bounds, &cfg))
    });
    c.bench_function("predict_6_services", |b| {
        b.iter(|| model.predict_ms(&workloads, &bounds.upper))
    });
    c.bench_function("grad_quota_6_services", |b| {
        b.iter(|| model.grad_quota(&workloads, &bounds.upper))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_solver
}
criterion_main!(benches);
