//! Criterion bench: latency-prediction-model training throughput — one
//! Adam step on a 256-sample batch (Table 1's batch size), GNN vs the
//! no-MPNN ablation, at Online Boutique (6 nodes) and Social Network
//! (10 nodes) sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use graf_gnn::{FlatMlp, GnnConfig, GraphSpec, LatencyNet, MicroserviceGnn};
use graf_nn::{Adam, AsymmetricHuber, Matrix};
use graf_sim::rng::DetRng;

fn batch(n_nodes: usize, batch: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = DetRng::new(seed);
    let x = Matrix::from_fn(batch, n_nodes * 2, |_, _| rng.unit());
    let y = (0..batch).map(|_| rng.uniform(0.2, 3.0)).collect();
    (x, y)
}

fn chain_edges(n: usize) -> Vec<(u16, u16)> {
    (0..n as u16 - 1).map(|i| (i, i + 1)).collect()
}

fn bench_training(c: &mut Criterion) {
    let loss = AsymmetricHuber::default();
    for &n in &[6usize, 10] {
        let (x, y) = batch(n, 256, 7);
        let mut rng = DetRng::new(1);
        let mut gnn = MicroserviceGnn::new(
            GraphSpec::from_edges(n, &chain_edges(n)),
            GnnConfig::default(),
            &mut rng,
        );
        let mut opt = Adam::new(1e-3);
        let mut drop_rng = DetRng::new(2);
        c.bench_function(&format!("gnn_train_step_{n}_nodes_b256"), |b| {
            b.iter(|| gnn.train_step(&x, &y, &loss, &mut opt, &mut drop_rng))
        });
        c.bench_function(&format!("gnn_predict_{n}_nodes_b256"), |b| b.iter(|| gnn.predict(&x)));

        let mut flat = FlatMlp::new(n, 2, 120, 0.25, &mut rng);
        let mut opt2 = Adam::new(1e-3);
        c.bench_function(&format!("flat_train_step_{n}_nodes_b256"), |b| {
            b.iter(|| flat.train_step(&x, &y, &loss, &mut opt2, &mut drop_rng))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_training
}
criterion_main!(benches);
