//! Zero-allocation steady state for the GNN (`--features sanitize`).
//!
//! One full `train_step` — chunked forward with dropout, backward through the
//! stacked message-passing kernels, ordered gradient reduction, split Adam
//! update — must not touch the heap once its buffers are warm, on the
//! `threads <= 1` inline path (the counter is thread-local, so the measured
//! work must stay on the measuring thread).

#![cfg(feature = "sanitize")]

use graf_gnn::{FlatMlp, GnnConfig, GraphSpec, LatencyNet, MicroserviceGnn};
use graf_nn::sanitize::assert_no_alloc;
use graf_nn::{Adam, AsymmetricHuber, Matrix};
use graf_sim::rng::DetRng;

fn gnn() -> MicroserviceGnn {
    let mut rng = DetRng::new(3);
    let graph = GraphSpec::from_edges(3, &[(0, 1), (1, 2)]);
    MicroserviceGnn::new(graph, GnnConfig::default(), &mut rng)
}

#[test]
fn gnn_train_step_is_allocation_free_in_steady_state() {
    let mut net = gnn();
    net.set_threads(1);
    let x = Matrix::from_fn(32, 6, |r, c| ((r * 5 + c * 3) % 11) as f64 / 11.0);
    let y: Vec<f64> = (0..32).map(|r| 0.5 + 0.1 * (r % 7) as f64).collect();
    let loss = AsymmetricHuber::default();
    let mut opt = Adam::new(1e-3);
    let mut rng = DetRng::new(4);

    for _ in 0..3 {
        net.train_step(&x, &y, &loss, &mut opt, &mut rng);
    }
    let l = assert_no_alloc("gnn train step", || net.train_step(&x, &y, &loss, &mut opt, &mut rng));
    assert!(l.is_finite());
}

#[test]
fn gnn_solver_fast_path_is_allocation_free_in_steady_state() {
    let mut net = gnn();
    let x = Matrix::from_fn(1, 6, |_, c| 0.2 + 0.1 * c as f64);
    let mut pred: Vec<f64> = Vec::new();
    let mut dx = Matrix::default();

    net.predict_keep_into(&x, &mut pred);
    net.grad_from_kept_into(&x, &mut dx);
    assert_no_alloc("gnn predict_keep_into + grad_from_kept_into", || {
        net.predict_keep_into(&x, &mut pred);
        net.grad_from_kept_into(&x, &mut dx);
    });
    assert_eq!(pred.len(), 1);
    assert_eq!((dx.rows(), dx.cols()), (1, 6));
}

#[test]
fn flat_mlp_train_step_is_allocation_free_in_steady_state() {
    let mut rng = DetRng::new(5);
    let mut net = FlatMlp::new(3, 2, 16, 0.1, &mut rng);
    let x = Matrix::from_fn(32, 6, |r, c| ((r * 7 + c) % 9) as f64 / 9.0);
    let y: Vec<f64> = (0..32).map(|r| 0.3 + 0.05 * (r % 5) as f64).collect();
    let loss = AsymmetricHuber::default();
    let mut opt = Adam::new(1e-3);
    let mut train_rng = DetRng::new(6);

    for _ in 0..3 {
        net.train_step(&x, &y, &loss, &mut opt, &mut train_rng);
    }
    let l = assert_no_alloc("flat-mlp train step", || {
        net.train_step(&x, &y, &loss, &mut opt, &mut train_rng)
    });
    assert!(l.is_finite());
}
