//! The common interface of latency-prediction networks.

use graf_nn::{Adam, AsymmetricHuber, Matrix};
use graf_sim::rng::DetRng;

/// A network mapping per-service `(workload, quota)` features to predicted
/// end-to-end tail latency.
///
/// Input format: one row per sample, `num_nodes × feature_dim` columns in
/// node-major order (node 0's features first).
pub trait LatencyNet {
    /// Number of graph nodes (microservices).
    fn num_nodes(&self) -> usize;

    /// Features per node (2 in the paper: workload, quota).
    fn feature_dim(&self) -> usize;

    /// Predicts latency for a batch (eval mode, dropout off).
    fn predict(&self, x: &Matrix) -> Vec<f64>;

    /// One training step: forward in train mode, asymmetric-Hüber loss,
    /// backward, Adam update. Returns the batch loss.
    fn train_step(
        &mut self,
        x: &Matrix,
        y: &[f64],
        loss: &AsymmetricHuber,
        opt: &mut Adam,
        rng: &mut DetRng,
    ) -> f64;

    /// Evaluation loss without updating parameters.
    fn eval_loss(&self, x: &Matrix, y: &[f64], loss: &AsymmetricHuber) -> f64 {
        let pred = self.predict(x);
        loss.batch(&pred, y).0
    }

    /// Gradient of the summed prediction with respect to the input features
    /// (eval mode). Shape matches `x`. This is what the configuration solver
    /// chains with its own loss to walk quotas downhill (§3.5).
    fn grad_input(&mut self, x: &Matrix) -> Matrix;

    /// Total scalar parameter count.
    fn num_params(&self) -> usize;

    /// Clones the network behind the trait object (used to snapshot the
    /// best-validation checkpoint during training, §3.4).
    fn boxed_clone(&self) -> Box<dyn LatencyNet + Send>;
}
