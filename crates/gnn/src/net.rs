//! The common interface of latency-prediction networks.

use graf_nn::{Adam, AsymmetricHuber, Matrix};
use graf_sim::rng::DetRng;

/// A network mapping per-service `(workload, quota)` features to predicted
/// end-to-end tail latency.
///
/// Input format: one row per sample, `num_nodes × feature_dim` columns in
/// node-major order (node 0's features first).
pub trait LatencyNet {
    /// Number of graph nodes (microservices).
    fn num_nodes(&self) -> usize;

    /// Features per node (2 in the paper: workload, quota).
    fn feature_dim(&self) -> usize;

    /// Predicts latency for a batch (eval mode, dropout off).
    fn predict(&self, x: &Matrix) -> Vec<f64>;

    /// One training step: forward in train mode, asymmetric-Hüber loss,
    /// backward, Adam update. Returns the batch loss.
    fn train_step(
        &mut self,
        x: &Matrix,
        y: &[f64],
        loss: &AsymmetricHuber,
        opt: &mut Adam,
        rng: &mut DetRng,
    ) -> f64;

    /// Evaluation loss without updating parameters.
    fn eval_loss(&self, x: &Matrix, y: &[f64], loss: &AsymmetricHuber) -> f64 {
        let pred = self.predict(x);
        loss.batch(&pred, y).0
    }

    /// Gradient of the summed prediction with respect to the input features
    /// (eval mode). Shape matches `x`. This is what the configuration solver
    /// chains with its own loss to walk quotas downhill (§3.5).
    fn grad_input(&mut self, x: &Matrix) -> Matrix;

    /// Sets the worker-thread count used by [`LatencyNet::train_step`].
    /// Implementations without a parallel path ignore it.
    fn set_threads(&mut self, _threads: usize) {}

    /// Attaches a self-profiler handle; instrumented implementations
    /// attribute [`LatencyNet::train_step`] wall time to training phases
    /// (`train.forward_backward`, `train.reduce`, `train.optimizer`).
    /// Implementations without instrumentation ignore it. Profiling never
    /// alters numerics: a disabled handle costs one branch per scope.
    fn set_prof(&mut self, _prof: graf_prof::Prof) {}

    /// Eval-mode prediction that retains the forward trace so a following
    /// [`LatencyNet::grad_from_kept`] can reuse it (the solver's fused
    /// forward+backward fast path, §3.5). Default: plain [`predict`].
    ///
    /// [`predict`]: LatencyNet::predict
    fn predict_keep(&mut self, x: &Matrix) -> Vec<f64> {
        self.predict(x)
    }

    /// Input gradient reusing the trace retained by the immediately preceding
    /// [`LatencyNet::predict_keep`] call on the same batch `x`. Default: a
    /// fresh [`LatencyNet::grad_input`] (correct but re-runs the forward).
    fn grad_from_kept(&mut self, x: &Matrix) -> Matrix {
        self.grad_input(x)
    }

    /// [`LatencyNet::predict_keep`] writing predictions into `out` (cleared
    /// and refilled, capacity reused). The default delegates and copies;
    /// implementations override it to skip the intermediate `Vec` so the
    /// solver's per-iteration forward is allocation-free in steady state.
    fn predict_keep_into(&mut self, x: &Matrix, out: &mut Vec<f64>) {
        let pred = self.predict_keep(x);
        out.clear();
        out.extend_from_slice(&pred);
    }

    /// [`LatencyNet::grad_from_kept`] writing the input gradient into `dx`
    /// (reshaped in place). The default delegates and copies; implementations
    /// override it to write straight from their retained scratch.
    fn grad_from_kept_into(&mut self, x: &Matrix, dx: &mut Matrix) {
        let g = self.grad_from_kept(x);
        dx.copy_from(&g);
    }

    /// `(reused, allocated)` scratch-buffer counts since construction, for
    /// telemetry (allocation-avoidance counters). Default: zeros.
    fn scratch_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Total scalar parameter count.
    fn num_params(&self) -> usize;

    /// Clones the network behind the trait object (used to snapshot the
    /// best-validation checkpoint during training, §3.4).
    fn boxed_clone(&self) -> Box<dyn LatencyNet + Send>;
}
