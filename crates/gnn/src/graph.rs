//! The directed service graph message passing runs over.

/// A directed graph over `num_nodes` services, stored as per-node parent
/// lists (`N(i)` in the paper's eq. 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSpec {
    parents: Vec<Vec<u16>>,
}

impl GraphSpec {
    /// Builds a graph from `(parent, child)` edges.
    ///
    /// # Panics
    /// Panics if an edge references a node `>= num_nodes` or is a self-loop.
    pub fn from_edges(num_nodes: usize, edges: &[(u16, u16)]) -> Self {
        let mut parents = vec![Vec::new(); num_nodes];
        for &(p, c) in edges {
            assert!((p as usize) < num_nodes && (c as usize) < num_nodes, "edge out of range");
            assert_ne!(p, c, "self-loops are not meaningful in a call graph");
            if !parents[c as usize].contains(&p) {
                parents[c as usize].push(p);
            }
        }
        for p in &mut parents {
            p.sort_unstable();
        }
        Self { parents }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parents.len()
    }

    /// Parent set of node `i`.
    pub fn parents(&self, i: usize) -> &[u16] {
        &self.parents[i]
    }

    /// All edges, sorted `(parent, child)`.
    pub fn edges(&self) -> Vec<(u16, u16)> {
        let mut v = Vec::new();
        for (c, ps) in self.parents.iter().enumerate() {
            for &p in ps {
                v.push((p, c as u16));
            }
        }
        v.sort_unstable();
        v
    }

    /// Nodes with no parents (front ends).
    pub fn roots(&self) -> Vec<u16> {
        (0..self.parents.len() as u16).filter(|&i| self.parents[i as usize].is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parents_are_collected_and_deduped() {
        let g = GraphSpec::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 1)]);
        assert_eq!(g.parents(0), &[] as &[u16]);
        assert_eq!(g.parents(1), &[0]);
        assert_eq!(g.parents(3), &[1, 2]);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.edges(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        GraphSpec::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "edge out of range")]
    fn out_of_range_rejected() {
        GraphSpec::from_edges(2, &[(0, 5)]);
    }
}
