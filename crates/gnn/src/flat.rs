//! The "GRAF without MPNN" ablation model (§5.1, Figure 11).
//!
//! Identical readout capacity, but applied directly to the concatenated raw
//! node features — no message passing, no graph structure. The paper shows it
//! trains faster but generalizes worse; [`crate::MicroserviceGnn`] should
//! beat it on held-out data.

use std::cell::RefCell;

use graf_nn::{Adam, AsymmetricHuber, Matrix, Mlp, MlpGrads, MlpTrace, Mode, Workspace};
use graf_sim::rng::DetRng;

use crate::net::LatencyNet;

/// Reusable forward/backward buffers (trace, scratch pool, gradient sink).
#[derive(Default)]
struct FlatScratch {
    trace: MlpTrace,
    out: Matrix,
    dy: Matrix,
    dx: Matrix,
    ws: Workspace,
    grads: MlpGrads,
    /// Row count of the retained eval forward (0 = no valid trace).
    kept_rows: usize,
}

/// A plain MLP over concatenated node features.
pub struct FlatMlp {
    num_nodes: usize,
    feature_dim: usize,
    mlp: Mlp,
    scratch: RefCell<FlatScratch>,
}

impl Clone for FlatMlp {
    fn clone(&self) -> Self {
        Self {
            num_nodes: self.num_nodes,
            feature_dim: self.feature_dim,
            mlp: self.mlp.clone(),
            scratch: RefCell::new(FlatScratch::default()),
        }
    }
}

impl FlatMlp {
    /// Creates the ablation model with the same readout shape as the GNN
    /// (two hidden layers of `hidden` units, dropout `dropout`).
    pub fn new(
        num_nodes: usize,
        feature_dim: usize,
        hidden: usize,
        dropout: f64,
        rng: &mut DetRng,
    ) -> Self {
        let mlp = Mlp::new(&[num_nodes * feature_dim, hidden, hidden, 1], dropout, rng);
        Self { num_nodes, feature_dim, mlp, scratch: RefCell::new(FlatScratch::default()) }
    }
}

impl FlatMlp {
    /// Backward through the retained eval trace, leaving `d pred / d x` in
    /// `scratch.dx`. Gradients land in the scratch sink, never the params.
    fn backward_kept(&mut self, x: &Matrix) {
        let sc = self.scratch.get_mut();
        sc.dy.reshape_zeroed(x.rows(), 1);
        sc.dy.data_mut().fill(1.0);
        sc.grads.prepare(&self.mlp);
        self.mlp.backward_with(&sc.trace, &sc.dy, &mut sc.grads, &mut sc.ws, &mut sc.dx);
    }
}

impl LatencyNet for FlatMlp {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut sc = self.scratch.borrow_mut();
        let sc = &mut *sc;
        self.mlp.forward_into(x, &mut Mode::Eval, &mut sc.trace, &mut sc.out);
        sc.kept_rows = x.rows();
        sc.out.data().to_vec()
    }

    fn train_step(
        &mut self,
        x: &Matrix,
        y: &[f64],
        loss: &AsymmetricHuber,
        opt: &mut Adam,
        rng: &mut DetRng,
    ) -> f64 {
        assert_eq!(x.rows(), y.len(), "batch size mismatch");
        let sc = self.scratch.get_mut();
        sc.kept_rows = 0; // parameters change below: kept trace is stale
        self.mlp.forward_into(x, &mut Mode::Train(rng), &mut sc.trace, &mut sc.out);
        sc.dy.reshape_zeroed(x.rows(), 1);
        let l = loss.batch_into(sc.out.data(), y, sc.dy.data_mut());
        sc.grads.prepare(&self.mlp);
        self.mlp.backward_with(&sc.trace, &sc.dy, &mut sc.grads, &mut sc.ws, &mut sc.dx);
        self.mlp.accumulate_grads(&sc.grads);
        // Split step: no `Vec<&mut Param>` temporary on the training path.
        opt.begin_step();
        let opt = &mut *opt;
        self.mlp.for_each_param_mut(|p| opt.update(p));
        l
    }

    fn grad_input(&mut self, x: &Matrix) -> Matrix {
        {
            let sc = self.scratch.get_mut();
            self.mlp.forward_into(x, &mut Mode::Eval, &mut sc.trace, &mut sc.out);
            sc.kept_rows = x.rows();
        }
        self.grad_from_kept(x)
    }

    fn grad_from_kept(&mut self, x: &Matrix) -> Matrix {
        if self.scratch.get_mut().kept_rows != x.rows() {
            return self.grad_input(x);
        }
        self.backward_kept(x);
        self.scratch.get_mut().dx.clone()
    }

    fn predict_keep_into(&mut self, x: &Matrix, out: &mut Vec<f64>) {
        let sc = self.scratch.get_mut();
        self.mlp.forward_into(x, &mut Mode::Eval, &mut sc.trace, &mut sc.out);
        sc.kept_rows = x.rows();
        out.clear();
        out.extend_from_slice(sc.out.data());
    }

    fn grad_from_kept_into(&mut self, x: &Matrix, dx: &mut Matrix) {
        if self.scratch.get_mut().kept_rows != x.rows() {
            let sc = self.scratch.get_mut();
            self.mlp.forward_into(x, &mut Mode::Eval, &mut sc.trace, &mut sc.out);
            sc.kept_rows = x.rows();
        }
        self.backward_kept(x);
        dx.copy_from(&self.scratch.get_mut().dx);
    }

    fn scratch_stats(&self) -> (u64, u64) {
        self.scratch.borrow().ws.stats()
    }

    fn num_params(&self) -> usize {
        self.mlp.num_params()
    }

    fn boxed_clone(&self) -> Box<dyn LatencyNet + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_prediction() {
        let mut rng = DetRng::new(1);
        let m = FlatMlp::new(3, 2, 16, 0.0, &mut rng);
        assert_eq!(m.num_nodes(), 3);
        assert_eq!(m.feature_dim(), 2);
        let x = Matrix::from_fn(4, 6, |r, c| (r + c) as f64 * 0.1);
        assert_eq!(m.predict(&x).len(), 4);
    }

    #[test]
    fn trains_on_simple_target() {
        let mut rng = DetRng::new(2);
        let mut m = FlatMlp::new(2, 2, 24, 0.0, &mut rng);
        let x = Matrix::from_fn(128, 4, |r, c| ((r * 7 + c * 3) % 13) as f64 / 13.0);
        let y: Vec<f64> = (0..128).map(|r| 1.0 + x.get(r, 0) * 2.0 + x.get(r, 3)).collect();
        let loss = AsymmetricHuber::default();
        let mut opt = Adam::new(3e-3);
        let mut train_rng = DetRng::new(3);
        let first = m.eval_loss(&x, &y, &loss);
        for _ in 0..400 {
            m.train_step(&x, &y, &loss, &mut opt, &mut train_rng);
        }
        let last = m.eval_loss(&x, &y, &loss);
        assert!(last < first * 0.3, "{first} → {last}");
    }

    #[test]
    fn grad_input_has_input_shape() {
        let mut rng = DetRng::new(4);
        let mut m = FlatMlp::new(2, 2, 8, 0.0, &mut rng);
        let x = Matrix::from_fn(3, 4, |_, c| c as f64);
        let g = m.grad_input(&x);
        assert_eq!((g.rows(), g.cols()), (3, 4));
    }

    #[test]
    fn kept_trace_gradient_matches_fresh_gradient() {
        let mut rng = DetRng::new(5);
        let mut m = FlatMlp::new(2, 2, 8, 0.0, &mut rng);
        let x = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f64 * 0.1);
        let slow = m.grad_input(&x);
        let _ = m.predict(&x);
        let fast = m.grad_from_kept(&x);
        assert_eq!(slow.data(), fast.data());
    }
}
