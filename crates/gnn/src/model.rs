//! The MPNN + readout latency prediction model (§3.4, Figure 9).
//!
//! ## Stacked-node compute layout
//!
//! φ and γ share weights across nodes, so instead of applying them once per
//! node as n small `B × F` matmuls, the forward pass vertically stacks the
//! per-node batches into one `(n·B) × F` matrix (node `i`'s batch occupying
//! rows `i·B .. (i+1)·B`) and runs each network **once** per layer. Message
//! aggregation, the `[x ‖ msg]` concatenation, and the gradient scatter all
//! become contiguous row-block copies/adds on the stacked matrices. Because
//! every kernel processes rows independently with a fixed reduction order,
//! stacked predictions and input gradients are bit-identical to the
//! per-node formulation (the equivalence tests below assert this).
//!
//! ## Deterministic data-parallel training
//!
//! `train_step` shards the mini-batch into fixed `CHUNK_ROWS`-row chunks
//! — a partition that does **not** depend on the worker count — draws each
//! chunk's dropout seed from the training RNG in chunk order on the calling
//! thread, fans the chunks out over `std::thread::scope` workers
//! (round-robin by chunk index), and then reduces the per-chunk gradient
//! sinks into the parameters in ascending chunk order. Every float is
//! therefore produced by the same operation sequence regardless of thread
//! count: training is bit-for-bit run-to-run *and* thread-count invariant.

use std::cell::RefCell;

use graf_nn::{Adam, AsymmetricHuber, Matrix, Mlp, MlpGrads, MlpTrace, Mode, Workspace};
use graf_sim::rng::DetRng;

use crate::graph::GraphSpec;
use crate::net::LatencyNet;

/// Rows per training shard. Fixed (never derived from the thread count) so
/// the chunk partition — and with it every floating-point reduction order —
/// is identical for any number of workers.
const CHUNK_ROWS: usize = 64;

/// Architecture hyper-parameters (§4 defaults).
#[derive(Clone, Debug)]
pub struct GnnConfig {
    /// Features per node (workload, quota → 2).
    pub feature_dim: usize,
    /// Message vector width.
    pub msg_dim: usize,
    /// Node-embedding width.
    pub embed_dim: usize,
    /// Hidden width of the φ/γ MLPs ("two hidden layers with 20 hidden
    /// units", §4).
    pub hidden: usize,
    /// Hidden width of the readout FC ("two hidden layers with 120 hidden
    /// units", §4).
    pub readout_hidden: usize,
    /// Dropout probability (Table 1: 0.25).
    pub dropout: f64,
}

impl Default for GnnConfig {
    fn default() -> Self {
        Self {
            feature_dim: 2,
            msg_dim: 20,
            embed_dim: 20,
            hidden: 20,
            readout_hidden: 120,
            dropout: 0.25,
        }
    }
}

/// The five shared-weight networks. Split out of [`MicroserviceGnn`] so the
/// training fan-out can share them immutably (`&GnnNets` is `Sync`) while
/// each worker owns its mutable scratch.
#[derive(Clone)]
struct GnnNets {
    phi1: Mlp,
    gamma1: Mlp,
    phi2: Mlp,
    gamma2: Mlp,
    readout: Mlp,
}

/// Per-shard gradient sinks, one [`MlpGrads`] per network.
#[derive(Default)]
struct GnnGrads {
    phi1: MlpGrads,
    gamma1: MlpGrads,
    phi2: MlpGrads,
    gamma2: MlpGrads,
    readout: MlpGrads,
}

impl GnnGrads {
    /// Shapes every sink for `nets` (reusing allocations) and zeroes them.
    fn prepare(&mut self, nets: &GnnNets) {
        self.phi1.prepare(&nets.phi1);
        self.gamma1.prepare(&nets.gamma1);
        self.phi2.prepare(&nets.phi2);
        self.gamma2.prepare(&nets.gamma2);
        self.readout.prepare(&nets.readout);
    }
}

/// Reusable forward/backward state for one batch shard: traces, stacked
/// activations, a scratch-buffer pool, and the gradient sinks. Steady-state
/// passes through a warm `GnnPass` do not touch the heap.
#[derive(Default)]
struct GnnPass {
    ws: Workspace,
    t_phi1: MlpTrace,
    t_gamma1: MlpTrace,
    t_phi2: MlpTrace,
    t_gamma2: MlpTrace,
    t_read: MlpTrace,
    /// Node-stacked input features, `(n·B) × F`.
    xs: Matrix,
    /// Readout input, `B × (n·embed)`.
    read_in: Matrix,
    /// Predictions, `B × 1`.
    y: Matrix,
    /// Output gradient fed to backward, `B × 1`.
    dy: Matrix,
    /// Node-stacked input gradient, `(n·B) × F`.
    dx_stacked: Matrix,
    /// Input gradient in batch layout, `B × (n·F)`.
    dx: Matrix,
    grads: GnnGrads,
    /// This shard's (already batch-weighted) loss contribution.
    loss: f64,
}

/// Cached per-layer weight transposes for every net. One refresh serves
/// every backward pass until the next parameter update — all shards of a
/// training step, and every gradient call of a solver run — instead of each
/// backward re-materialising the transposes itself.
#[derive(Default)]
struct NetWts {
    phi1: Vec<Matrix>,
    gamma1: Vec<Matrix>,
    phi2: Vec<Matrix>,
    gamma2: Vec<Matrix>,
    readout: Vec<Matrix>,
    /// False whenever the parameters may have changed since the last refresh.
    valid: bool,
}

impl NetWts {
    fn refresh(&mut self, nets: &GnnNets) {
        if self.valid {
            return;
        }
        nets.phi1.transpose_weights_into(&mut self.phi1);
        nets.gamma1.transpose_weights_into(&mut self.gamma1);
        nets.phi2.transpose_weights_into(&mut self.phi2);
        nets.gamma2.transpose_weights_into(&mut self.gamma2);
        nets.readout.transpose_weights_into(&mut self.readout);
        self.valid = true;
    }
}

/// Mutable per-model scratch, behind a `RefCell` so eval-mode entry points
/// (`predict` takes `&self`) can reuse buffers too. Never shared across
/// threads: workers each get their own [`GnnPass`] out of `chunks`.
#[derive(Default)]
struct GnnScratch {
    /// Pass used by predict / grad_input / the solver's kept-trace path.
    eval: GnnPass,
    /// Row count of the retained eval forward (0 = no valid trace).
    kept_rows: usize,
    /// One pass per training shard.
    chunks: Vec<GnnPass>,
    /// Per-chunk dropout seeds, drawn in chunk order on the calling thread.
    seeds: Vec<u64>,
    /// Weight transposes shared by every backward between parameter updates.
    wts: NetWts,
}

/// The paper's latency prediction model: two message-passing steps over the
/// microservice graph, then a fully connected readout over the flattened node
/// embeddings.
pub struct MicroserviceGnn {
    graph: GraphSpec,
    cfg: GnnConfig,
    nets: GnnNets,
    threads: usize,
    prof: graf_prof::Prof,
    scratch: RefCell<GnnScratch>,
}

impl Clone for MicroserviceGnn {
    fn clone(&self) -> Self {
        Self {
            graph: self.graph.clone(),
            cfg: self.cfg.clone(),
            nets: self.nets.clone(),
            threads: self.threads,
            prof: self.prof.clone(),
            scratch: RefCell::new(GnnScratch::default()),
        }
    }
}

/// Copies rows `r0..r1` of the batch-layout `x` (`B × (n·f)`) into the
/// node-stacked layout (`(n·(r1-r0)) × f`, node `i`'s rows contiguous).
fn stack_nodes(x: &Matrix, r0: usize, r1: usize, n: usize, f: usize, out: &mut Matrix) {
    let b = r1 - r0;
    debug_assert_eq!(x.cols(), n * f);
    out.reshape_for_overwrite(n * b, f);
    for i in 0..n {
        for r in 0..b {
            let src = &x.row(r0 + r)[i * f..(i + 1) * f];
            out.row_mut(i * b + r).copy_from_slice(src);
        }
    }
}

/// Inverse of [`stack_nodes`]: `(n·B) × d` stacked → `B × (n·d)` batch layout.
fn unstack_nodes(s: &Matrix, n: usize, out: &mut Matrix) {
    let d = s.cols();
    let b = s.rows() / n;
    debug_assert_eq!(s.rows(), n * b);
    out.reshape_for_overwrite(b, n * d);
    for i in 0..n {
        for r in 0..b {
            let src = s.row(i * b + r);
            out.row_mut(r)[i * d..(i + 1) * d].copy_from_slice(src);
        }
    }
}

/// Message aggregation on the stacked layout: node `i`'s message rows are
/// the sum of its parents' φ-output row blocks, added in parent order.
fn gather_messages(graph: &GraphSpec, b: usize, phi_out: &Matrix, msg: &mut Matrix) {
    msg.reshape_zeroed(phi_out.rows(), phi_out.cols());
    for i in 0..graph.num_nodes() {
        for &p in graph.parents(i) {
            for r in 0..b {
                let src = phi_out.row(p as usize * b + r);
                for (v, &s) in msg.row_mut(i * b + r).iter_mut().zip(src) {
                    *v += s;
                }
            }
        }
    }
}

/// Gradient scatter adjoint to [`gather_messages`]: child `i`'s message
/// gradient (columns `f..` of `d_gin`) accumulates into each parent's
/// φ-output gradient rows, iterated in the same child-then-parent order as
/// the per-node formulation.
fn scatter_msg_grads(
    graph: &GraphSpec,
    b: usize,
    f: usize,
    d_gin: &Matrix,
    d_phi_out: &mut Matrix,
) {
    let m = d_phi_out.cols();
    for i in 0..graph.num_nodes() {
        for &p in graph.parents(i) {
            for r in 0..b {
                let src = &d_gin.row(i * b + r)[f..f + m];
                for (v, &s) in d_phi_out.row_mut(p as usize * b + r).iter_mut().zip(src) {
                    *v += s;
                }
            }
        }
    }
}

/// `out = src[:, from..from+width]` (reshaped in place).
fn copy_cols_window(src: &Matrix, from: usize, width: usize, out: &mut Matrix) {
    out.reshape_for_overwrite(src.rows(), width);
    for r in 0..src.rows() {
        out.row_mut(r).copy_from_slice(&src.row(r)[from..from + width]);
    }
}

/// `dst += src[:, from..from+dst.cols()]`.
fn add_cols_window(src: &Matrix, from: usize, dst: &mut Matrix) {
    let w = dst.cols();
    for r in 0..dst.rows() {
        let s = &src.row(r)[from..from + w];
        for (v, &x) in dst.row_mut(r).iter_mut().zip(s) {
            *v += x;
        }
    }
}

/// Stacked forward pass over rows `r0..r1` of `x`, leaving predictions in
/// `pass.y` and the traces needed by [`backward_stacked`] in `pass`.
#[allow(clippy::too_many_arguments)]
fn forward_stacked(
    nets: &GnnNets,
    graph: &GraphSpec,
    cfg: &GnnConfig,
    x: &Matrix,
    r0: usize,
    r1: usize,
    mode: &mut Mode<'_>,
    pass: &mut GnnPass,
) {
    let n = graph.num_nodes();
    let (f, m, e) = (cfg.feature_dim, cfg.msg_dim, cfg.embed_dim);
    let b = r1 - r0;
    assert_eq!(x.cols(), n * f, "input width must be num_nodes × feature_dim");
    stack_nodes(x, r0, r1, n, f, &mut pass.xs);

    // Step 1: φ₁ over the raw features, aggregate, γ₁ on [x ‖ msg].
    let mut phi_out = pass.ws.take(n * b, m);
    nets.phi1.forward_into(&pass.xs, mode, &mut pass.t_phi1, &mut phi_out);
    let mut msg = pass.ws.take(n * b, m);
    gather_messages(graph, b, &phi_out, &mut msg);
    pass.ws.give(phi_out);
    let mut gin = pass.ws.take(n * b, f + m);
    Matrix::hcat_into(&[&pass.xs, &msg], &mut gin);
    pass.ws.give(msg);
    let mut e1 = pass.ws.take(n * b, e);
    nets.gamma1.forward_into(&gin, mode, &mut pass.t_gamma1, &mut e1);
    pass.ws.give(gin);

    // Step 2: φ₂ over the step-1 embeddings, aggregate, γ₂ on [x ‖ msg].
    let mut phi2_out = pass.ws.take(n * b, m);
    nets.phi2.forward_into(&e1, mode, &mut pass.t_phi2, &mut phi2_out);
    pass.ws.give(e1);
    let mut msg2 = pass.ws.take(n * b, m);
    gather_messages(graph, b, &phi2_out, &mut msg2);
    pass.ws.give(phi2_out);
    let mut gin2 = pass.ws.take(n * b, f + m);
    Matrix::hcat_into(&[&pass.xs, &msg2], &mut gin2);
    pass.ws.give(msg2);
    let mut e2 = pass.ws.take(n * b, e);
    nets.gamma2.forward_into(&gin2, mode, &mut pass.t_gamma2, &mut e2);
    pass.ws.give(gin2);

    // Readout over the flattened embeddings.
    unstack_nodes(&e2, n, &mut pass.read_in);
    pass.ws.give(e2);
    nets.readout.forward_into(&pass.read_in, mode, &mut pass.t_read, &mut pass.y);
}

/// Stacked backward pass for the forward recorded in `pass` (output gradient
/// in `pass.dy`). Parameter gradients accumulate into `pass.grads` (prepare
/// them first); the input gradient lands in `pass.dx` (`B × (n·F)`). The
/// networks are untouched.
fn backward_stacked(
    nets: &GnnNets,
    graph: &GraphSpec,
    cfg: &GnnConfig,
    wts: &NetWts,
    pass: &mut GnnPass,
) {
    let n = graph.num_nodes();
    let (f, m, e) = (cfg.feature_dim, cfg.msg_dim, cfg.embed_dim);
    let b = pass.dy.rows();

    // Readout.
    let mut d_read_in = pass.ws.take(b, n * e);
    nets.readout.backward_with_wt(
        &pass.t_read,
        &pass.dy,
        &mut pass.grads.readout,
        &mut pass.ws,
        &mut d_read_in,
        &wts.readout,
    );
    let mut d_e2 = pass.ws.take(n * b, e);
    stack_nodes(&d_read_in, 0, b, n, e, &mut d_e2);
    pass.ws.give(d_read_in);

    // Step 2 backward.
    let mut d_gin2 = pass.ws.take(n * b, f + m);
    nets.gamma2.backward_with_wt(
        &pass.t_gamma2,
        &d_e2,
        &mut pass.grads.gamma2,
        &mut pass.ws,
        &mut d_gin2,
        &wts.gamma2,
    );
    pass.ws.give(d_e2);
    copy_cols_window(&d_gin2, 0, f, &mut pass.dx_stacked);
    let mut d_phi2_out = pass.ws.take(n * b, m);
    scatter_msg_grads(graph, b, f, &d_gin2, &mut d_phi2_out);
    pass.ws.give(d_gin2);
    let mut d_e1 = pass.ws.take(n * b, e);
    nets.phi2.backward_with_wt(
        &pass.t_phi2,
        &d_phi2_out,
        &mut pass.grads.phi2,
        &mut pass.ws,
        &mut d_e1,
        &wts.phi2,
    );
    pass.ws.give(d_phi2_out);

    // Step 1 backward.
    let mut d_gin1 = pass.ws.take(n * b, f + m);
    nets.gamma1.backward_with_wt(
        &pass.t_gamma1,
        &d_e1,
        &mut pass.grads.gamma1,
        &mut pass.ws,
        &mut d_gin1,
        &wts.gamma1,
    );
    pass.ws.give(d_e1);
    add_cols_window(&d_gin1, 0, &mut pass.dx_stacked);
    let mut d_phi1_out = pass.ws.take(n * b, m);
    scatter_msg_grads(graph, b, f, &d_gin1, &mut d_phi1_out);
    pass.ws.give(d_gin1);
    let mut d_x_phi = pass.ws.take(n * b, f);
    nets.phi1.backward_with_wt(
        &pass.t_phi1,
        &d_phi1_out,
        &mut pass.grads.phi1,
        &mut pass.ws,
        &mut d_x_phi,
        &wts.phi1,
    );
    pass.ws.give(d_phi1_out);
    pass.dx_stacked.add_assign(&d_x_phi);
    pass.ws.give(d_x_phi);

    unstack_nodes(&pass.dx_stacked, n, &mut pass.dx);
}

impl MicroserviceGnn {
    /// Creates a model for `graph` with He-initialized weights from `rng`.
    pub fn new(graph: GraphSpec, cfg: GnnConfig, rng: &mut DetRng) -> Self {
        let n = graph.num_nodes();
        assert!(n > 0, "graph must have nodes");
        let f = cfg.feature_dim;
        let phi1 = Mlp::new(&[f, cfg.hidden, cfg.hidden, cfg.msg_dim], 0.0, rng);
        let gamma1 = Mlp::new(&[f + cfg.msg_dim, cfg.hidden, cfg.hidden, cfg.embed_dim], 0.0, rng);
        let phi2 = Mlp::new(&[cfg.embed_dim, cfg.hidden, cfg.hidden, cfg.msg_dim], 0.0, rng);
        let gamma2 = Mlp::new(&[f + cfg.msg_dim, cfg.hidden, cfg.hidden, cfg.embed_dim], 0.0, rng);
        let readout = Mlp::new(
            &[n * cfg.embed_dim, cfg.readout_hidden, cfg.readout_hidden, 1],
            cfg.dropout,
            rng,
        );
        Self {
            graph,
            cfg,
            nets: GnnNets { phi1, gamma1, phi2, gamma2, readout },
            threads: 1,
            prof: graf_prof::Prof::disabled(),
            scratch: RefCell::new(GnnScratch::default()),
        }
    }

    /// The message-passing graph.
    pub fn graph(&self) -> &GraphSpec {
        &self.graph
    }

    /// Visits every parameter across the five networks in a fixed order,
    /// without collecting references into a `Vec` (the allocation-free
    /// optimizer path — pair with `Adam::begin_step` + `Adam::update`).
    fn for_each_param_mut(&mut self, mut f: impl FnMut(&mut graf_nn::Param)) {
        self.nets.phi1.for_each_param_mut(&mut f);
        self.nets.gamma1.for_each_param_mut(&mut f);
        self.nets.phi2.for_each_param_mut(&mut f);
        self.nets.gamma2.for_each_param_mut(&mut f);
        self.nets.readout.for_each_param_mut(&mut f);
    }

    /// Backward through the retained eval trace, leaving `d pred / d x` in
    /// `scratch.eval.dx`.
    fn backward_kept(&mut self, x: &Matrix) {
        let sc = self.scratch.get_mut();
        sc.eval.dy.reshape_zeroed(x.rows(), 1);
        sc.eval.dy.data_mut().fill(1.0);
        sc.eval.grads.prepare(&self.nets);
        sc.wts.refresh(&self.nets);
        // Gradients land in the scratch sinks, never the parameters, so
        // training state is untouched by construction.
        backward_stacked(&self.nets, &self.graph, &self.cfg, &sc.wts, &mut sc.eval);
    }
}

impl LatencyNet for MicroserviceGnn {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn feature_dim(&self) -> usize {
        self.cfg.feature_dim
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut sc = self.scratch.borrow_mut();
        let sc = &mut *sc;
        forward_stacked(
            &self.nets,
            &self.graph,
            &self.cfg,
            x,
            0,
            x.rows(),
            &mut Mode::Eval,
            &mut sc.eval,
        );
        sc.kept_rows = x.rows();
        sc.eval.y.data().to_vec()
    }

    fn train_step(
        &mut self,
        x: &Matrix,
        y: &[f64],
        loss: &AsymmetricHuber,
        opt: &mut Adam,
        rng: &mut DetRng,
    ) -> f64 {
        assert_eq!(x.rows(), y.len(), "batch size mismatch");
        let b = x.rows();
        let n_chunks = b.div_ceil(CHUNK_ROWS).max(1);
        let mut scratch = std::mem::take(self.scratch.get_mut());
        scratch.kept_rows = 0; // parameters are about to change: kept trace is stale
        scratch.seeds.clear();
        for _ in 0..n_chunks {
            scratch.seeds.push(rng.uniform_u64(0, u64::MAX));
        }
        if scratch.chunks.len() < n_chunks {
            scratch.chunks.resize_with(n_chunks, GnnPass::default);
        }
        {
            let _fb_scope = self.prof.enter("train.forward_backward");
            self.prof.work(n_chunks as u64);
            let (nets, graph, cfg) = (&self.nets, &self.graph, &self.cfg);
            let threads = self.threads.clamp(1, n_chunks);
            let GnnScratch { seeds, chunks, wts, .. } = &mut scratch;
            wts.refresh(nets);
            let seeds = &*seeds;
            let wts = &*wts;
            let run = |pass: &mut GnnPass, ci: usize| {
                let r0 = ci * CHUNK_ROWS;
                let r1 = (r0 + CHUNK_ROWS).min(b);
                let mut drop_rng = DetRng::new(seeds[ci]);
                forward_stacked(nets, graph, cfg, x, r0, r1, &mut Mode::Train(&mut drop_rng), pass);
                // The chunk loss/gradient are means over the chunk; weight by
                // chunk_size/batch_size so the reduced step equals one full-
                // batch step.
                let frac = (r1 - r0) as f64 / b as f64;
                pass.dy.reshape_zeroed(r1 - r0, 1);
                let chunk_loss = loss.batch_into(pass.y.data(), &y[r0..r1], pass.dy.data_mut());
                for g in pass.dy.data_mut() {
                    *g *= frac;
                }
                pass.loss = chunk_loss * frac;
                pass.grads.prepare(nets);
                backward_stacked(nets, graph, cfg, wts, pass);
            };
            if threads <= 1 {
                for (ci, pass) in chunks[..n_chunks].iter_mut().enumerate() {
                    run(pass, ci);
                }
            } else {
                let mut buckets: Vec<Vec<(usize, &mut GnnPass)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (ci, pass) in chunks[..n_chunks].iter_mut().enumerate() {
                    buckets[ci % threads].push((ci, pass));
                }
                let run = &run;
                std::thread::scope(|s| {
                    for bucket in buckets {
                        s.spawn(move || {
                            for (ci, pass) in bucket {
                                run(pass, ci);
                            }
                        });
                    }
                });
            }
        }
        // Ordered reduction: chunk gradients fold into the parameters in
        // ascending chunk index, so the sum is identical for any thread count.
        let _reduce_scope = self.prof.enter("train.reduce");
        let mut total = 0.0;
        for pass in &scratch.chunks[..n_chunks] {
            // graf-lint: allow(float-reduction, this IS the ordered reduction — ascending chunk index, thread-count-invariant by tier-1 test)
            total += pass.loss;
            self.nets.phi1.accumulate_grads(&pass.grads.phi1);
            self.nets.gamma1.accumulate_grads(&pass.grads.gamma1);
            self.nets.phi2.accumulate_grads(&pass.grads.phi2);
            self.nets.gamma2.accumulate_grads(&pass.grads.gamma2);
            self.nets.readout.accumulate_grads(&pass.grads.readout);
        }
        // Split step across the five networks: no `Vec<&mut Param>` temporary.
        drop(_reduce_scope);
        let _opt_scope = self.prof.enter("train.optimizer");
        opt.begin_step();
        self.for_each_param_mut(|p| opt.update(p));
        // Parameters just changed: the transpose cache is stale.
        scratch.wts.valid = false;
        *self.scratch.get_mut() = scratch;
        total
    }

    fn grad_input(&mut self, x: &Matrix) -> Matrix {
        {
            let sc = self.scratch.get_mut();
            forward_stacked(
                &self.nets,
                &self.graph,
                &self.cfg,
                x,
                0,
                x.rows(),
                &mut Mode::Eval,
                &mut sc.eval,
            );
            sc.kept_rows = x.rows();
        }
        self.grad_from_kept(x)
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    fn set_prof(&mut self, prof: graf_prof::Prof) {
        self.prof = prof;
    }

    fn grad_from_kept(&mut self, x: &Matrix) -> Matrix {
        if self.scratch.get_mut().kept_rows != x.rows() {
            return self.grad_input(x);
        }
        self.backward_kept(x);
        self.scratch.get_mut().eval.dx.clone()
    }

    fn predict_keep_into(&mut self, x: &Matrix, out: &mut Vec<f64>) {
        let sc = self.scratch.get_mut();
        forward_stacked(
            &self.nets,
            &self.graph,
            &self.cfg,
            x,
            0,
            x.rows(),
            &mut Mode::Eval,
            &mut sc.eval,
        );
        sc.kept_rows = x.rows();
        out.clear();
        out.extend_from_slice(sc.eval.y.data());
    }

    fn grad_from_kept_into(&mut self, x: &Matrix, dx: &mut Matrix) {
        if self.scratch.get_mut().kept_rows != x.rows() {
            let sc = self.scratch.get_mut();
            forward_stacked(
                &self.nets,
                &self.graph,
                &self.cfg,
                x,
                0,
                x.rows(),
                &mut Mode::Eval,
                &mut sc.eval,
            );
            sc.kept_rows = x.rows();
        }
        self.backward_kept(x);
        dx.copy_from(&self.scratch.get_mut().eval.dx);
    }

    fn scratch_stats(&self) -> (u64, u64) {
        let sc = self.scratch.borrow();
        let (mut reused, mut allocated) = sc.eval.ws.stats();
        for c in &sc.chunks {
            let (r, a) = c.ws.stats();
            reused += r;
            allocated += a;
        }
        (reused, allocated)
    }

    fn num_params(&self) -> usize {
        self.nets.phi1.num_params()
            + self.nets.gamma1.num_params()
            + self.nets.phi2.num_params()
            + self.nets.gamma2.num_params()
            + self.nets.readout.num_params()
    }

    fn boxed_clone(&self) -> Box<dyn LatencyNet + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_nn::{Adam, AsymmetricHuber};

    fn chain_graph(n: usize) -> GraphSpec {
        let edges: Vec<(u16, u16)> = (0..n as u16 - 1).map(|i| (i, i + 1)).collect();
        GraphSpec::from_edges(n, &edges)
    }

    fn small_cfg() -> GnnConfig {
        GnnConfig { msg_dim: 6, embed_dim: 6, hidden: 8, readout_hidden: 16, ..Default::default() }
    }

    /// The original per-node formulation, reimplemented over the same MLP
    /// kernels: φ/γ applied once per node on `B × F` slices, messages summed
    /// per node, readout on the horizontal concatenation. The stacked path
    /// must reproduce it bit-for-bit.
    fn per_node_forward(gnn: &MicroserviceGnn, x: &Matrix) -> (Matrix, Vec<f64>) {
        let n = gnn.graph.num_nodes();
        let f = gnn.cfg.feature_dim;
        let xs: Vec<Matrix> = (0..n).map(|i| x.slice_cols(i * f, (i + 1) * f)).collect();
        let batch = x.rows();
        let mp = |phi: &Mlp, gamma: &Mlp, state: &[Matrix]| -> Vec<Matrix> {
            let phi_out: Vec<Matrix> =
                state.iter().map(|s| phi.forward(s, &mut Mode::Eval).0).collect();
            (0..n)
                .map(|i| {
                    let mut msg = Matrix::zeros(batch, gnn.cfg.msg_dim);
                    for &p in gnn.graph.parents(i) {
                        msg.add_assign(&phi_out[p as usize]);
                    }
                    gamma.forward(&Matrix::hcat(&[&xs[i], &msg]), &mut Mode::Eval).0
                })
                .collect()
        };
        let e1 = mp(&gnn.nets.phi1, &gnn.nets.gamma1, &xs);
        let e2 = mp(&gnn.nets.phi2, &gnn.nets.gamma2, &e1);
        let flat: Vec<&Matrix> = e2.iter().collect();
        let read_in = Matrix::hcat(&flat);
        let (y, _) = gnn.nets.readout.forward(&read_in, &mut Mode::Eval);
        let preds = y.data().to_vec();
        (read_in, preds)
    }

    /// Per-node backward (the original node-loop), returning the input
    /// gradient for `dy = 1`.
    fn per_node_grad_input(gnn: &MicroserviceGnn, x: &Matrix) -> Matrix {
        let n = gnn.graph.num_nodes();
        let f = gnn.cfg.feature_dim;
        let e = gnn.cfg.embed_dim;
        let m = gnn.cfg.msg_dim;
        let batch = x.rows();
        let mut nets = gnn.nets.clone();
        let xs: Vec<Matrix> = (0..n).map(|i| x.slice_cols(i * f, (i + 1) * f)).collect();

        // Forward with traces.
        let mut phi1_out = Vec::new();
        let mut phi1_t = Vec::new();
        for s in &xs {
            let (o, t) = nets.phi1.forward(s, &mut Mode::Eval);
            phi1_out.push(o);
            phi1_t.push(t);
        }
        let mut e1 = Vec::new();
        let mut gamma1_t = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            let mut msg = Matrix::zeros(batch, m);
            for &p in gnn.graph.parents(i) {
                msg.add_assign(&phi1_out[p as usize]);
            }
            let (o, t) = nets.gamma1.forward(&Matrix::hcat(&[x, &msg]), &mut Mode::Eval);
            e1.push(o);
            gamma1_t.push(t);
        }
        let mut phi2_out = Vec::new();
        let mut phi2_t = Vec::new();
        for s in &e1 {
            let (o, t) = nets.phi2.forward(s, &mut Mode::Eval);
            phi2_out.push(o);
            phi2_t.push(t);
        }
        let mut e2 = Vec::new();
        let mut gamma2_t = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            let mut msg = Matrix::zeros(batch, m);
            for &p in gnn.graph.parents(i) {
                msg.add_assign(&phi2_out[p as usize]);
            }
            let (o, t) = nets.gamma2.forward(&Matrix::hcat(&[x, &msg]), &mut Mode::Eval);
            e2.push(o);
            gamma2_t.push(t);
        }
        let flat: Vec<&Matrix> = e2.iter().collect();
        let (_, read_t) = nets.readout.forward(&Matrix::hcat(&flat), &mut Mode::Eval);

        // Backward, mirroring the original node loops.
        let ones = Matrix::from_fn(batch, 1, |_, _| 1.0);
        let d_read_in = nets.readout.backward(&read_t, &ones);
        let d_e2: Vec<Matrix> = (0..n).map(|i| d_read_in.slice_cols(i * e, (i + 1) * e)).collect();
        let mut dx: Vec<Matrix> = (0..n).map(|_| Matrix::zeros(batch, f)).collect();
        let mut d_phi2_out: Vec<Matrix> = (0..n).map(|_| Matrix::zeros(batch, m)).collect();
        for i in 0..n {
            let d_gin = nets.gamma2.backward(&gamma2_t[i], &d_e2[i]);
            dx[i].add_assign(&d_gin.slice_cols(0, f));
            let d_msg = d_gin.slice_cols(f, f + m);
            for &p in gnn.graph.parents(i) {
                d_phi2_out[p as usize].add_assign(&d_msg);
            }
        }
        let d_e1: Vec<Matrix> =
            (0..n).map(|j| nets.phi2.backward(&phi2_t[j], &d_phi2_out[j])).collect();
        let mut d_phi1_out: Vec<Matrix> = (0..n).map(|_| Matrix::zeros(batch, m)).collect();
        for i in 0..n {
            let d_gin = nets.gamma1.backward(&gamma1_t[i], &d_e1[i]);
            dx[i].add_assign(&d_gin.slice_cols(0, f));
            let d_msg = d_gin.slice_cols(f, f + m);
            for &p in gnn.graph.parents(i) {
                d_phi1_out[p as usize].add_assign(&d_msg);
            }
        }
        for j in 0..n {
            let g = nets.phi1.backward(&phi1_t[j], &d_phi1_out[j]);
            dx[j].add_assign(&g);
        }
        let refs: Vec<&Matrix> = dx.iter().collect();
        Matrix::hcat(&refs)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = DetRng::new(1);
        let gnn = MicroserviceGnn::new(chain_graph(4), small_cfg(), &mut rng);
        let x = Matrix::from_fn(5, 8, |r, c| (r + c) as f64 * 0.1);
        let y = gnn.predict(&x);
        assert_eq!(y.len(), 5);
        assert_eq!(gnn.num_nodes(), 4);
        assert!(gnn.num_params() > 0);
    }

    #[test]
    fn stacked_forward_is_bit_identical_to_per_node() {
        let mut rng = DetRng::new(21);
        let graph = GraphSpec::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let gnn = MicroserviceGnn::new(graph, small_cfg(), &mut rng);
        let x = Matrix::from_fn(7, 10, |r, c| 0.13 * (r as f64) - 0.07 * (c as f64) + 0.05);
        let (_, reference) = per_node_forward(&gnn, &x);
        let stacked = gnn.predict(&x);
        assert_eq!(stacked, reference, "stacked predictions are bit-identical");
    }

    #[test]
    fn stacked_backward_is_bit_identical_to_per_node() {
        let mut rng = DetRng::new(22);
        let graph = GraphSpec::from_edges(6, &[(0, 1), (1, 2), (1, 3), (1, 4), (4, 5), (3, 5)]);
        let mut gnn = MicroserviceGnn::new(graph, small_cfg(), &mut rng);
        let x = Matrix::from_fn(4, 12, |r, c| 0.05 * (c as f64) - 0.11 * (r as f64) + 0.02);
        let reference = per_node_grad_input(&gnn, &x);
        let stacked = gnn.grad_input(&x);
        assert_eq!(stacked.data(), reference.data(), "input gradients are bit-identical");
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = DetRng::new(2);
        let mut gnn = MicroserviceGnn::new(
            GraphSpec::from_edges(3, &[(0, 1), (0, 2), (1, 2)]),
            small_cfg(),
            &mut rng,
        );
        let x = Matrix::from_fn(2, 6, |r, c| 0.2 * (r as f64) + 0.1 * (c as f64) - 0.15);
        let ana = gnn.grad_input(&x);
        let eps = 1e-6;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let yp: f64 = gnn.predict(&xp).iter().sum();
                let ym: f64 = gnn.predict(&xm).iter().sum();
                let num = (yp - ym) / (2.0 * eps);
                let a = ana.get(r, c);
                assert!(
                    (num - a).abs() < 1e-4 * (1.0 + num.abs()),
                    "grad mismatch at ({r},{c}): num {num} vs ana {a}"
                );
            }
        }
    }

    #[test]
    fn message_passing_propagates_parent_information() {
        // In a 0→1 chain, node 0's features must influence the prediction
        // through messages even if readout weights for node 0's own embedding
        // were zero; weaker but sufficient check: perturbing the *parent*
        // feature changes the output.
        let mut rng = DetRng::new(3);
        let gnn = MicroserviceGnn::new(chain_graph(2), small_cfg(), &mut rng);
        let x0 = Matrix::from_vec(1, 4, vec![0.5, 0.5, 0.5, 0.5]);
        let mut x1 = x0.clone();
        x1.set(0, 0, 0.9); // parent workload changes
        let y0 = gnn.predict(&x0)[0];
        let y1 = gnn.predict(&x1)[0];
        assert!((y0 - y1).abs() > 1e-9, "parent features must matter");
    }

    #[test]
    fn training_reduces_loss_on_synthetic_target() {
        // Target: latency = 1 + 3·w₀/(r₀+0.5) + 2·w₁/(r₁+0.5) — a convex
        // queueing-ish function of (workload, quota) features.
        let mut rng = DetRng::new(4);
        let graph = chain_graph(2);
        let mut gnn = MicroserviceGnn::new(graph, small_cfg(), &mut rng);
        let mut data_rng = DetRng::new(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..256 {
            let w0 = data_rng.uniform(0.1, 1.0);
            let r0 = data_rng.uniform(0.2, 1.0);
            let w1 = data_rng.uniform(0.1, 1.0);
            let r1 = data_rng.uniform(0.2, 1.0);
            xs.push(vec![w0, r0, w1, r1]);
            ys.push(1.0 + 3.0 * w0 / (r0 + 0.5) + 2.0 * w1 / (r1 + 0.5));
        }
        let x = Matrix::from_fn(256, 4, |r, c| xs[r][c]);
        let loss = AsymmetricHuber::default();
        let mut opt = Adam::new(3e-3);
        let mut train_rng = DetRng::new(6);
        let first = gnn.eval_loss(&x, &ys, &loss);
        for _ in 0..300 {
            gnn.train_step(&x, &ys, &loss, &mut opt, &mut train_rng);
        }
        let last = gnn.eval_loss(&x, &ys, &loss);
        assert!(last < first * 0.35, "training must cut loss substantially: {first} → {last}");
    }

    /// Gradient check on a Social-Network-shaped graph (fan-out + rejoin).
    #[test]
    fn input_gradient_matches_fd_on_fanout_graph() {
        let mut rng = DetRng::new(12);
        let graph = GraphSpec::from_edges(6, &[(0, 1), (1, 2), (1, 3), (1, 4), (4, 5), (3, 5)]);
        let mut gnn = MicroserviceGnn::new(graph, small_cfg(), &mut rng);
        let x = Matrix::from_fn(1, 12, |_, c| 0.07 * (c as f64) - 0.3);
        let ana = gnn.grad_input(&x);
        let eps = 1e-6;
        for c in 0..12 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let num = (gnn.predict(&xp)[0] - gnn.predict(&xm)[0]) / (2.0 * eps);
            let a = ana.get(0, c);
            assert!(
                (num - a).abs() < 1e-4 * (1.0 + num.abs()),
                "fan-out grad mismatch at col {c}: {num} vs {a}"
            );
        }
    }

    #[test]
    fn deterministic_training_given_seeds() {
        let run = || {
            let mut rng = DetRng::new(40);
            let mut gnn = MicroserviceGnn::new(chain_graph(3), small_cfg(), &mut rng);
            let x = Matrix::from_fn(32, 6, |r, c| ((r * 3 + c) % 7) as f64 * 0.1);
            let y: Vec<f64> = (0..32).map(|r| 1.0 + (r % 5) as f64).collect();
            let loss = AsymmetricHuber::default();
            let mut opt = Adam::new(1e-3);
            let mut tr = DetRng::new(41);
            for _ in 0..20 {
                gnn.train_step(&x, &y, &loss, &mut opt, &mut tr);
            }
            gnn.predict(&x)
        };
        assert_eq!(run(), run(), "training is bit-for-bit deterministic");
    }

    #[test]
    fn parallel_training_is_thread_count_invariant() {
        // 160 rows → 3 fixed 64-row chunks (64/64/32), regardless of the
        // worker count: results must be bit-identical for 1 vs 4 threads.
        let train = |threads: usize| {
            let mut rng = DetRng::new(50);
            let mut gnn = MicroserviceGnn::new(chain_graph(3), small_cfg(), &mut rng);
            gnn.set_threads(threads);
            let x = Matrix::from_fn(160, 6, |r, c| ((r * 5 + c) % 11) as f64 * 0.07 - 0.2);
            let y: Vec<f64> = (0..160).map(|r| 1.0 + (r % 7) as f64 * 0.5).collect();
            let loss = AsymmetricHuber::default();
            let mut opt = Adam::new(1e-3);
            let mut tr = DetRng::new(51);
            for _ in 0..10 {
                gnn.train_step(&x, &y, &loss, &mut opt, &mut tr);
            }
            gnn.predict(&x)
        };
        assert_eq!(train(1), train(4), "serial and parallel training are bit-identical");
    }

    #[test]
    fn solver_fast_path_matches_grad_input() {
        let mut rng = DetRng::new(60);
        let mut gnn = MicroserviceGnn::new(chain_graph(3), small_cfg(), &mut rng);
        let x = Matrix::from_fn(1, 6, |_, c| 0.1 * (c as f64) + 0.05);
        let slow = gnn.grad_input(&x);
        let pred = gnn.predict(&x); // retains the trace
        let fast = gnn.grad_from_kept(&x);
        assert_eq!(slow.data(), fast.data(), "kept-trace gradient matches the fresh one");
        assert_eq!(pred, gnn.predict(&x), "gradient extraction leaves predictions unchanged");
    }

    #[test]
    fn grad_input_leaves_params_clean() {
        let mut rng = DetRng::new(7);
        let mut gnn = MicroserviceGnn::new(chain_graph(2), small_cfg(), &mut rng);
        let x = Matrix::from_fn(1, 4, |_, c| 0.1 * c as f64 + 0.2);
        let before = gnn.predict(&x);
        let _ = gnn.grad_input(&x);
        // A subsequent train step must start from zero accumulated grads:
        // run a no-op-ish check that predictions are unchanged by grad_input.
        let after = gnn.predict(&x);
        assert_eq!(before, after);
    }

    #[test]
    fn scratch_stats_report_reuse_after_warmup() {
        let mut rng = DetRng::new(70);
        let mut gnn = MicroserviceGnn::new(chain_graph(3), small_cfg(), &mut rng);
        let x = Matrix::from_fn(32, 6, |r, c| (r + c) as f64 * 0.03);
        let y: Vec<f64> = (0..32).map(|r| 1.0 + r as f64 * 0.1).collect();
        let loss = AsymmetricHuber::default();
        let mut opt = Adam::new(1e-3);
        let mut tr = DetRng::new(71);
        for _ in 0..3 {
            gnn.train_step(&x, &y, &loss, &mut opt, &mut tr);
        }
        let (_, allocated_warm) = gnn.scratch_stats();
        for _ in 0..5 {
            gnn.train_step(&x, &y, &loss, &mut opt, &mut tr);
        }
        let (reused, allocated) = gnn.scratch_stats();
        assert_eq!(allocated, allocated_warm, "steady-state training allocates no scratch");
        assert!(reused > 0, "warm buffers are reused");
    }
}
