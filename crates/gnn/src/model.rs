//! The MPNN + readout latency prediction model (§3.4, Figure 9).

use graf_nn::{Adam, AsymmetricHuber, Matrix, Mlp, MlpTrace, Mode};
use graf_sim::rng::DetRng;

use crate::graph::GraphSpec;
use crate::net::LatencyNet;

/// Architecture hyper-parameters (§4 defaults).
#[derive(Clone, Debug)]
pub struct GnnConfig {
    /// Features per node (workload, quota → 2).
    pub feature_dim: usize,
    /// Message vector width.
    pub msg_dim: usize,
    /// Node-embedding width.
    pub embed_dim: usize,
    /// Hidden width of the φ/γ MLPs ("two hidden layers with 20 hidden
    /// units", §4).
    pub hidden: usize,
    /// Hidden width of the readout FC ("two hidden layers with 120 hidden
    /// units", §4).
    pub readout_hidden: usize,
    /// Dropout probability (Table 1: 0.25).
    pub dropout: f64,
}

impl Default for GnnConfig {
    fn default() -> Self {
        Self {
            feature_dim: 2,
            msg_dim: 20,
            embed_dim: 20,
            hidden: 20,
            readout_hidden: 120,
            dropout: 0.25,
        }
    }
}

/// Captured forward state of one GNN application.
pub struct GnnTrace {
    phi1: Vec<MlpTrace>,
    gamma1: Vec<MlpTrace>,
    phi2: Vec<MlpTrace>,
    gamma2: Vec<MlpTrace>,
    readout: MlpTrace,
}

/// The paper's latency prediction model: two message-passing steps over the
/// microservice graph, then a fully connected readout over the flattened node
/// embeddings.
#[derive(Clone)]
pub struct MicroserviceGnn {
    graph: GraphSpec,
    cfg: GnnConfig,
    phi1: Mlp,
    gamma1: Mlp,
    phi2: Mlp,
    gamma2: Mlp,
    readout: Mlp,
}

impl MicroserviceGnn {
    /// Creates a model for `graph` with He-initialized weights from `rng`.
    pub fn new(graph: GraphSpec, cfg: GnnConfig, rng: &mut DetRng) -> Self {
        let n = graph.num_nodes();
        assert!(n > 0, "graph must have nodes");
        let f = cfg.feature_dim;
        let phi1 = Mlp::new(&[f, cfg.hidden, cfg.hidden, cfg.msg_dim], 0.0, rng);
        let gamma1 = Mlp::new(&[f + cfg.msg_dim, cfg.hidden, cfg.hidden, cfg.embed_dim], 0.0, rng);
        let phi2 = Mlp::new(&[cfg.embed_dim, cfg.hidden, cfg.hidden, cfg.msg_dim], 0.0, rng);
        let gamma2 = Mlp::new(&[f + cfg.msg_dim, cfg.hidden, cfg.hidden, cfg.embed_dim], 0.0, rng);
        let readout = Mlp::new(
            &[n * cfg.embed_dim, cfg.readout_hidden, cfg.readout_hidden, 1],
            cfg.dropout,
            rng,
        );
        Self { graph, cfg, phi1, gamma1, phi2, gamma2, readout }
    }

    /// The message-passing graph.
    pub fn graph(&self) -> &GraphSpec {
        &self.graph
    }

    /// Splits a `B × (n·F)` batch into per-node `B × F` matrices.
    fn split_nodes(&self, x: &Matrix) -> Vec<Matrix> {
        let n = self.graph.num_nodes();
        let f = self.cfg.feature_dim;
        assert_eq!(x.cols(), n * f, "input width must be num_nodes × feature_dim");
        (0..n).map(|i| x.slice_cols(i * f, (i + 1) * f)).collect()
    }

    /// One message-passing step: for every node, sum φ(state of parents) and
    /// run γ on `[x_i ‖ message_i]`.
    #[allow(clippy::type_complexity)]
    fn mp_step(
        &self,
        phi: &Mlp,
        gamma: &Mlp,
        x: &[Matrix],
        state: &[Matrix],
        mode: &mut Mode<'_>,
    ) -> (Vec<Matrix>, Vec<MlpTrace>, Vec<MlpTrace>) {
        let n = self.graph.num_nodes();
        let batch = x[0].rows();
        // φ applied to every node's state once (shared weights).
        let mut phi_out = Vec::with_capacity(n);
        let mut phi_traces = Vec::with_capacity(n);
        for s in state {
            let (o, t) = phi.forward(s, mode);
            phi_out.push(o);
            phi_traces.push(t);
        }
        let mut embeds = Vec::with_capacity(n);
        let mut gamma_traces = Vec::with_capacity(n);
        for (i, xi) in x.iter().enumerate() {
            let mut msg = Matrix::zeros(batch, self.cfg.msg_dim);
            for &p in self.graph.parents(i) {
                msg.add_assign(&phi_out[p as usize]);
            }
            let gin = Matrix::hcat(&[xi, &msg]);
            let (e, t) = gamma.forward(&gin, mode);
            embeds.push(e);
            gamma_traces.push(t);
        }
        (embeds, phi_traces, gamma_traces)
    }

    /// Full forward pass. Returns predictions (`B × 1`) and the trace.
    pub fn forward(&self, x: &Matrix, mode: &mut Mode<'_>) -> (Matrix, GnnTrace) {
        let xs = self.split_nodes(x);
        let (e1, phi1_t, gamma1_t) = self.mp_step(&self.phi1, &self.gamma1, &xs, &xs, mode);
        let (e2, phi2_t, gamma2_t) = self.mp_step(&self.phi2, &self.gamma2, &xs, &e1, mode);
        let flat: Vec<&Matrix> = e2.iter().collect();
        let read_in = Matrix::hcat(&flat);
        let (y, read_t) = self.readout.forward(&read_in, mode);
        (
            y,
            GnnTrace {
                phi1: phi1_t,
                gamma1: gamma1_t,
                phi2: phi2_t,
                gamma2: gamma2_t,
                readout: read_t,
            },
        )
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input batch (`B × (n·F)`).
    pub fn backward(&mut self, trace: &GnnTrace, dy: &Matrix) -> Matrix {
        let n = self.graph.num_nodes();
        let f = self.cfg.feature_dim;
        let e = self.cfg.embed_dim;
        let batch = dy.rows();

        // Readout.
        let d_read_in = self.readout.backward(&trace.readout, dy);
        let mut d_e2: Vec<Matrix> =
            (0..n).map(|i| d_read_in.slice_cols(i * e, (i + 1) * e)).collect();

        let mut dx: Vec<Matrix> = (0..n).map(|_| Matrix::zeros(batch, f)).collect();

        // Step 2 backward.
        let mut d_phi2_out: Vec<Matrix> =
            (0..n).map(|_| Matrix::zeros(batch, self.cfg.msg_dim)).collect();
        for i in 0..n {
            let d_gin = self.gamma2.backward(&trace.gamma2[i], &d_e2[i]);
            dx[i].add_assign(&d_gin.slice_cols(0, f));
            let d_msg = d_gin.slice_cols(f, f + self.cfg.msg_dim);
            for &p in self.graph.parents(i) {
                d_phi2_out[p as usize].add_assign(&d_msg);
            }
        }
        let mut d_e1: Vec<Matrix> = (0..n).map(|_| Matrix::zeros(batch, e)).collect();
        for j in 0..n {
            let g = self.phi2.backward(&trace.phi2[j], &d_phi2_out[j]);
            d_e1[j].add_assign(&g);
        }
        // e2 gradients fully consumed.
        d_e2.clear();

        // Step 1 backward.
        let mut d_phi1_out: Vec<Matrix> =
            (0..n).map(|_| Matrix::zeros(batch, self.cfg.msg_dim)).collect();
        for i in 0..n {
            let d_gin = self.gamma1.backward(&trace.gamma1[i], &d_e1[i]);
            dx[i].add_assign(&d_gin.slice_cols(0, f));
            let d_msg = d_gin.slice_cols(f, f + self.cfg.msg_dim);
            for &p in self.graph.parents(i) {
                d_phi1_out[p as usize].add_assign(&d_msg);
            }
        }
        for j in 0..n {
            // φ1 was applied to the raw features.
            let g = self.phi1.backward(&trace.phi1[j], &d_phi1_out[j]);
            dx[j].add_assign(&g);
        }

        let refs: Vec<&Matrix> = dx.iter().collect();
        Matrix::hcat(&refs)
    }

    fn all_params(&mut self) -> Vec<&mut graf_nn::Param> {
        let mut v = Vec::new();
        v.extend(self.phi1.params_mut());
        v.extend(self.gamma1.params_mut());
        v.extend(self.phi2.params_mut());
        v.extend(self.gamma2.params_mut());
        v.extend(self.readout.params_mut());
        v
    }

    fn zero_grads(&mut self) {
        for p in self.all_params() {
            p.zero_grad();
        }
    }
}

impl LatencyNet for MicroserviceGnn {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn feature_dim(&self) -> usize {
        self.cfg.feature_dim
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let (y, _) = self.forward(x, &mut Mode::Eval);
        y.data().to_vec()
    }

    fn train_step(
        &mut self,
        x: &Matrix,
        y: &[f64],
        loss: &AsymmetricHuber,
        opt: &mut Adam,
        rng: &mut DetRng,
    ) -> f64 {
        assert_eq!(x.rows(), y.len(), "batch size mismatch");
        let (pred, trace) = self.forward(x, &mut Mode::Train(rng));
        let (l, grad) = loss.batch(pred.data(), y);
        let dy = Matrix::from_vec(x.rows(), 1, grad);
        self.backward(&trace, &dy);
        opt.step(&mut self.all_params());
        l
    }

    fn grad_input(&mut self, x: &Matrix) -> Matrix {
        let (y, trace) = self.forward(x, &mut Mode::Eval);
        let ones = Matrix::from_fn(y.rows(), 1, |_, _| 1.0);
        let dx = self.backward(&trace, &ones);
        // grad_input must not perturb training state.
        self.zero_grads();
        dx
    }

    fn num_params(&self) -> usize {
        self.phi1.num_params()
            + self.gamma1.num_params()
            + self.phi2.num_params()
            + self.gamma2.num_params()
            + self.readout.num_params()
    }

    fn boxed_clone(&self) -> Box<dyn LatencyNet + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_nn::{Adam, AsymmetricHuber};

    fn chain_graph(n: usize) -> GraphSpec {
        let edges: Vec<(u16, u16)> = (0..n as u16 - 1).map(|i| (i, i + 1)).collect();
        GraphSpec::from_edges(n, &edges)
    }

    fn small_cfg() -> GnnConfig {
        GnnConfig { msg_dim: 6, embed_dim: 6, hidden: 8, readout_hidden: 16, ..Default::default() }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = DetRng::new(1);
        let gnn = MicroserviceGnn::new(chain_graph(4), small_cfg(), &mut rng);
        let x = Matrix::from_fn(5, 8, |r, c| (r + c) as f64 * 0.1);
        let (y, _) = gnn.forward(&x, &mut Mode::Eval);
        assert_eq!((y.rows(), y.cols()), (5, 1));
        assert_eq!(gnn.num_nodes(), 4);
        assert!(gnn.num_params() > 0);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = DetRng::new(2);
        let mut gnn = MicroserviceGnn::new(
            GraphSpec::from_edges(3, &[(0, 1), (0, 2), (1, 2)]),
            small_cfg(),
            &mut rng,
        );
        let x = Matrix::from_fn(2, 6, |r, c| 0.2 * (r as f64) + 0.1 * (c as f64) - 0.15);
        let ana = gnn.grad_input(&x);
        let eps = 1e-6;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let yp: f64 = gnn.predict(&xp).iter().sum();
                let ym: f64 = gnn.predict(&xm).iter().sum();
                let num = (yp - ym) / (2.0 * eps);
                let a = ana.get(r, c);
                assert!(
                    (num - a).abs() < 1e-4 * (1.0 + num.abs()),
                    "grad mismatch at ({r},{c}): num {num} vs ana {a}"
                );
            }
        }
    }

    #[test]
    fn message_passing_propagates_parent_information() {
        // In a 0→1 chain, node 0's features must influence the prediction
        // through messages even if readout weights for node 0's own embedding
        // were zero; weaker but sufficient check: perturbing the *parent*
        // feature changes the output.
        let mut rng = DetRng::new(3);
        let gnn = MicroserviceGnn::new(chain_graph(2), small_cfg(), &mut rng);
        let x0 = Matrix::from_vec(1, 4, vec![0.5, 0.5, 0.5, 0.5]);
        let mut x1 = x0.clone();
        x1.set(0, 0, 0.9); // parent workload changes
        let y0 = gnn.predict(&x0)[0];
        let y1 = gnn.predict(&x1)[0];
        assert!((y0 - y1).abs() > 1e-9, "parent features must matter");
    }

    #[test]
    fn training_reduces_loss_on_synthetic_target() {
        // Target: latency = 1 + 3·w₀/(r₀+0.5) + 2·w₁/(r₁+0.5) — a convex
        // queueing-ish function of (workload, quota) features.
        let mut rng = DetRng::new(4);
        let graph = chain_graph(2);
        let mut gnn = MicroserviceGnn::new(graph, small_cfg(), &mut rng);
        let mut data_rng = DetRng::new(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..256 {
            let w0 = data_rng.uniform(0.1, 1.0);
            let r0 = data_rng.uniform(0.2, 1.0);
            let w1 = data_rng.uniform(0.1, 1.0);
            let r1 = data_rng.uniform(0.2, 1.0);
            xs.push(vec![w0, r0, w1, r1]);
            ys.push(1.0 + 3.0 * w0 / (r0 + 0.5) + 2.0 * w1 / (r1 + 0.5));
        }
        let x = Matrix::from_fn(256, 4, |r, c| xs[r][c]);
        let loss = AsymmetricHuber::default();
        let mut opt = Adam::new(3e-3);
        let mut train_rng = DetRng::new(6);
        let first = gnn.eval_loss(&x, &ys, &loss);
        for _ in 0..300 {
            gnn.train_step(&x, &ys, &loss, &mut opt, &mut train_rng);
        }
        let last = gnn.eval_loss(&x, &ys, &loss);
        assert!(last < first * 0.35, "training must cut loss substantially: {first} → {last}");
    }

    /// Gradient check on a Social-Network-shaped graph (fan-out + rejoin).
    #[test]
    fn input_gradient_matches_fd_on_fanout_graph() {
        let mut rng = DetRng::new(12);
        let graph = GraphSpec::from_edges(6, &[(0, 1), (1, 2), (1, 3), (1, 4), (4, 5), (3, 5)]);
        let mut gnn = MicroserviceGnn::new(graph, small_cfg(), &mut rng);
        let x = Matrix::from_fn(1, 12, |_, c| 0.07 * (c as f64) - 0.3);
        let ana = gnn.grad_input(&x);
        let eps = 1e-6;
        for c in 0..12 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let num = (gnn.predict(&xp)[0] - gnn.predict(&xm)[0]) / (2.0 * eps);
            let a = ana.get(0, c);
            assert!(
                (num - a).abs() < 1e-4 * (1.0 + num.abs()),
                "fan-out grad mismatch at col {c}: {num} vs {a}"
            );
        }
    }

    #[test]
    fn deterministic_training_given_seeds() {
        let run = || {
            let mut rng = DetRng::new(40);
            let mut gnn = MicroserviceGnn::new(chain_graph(3), small_cfg(), &mut rng);
            let x = Matrix::from_fn(32, 6, |r, c| ((r * 3 + c) % 7) as f64 * 0.1);
            let y: Vec<f64> = (0..32).map(|r| 1.0 + (r % 5) as f64).collect();
            let loss = AsymmetricHuber::default();
            let mut opt = Adam::new(1e-3);
            let mut tr = DetRng::new(41);
            for _ in 0..20 {
                gnn.train_step(&x, &y, &loss, &mut opt, &mut tr);
            }
            gnn.predict(&x)
        };
        assert_eq!(run(), run(), "training is bit-for-bit deterministic");
    }

    #[test]
    fn grad_input_leaves_params_clean() {
        let mut rng = DetRng::new(7);
        let mut gnn = MicroserviceGnn::new(chain_graph(2), small_cfg(), &mut rng);
        let x = Matrix::from_fn(1, 4, |_, c| 0.1 * c as f64 + 0.2);
        let before = gnn.predict(&x);
        let _ = gnn.grad_input(&x);
        // A subsequent train step must start from zero accumulated grads:
        // run a no-op-ish check that predictions are unchanged by grad_input.
        let after = gnn.predict(&x);
        assert_eq!(before, after);
    }
}
