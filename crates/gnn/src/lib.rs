//! # graf-gnn
//!
//! The paper's latency-prediction network (§3.4): a message-passing neural
//! network (MPNN, Gilmer et al.) over the microservice graph followed by a
//! fully connected readout, plus the "GRAF without MPNN" ablation model of
//! §5.1/Figure 11.
//!
//! * [`GraphSpec`] — the directed service graph (parent → child edges
//!   extracted from traces or the static topology).
//! * [`MicroserviceGnn`] — two message-passing steps implementing eq. (3),
//!   `e_i = γ^(k)(x_i, Σ_{j∈N(i)} φ^(k)(e_j))`, where `N(i)` are `i`'s
//!   parents and γ/φ are 2-hidden-layer 20-unit MLPs, then a flattened
//!   readout through a 2-hidden-layer 120-unit MLP with dropout 0.25 (§4).
//! * [`FlatMlp`] — the ablation: the same readout applied directly to the
//!   concatenated raw node features, skipping message passing.
//! * [`LatencyNet`] — the common interface both models expose to GRAF's
//!   training loop and configuration solver. Crucially it provides
//!   [`LatencyNet::grad_input`], the gradient of the predicted latency with
//!   respect to the node features — the quantity the solver differentiates
//!   to walk CPU quotas downhill (§3.5).
//!
//! Node features follow §3.3: `x_i = [workload l_i, CPU quota r_i]` (scaled).
//!
//! **Invariants.** Training and inference are bit-deterministic for any
//! worker-thread count: mini-batches shard into fixed-size chunks with
//! seeds drawn in chunk order and gradients reduced in ascending chunk
//! order (see `model`). Steady-state prediction and training allocate
//! nothing after warm-up — enforced by the `sanitize` counting-allocator
//! tests and the `graf-lint` hot-path pass.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod flat;
pub mod graph;
pub mod model;
pub mod net;

pub use flat::FlatMlp;
pub use graph::GraphSpec;
pub use model::{GnnConfig, MicroserviceGnn};
pub use net::LatencyNet;
