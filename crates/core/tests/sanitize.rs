//! Zero-allocation steady state for the control plane
//! (`--features sanitize`).
//!
//! * One **solver iteration** — the body of `solve_observed`'s descent loop:
//!   unscale quotas, fused predict+gradient, chain rule, Adam step, clamp —
//!   must not touch the heap once the model's scratch is warm.
//! * One **pilot tick** — `GrafController::tick` over a live cluster — is
//!   allowed its small fixed set of per-tick buffers (rates, units, counts,
//!   solver setup), but that count must be bounded and stable: it must not
//!   grow tick over tick.

#![cfg(feature = "sanitize")]

use graf_core::sample_collector::Bounds;
use graf_core::{
    FeatureScaler, GrafController, GrafControllerConfig, LatencyModel, NetKind, WorkloadAnalyzer,
};
use graf_nn::sanitize::{alloc_delta, assert_no_alloc};
use graf_nn::{Adam, Matrix, Param};
use graf_orchestrator::{Autoscaler, Cluster, CreationModel, Deployment};
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
use graf_sim::world::{SimConfig, World};

fn model3() -> LatencyModel {
    let scaler = FeatureScaler { workload_div: 100.0, quota_div: 1000.0 };
    LatencyModel::new(NetKind::Gnn, &[(0, 1), (1, 2)], 3, scaler, 1.0, 5)
}

/// One iteration of the solver's descent loop, shaped exactly like the body
/// of `solve_observed`: unscale, fused forward+backward, chain rule, step.
fn solver_iteration(
    model: &mut LatencyModel,
    opt: &mut Adam,
    r: &mut Param,
    workloads: &[f64],
    quotas_mc: &mut [f64],
    g_ms: &mut Vec<f64>,
) -> f64 {
    let scaler = model.scaler;
    for (q, &v) in quotas_mc.iter_mut().zip(r.value.data()) {
        *q = scaler.unscale_quota(v);
    }
    let (pred, has_grad) = model.predict_ms_with_grad(workloads, quotas_mc, -1.0, g_ms);
    if has_grad {
        for (i, &gm) in g_ms.iter().enumerate() {
            r.grad.set(0, i, 1.0 + gm * scaler.quota_div);
        }
    } else {
        for i in 0..quotas_mc.len() {
            r.grad.set(0, i, 1.0);
        }
    }
    opt.step(&mut [&mut *r]);
    pred
}

#[test]
fn solver_iteration_is_allocation_free_in_steady_state() {
    let mut model = model3();
    let workloads = [60.0, 60.0, 60.0];
    let mut quotas_mc = [800.0, 900.0, 1000.0];
    let mut g_ms: Vec<f64> = Vec::with_capacity(3);
    let mut r = Param::new(Matrix::row_vector(vec![0.8, 0.9, 1.0]));
    let mut opt = Adam::new(0.05);

    for _ in 0..3 {
        solver_iteration(&mut model, &mut opt, &mut r, &workloads, &mut quotas_mc, &mut g_ms);
    }
    let pred = assert_no_alloc("solver iteration", || {
        solver_iteration(&mut model, &mut opt, &mut r, &workloads, &mut quotas_mc, &mut g_ms)
    });
    assert!(pred.is_finite());
}

#[test]
fn pilot_tick_allocation_is_bounded_and_stable() {
    let topo = AppTopology::new(
        "t3",
        vec![
            ServiceSpec::new("a", 1.0, 200).cv(0.0),
            ServiceSpec::new("b", 2.0, 200).cv(0.0),
            ServiceSpec::new("c", 1.5, 200).cv(0.0),
        ],
        vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1).call(CallNode::new(2))))],
    );
    let analyzer =
        WorkloadAnalyzer::from_multiplicities(vec![vec![1.0, 1.0, 1.0]], vec![(0, 1), (1, 2)]);
    let bounds = Bounds { lower: vec![150.0; 3], upper: vec![2500.0; 3] };
    let cfg = GrafControllerConfig { slo_ms: 25.0, train_total_qps: 80.0, ..Default::default() };
    let mut controller = GrafController::new(model3(), analyzer, bounds, cfg);

    let world = World::new(topo, SimConfig::default(), 31);
    let mut cluster = Cluster::new(
        world,
        vec![
            Deployment::new(ServiceId(0), 250.0, 1),
            Deployment::new(ServiceId(1), 250.0, 1),
            Deployment::new(ServiceId(2), 250.0, 1),
        ],
        CreationModel::instant(),
    );
    for i in 0..400u64 {
        cluster.world_mut().inject(ApiId(0), SimTime(i * 12_500));
    }
    cluster.world_mut().run_until(SimTime::from_secs(5.0));

    // Warm the controller's buffers, then measure two steady-state ticks.
    for _ in 0..3 {
        controller.tick(&mut cluster);
    }
    let ((), t4) = alloc_delta(|| controller.tick(&mut cluster));
    let ((), t5) = alloc_delta(|| controller.tick(&mut cluster));
    assert_eq!(t4, t5, "per-tick allocation count must not grow tick over tick");
    assert!(t4 < 2000, "pilot tick allocates a small bounded set of buffers, saw {t4}");
}
