//! The configuration solver (§3.5).
//!
//! Minimizes eq. (5): `Loss(r) = Σᵢ rᵢ + ρ · max(0, L̂(w, r) − SLO)` by Adam
//! gradient descent over the per-service CPU quotas `r`, differentiating the
//! *trained latency prediction model* `L̂` with respect to its quota inputs.
//! Quotas are projected into Algorithm-1 bounds after every step, and the
//! loop stops once the loss delta falls below a tolerance — the paper's
//! synchronous, lightweight solve (3.4–6.8 s on their testbed; microseconds
//! here since the model is small).
//!
//! The optimization runs in scaled space (quotas divided by the feature
//! scaler's divisor, latency normalized by the SLO), which keeps ρ meaningful
//! across applications.

use graf_nn::{Adam, Matrix, Param};

use crate::latency_model::LatencyModel;
use crate::sample_collector::Bounds;

/// Solver hyper-parameters.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Penalty coefficient ρ of eq. (5), applied to the normalized violation.
    pub rho: f64,
    /// Adam learning rate in scaled-quota space.
    pub lr: f64,
    /// Stop when `|Loss_t − Loss_{t−1}|` falls below this.
    pub tol: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Minimum iterations before the tolerance check applies.
    pub min_iters: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self { rho: 40.0, lr: 0.02, tol: 1e-6, max_iters: 1500, min_iters: 25 }
    }
}

/// A solved resource configuration.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// Optimal per-service quotas, millicores.
    pub quotas_mc: Vec<f64>,
    /// Predicted p99 at the solution, ms.
    pub predicted_ms: f64,
    /// Gradient-descent iterations used.
    pub iterations: usize,
    /// Final loss value (scaled space).
    pub loss: f64,
}

/// Finds the minimal-total-CPU configuration satisfying the latency SLO.
///
/// `workloads` are the per-service workloads from the workload analyzer;
/// `slo_ms` the target; `bounds` the Algorithm-1 box. The solve starts from
/// the upper bounds (a known-feasible point) and walks downhill.
///
/// Quickstart — fit a tiny model on a synthetic latency surface, then solve:
///
/// ```
/// use graf_core::{
///     solve, Bounds, FeatureScaler, LatencyModel, NetKind, Sample, SolverConfig, TrainConfig,
/// };
/// use graf_sim::rng::DetRng;
///
/// // Two chained services; p99 rises as quota approaches the workload.
/// let mut rng = DetRng::new(7);
/// let mut samples = Vec::new();
/// for _ in 0..80 {
///     let w = rng.uniform(20.0, 100.0);
///     let quotas = vec![rng.uniform(150.0, 1500.0), rng.uniform(400.0, 2800.0)];
///     let p99 = 2.0
///         + 1200.0 / (quotas[0] - w).max(15.0)
///         + 3600.0 / (quotas[1] - 3.0 * w).max(15.0);
///     samples.push(Sample { api_rates: vec![w], workloads: vec![w, w], quotas_mc: quotas, p99_ms: p99 });
/// }
/// let scaler = FeatureScaler::fit(
///     samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
/// );
/// let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
/// let split = ds.split(0.8, 0.1, 2);
/// let mut model =
///     LatencyModel::new(NetKind::Gnn, &[(0, 1)], 2, scaler, split.train.label_mean(), 5);
/// model.train(&split, &TrainConfig { epochs: 8, evals: 2, ..Default::default() });
///
/// let bounds = Bounds { lower: vec![150.0, 400.0], upper: vec![1500.0, 2800.0] };
/// let r = solve(&mut model, &[60.0, 60.0], 25.0, &bounds, &SolverConfig::default());
/// assert!(r.iterations > 0 && r.predicted_ms.is_finite());
/// for (q, (&l, &h)) in r.quotas_mc.iter().zip(bounds.lower.iter().zip(&bounds.upper)) {
///     assert!(*q >= l && *q <= h, "solution stays inside the Algorithm-1 box");
/// }
/// ```
pub fn solve(
    model: &mut LatencyModel,
    workloads: &[f64],
    slo_ms: f64,
    bounds: &Bounds,
    cfg: &SolverConfig,
) -> SolveResult {
    solve_observed(model, workloads, slo_ms, bounds, cfg, &graf_obs::Obs::disabled())
}

/// [`solve`] with telemetry: records a `graf.solver.solve` span (iterations,
/// final loss, SLO violation, predicted latency; wall-clock duration) and the
/// `graf.solver.iterations` counter. Identical numerics — telemetry never
/// feeds back into the descent.
pub fn solve_observed(
    model: &mut LatencyModel,
    workloads: &[f64],
    slo_ms: f64,
    bounds: &Bounds,
    cfg: &SolverConfig,
    obs: &graf_obs::Obs,
) -> SolveResult {
    solve_instrumented(model, workloads, slo_ms, bounds, cfg, obs, &graf_prof::Prof::disabled())
}

/// [`solve_observed`] plus self-profiling: attributes wall time to
/// `solver.solve` with `solver.predict_grad` (fused model forward/backward)
/// and `solver.descent` (Adam step + box projection) child phases, one work
/// unit per iteration. A disabled profiler costs one branch per scope, so
/// numerics and performance are unchanged when profiling is off.
pub fn solve_instrumented(
    model: &mut LatencyModel,
    workloads: &[f64],
    slo_ms: f64,
    bounds: &Bounds,
    cfg: &SolverConfig,
    obs: &graf_obs::Obs,
    prof: &graf_prof::Prof,
) -> SolveResult {
    let _solve_scope = prof.enter("solver.solve");
    let mut span = obs.span("graf.solver.solve");
    let n = workloads.len();
    assert_eq!(n, model.num_services(), "one workload per service");
    assert_eq!(n, bounds.lower.len());
    assert!(slo_ms > 0.0);

    // graf-lint: allow(hot-alloc, one-time setup before the descent loop)
    let lo: Vec<f64> = bounds.lower.iter().map(|&v| model.scaler.scale_quota(v)).collect();
    // graf-lint: allow(hot-alloc, one-time setup before the descent loop)
    let hi: Vec<f64> = bounds.upper.iter().map(|&v| model.scaler.scale_quota(v)).collect();

    // Variables: scaled quotas, starting from the feasible top of the box.
    // graf-lint: allow(hot-alloc, one-time setup before the descent loop)
    let mut r = Param::new(Matrix::row_vector(hi.clone()));
    let mut opt = Adam::new(cfg.lr);

    let mut prev_loss = f64::INFINITY;
    let mut iterations = 0;
    let mut last_loss = 0.0;
    // Per-iteration buffers hoisted out of the descent loop; each pass is one
    // fused forward through the model, plus a backward only when the SLO
    // penalty is active (reusing the retained forward trace).
    // graf-lint: allow(hot-alloc, hoisted buffer reused every iteration)
    let mut quotas_mc = vec![0.0; n];
    // graf-lint: allow(hot-alloc, hoisted buffer reused every iteration)
    let mut g_ms: Vec<f64> = Vec::with_capacity(n);
    for it in 0..cfg.max_iters {
        iterations = it + 1;
        prof.work(1);
        for (q, &v) in quotas_mc.iter_mut().zip(r.value.data()) {
            *q = model.scaler.unscale_quota(v);
        }
        let (pred, has_grad) = {
            let _grad_scope = prof.enter("solver.predict_grad");
            model.predict_ms_with_grad(workloads, &quotas_mc, slo_ms, &mut g_ms)
        };
        let violation = (pred - slo_ms).max(0.0) / slo_ms;
        let total: f64 = r.value.data().iter().sum();
        last_loss = total + cfg.rho * violation;

        let _descent_scope = prof.enter("solver.descent");
        // Gradient: d/dr_scaled [Σ r_scaled] = 1; the penalty term chains
        // through the network when active (`g_ms` = d pred_ms / d r_mc).
        if has_grad {
            for (i, &gm) in g_ms.iter().enumerate() {
                // d r_mc / d r_scaled = quota_div.
                r.grad.set(0, i, 1.0 + cfg.rho / slo_ms * gm * model.scaler.quota_div);
            }
        } else {
            for i in 0..n {
                r.grad.set(0, i, 1.0);
            }
        }
        opt.step(&mut [&mut r]);
        // Project into the Algorithm-1 box.
        for i in 0..n {
            let v = r.value.get(0, i).clamp(lo[i], hi[i]);
            r.value.set(0, i, v);
        }

        if it + 1 >= cfg.min_iters && (prev_loss - last_loss).abs() < cfg.tol {
            break;
        }
        prev_loss = last_loss;
    }

    let scaler = model.scaler;
    // graf-lint: allow(hot-alloc, result construction after the loop exits)
    let quotas_mc: Vec<f64> = r.value.data().iter().map(|&v| scaler.unscale_quota(v)).collect();
    let predicted_ms = model.predict_ms(workloads, &quotas_mc);
    if span.is_recording() {
        span.attr("iterations", iterations)
            .attr("loss", last_loss)
            .attr("predicted_ms", predicted_ms)
            .attr("violation", (predicted_ms - slo_ms).max(0.0) / slo_ms)
            .attr("quota_total_mc", quotas_mc.iter().sum::<f64>());
        obs.counter_add("graf.solver.iterations", &[], iterations as u64);
    }
    SolveResult { quotas_mc, predicted_ms, iterations, loss: last_loss }
}

/// §6's "Integer Optimization for instances scaling" extension: refine a
/// continuous solution into instance counts better than plain `ceil`.
///
/// The paper rounds every quota up to a whole number of instances (eq. 7),
/// over-provisioning by up to one CPU unit per microservice, and notes that
/// integer optimization could reclaim that slack. Full integer programming is
/// NP-hard; this refinement runs a greedy descent over instance counts:
/// starting from the `ceil` solution, repeatedly remove the single instance
/// whose removal keeps the model's predicted latency within the SLO, until no
/// removal survives. Each step queries the trained model once, so the
/// refinement costs `O(total instances × services)` predictions.
///
/// Returns per-service instance counts and the predicted latency at the
/// refined configuration.
///
/// `bounds` are the Algorithm-1 quota bounds: refinement never drops a
/// service below `ceil(lower/unit)` instances — below the box the model has
/// never seen data and extrapolates blindly into the starvation region.
pub fn integer_refine(
    model: &LatencyModel,
    workloads: &[f64],
    continuous_mc: &[f64],
    bounds: &Bounds,
    cpu_unit_mc: f64,
    slo_ms: f64,
) -> (Vec<usize>, f64) {
    assert!(cpu_unit_mc > 0.0);
    let n = continuous_mc.len();
    let floor: Vec<usize> =
        bounds.lower.iter().map(|&l| (l / cpu_unit_mc).ceil().max(1.0) as usize).collect();
    let mut counts: Vec<usize> = continuous_mc
        .iter()
        .zip(&floor)
        .map(|(&q, &f)| ((q / cpu_unit_mc).ceil() as usize).max(f))
        .collect();
    let quotas = |c: &[usize]| c.iter().map(|&k| k as f64 * cpu_unit_mc).collect::<Vec<f64>>();
    let mut pred = model.predict_ms(workloads, &quotas(&counts));
    loop {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..n {
            if counts[i] <= floor[i] {
                continue;
            }
            counts[i] -= 1;
            let p = model.predict_ms(workloads, &quotas(&counts));
            counts[i] += 1;
            if p <= slo_ms && best.is_none_or(|(_, bp)| p < bp) {
                best = Some((i, p));
            }
        }
        match best {
            Some((i, p)) => {
                counts[i] -= 1;
                pred = p;
            }
            None => break,
        }
    }
    (counts, pred)
}

/// Evaluates the solver loss surface at a given configuration — used by the
/// Figure-12 heat-map bench.
pub fn loss_at(
    model: &LatencyModel,
    workloads: &[f64],
    quotas_mc: &[f64],
    slo_ms: f64,
    rho: f64,
) -> f64 {
    let pred = model.predict_ms(workloads, quotas_mc);
    let total: f64 = quotas_mc.iter().map(|&q| model.scaler.scale_quota(q)).sum();
    total + rho * (pred - slo_ms).max(0.0) / slo_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureScaler;
    use crate::latency_model::{NetKind, TrainConfig};
    use crate::sample_collector::Sample;
    use graf_sim::rng::DetRng;

    /// Trains a small model on a synthetic convex latency surface and returns
    /// it with its bounds.
    fn trained_model(seed: u64) -> (LatencyModel, Bounds, Vec<f64>) {
        let mut rng = DetRng::new(seed);
        let works = [1.0, 3.0];
        // Per-service quota ranges as Algorithm 1 would produce them: the
        // lower bound keeps the single service's own latency under the SLO,
        // excluding the hyperbolic starvation corner the model never trains
        // on (§3.7).
        let ranges = [(150.0, 1500.0), (400.0, 2800.0)];
        let mut samples = Vec::new();
        for _ in 0..700 {
            let w = rng.uniform(20.0, 100.0);
            let quotas: Vec<f64> = ranges.iter().map(|&(lo, hi)| rng.uniform(lo, hi)).collect();
            let mut p99 = 2.0;
            for i in 0..2 {
                let offered = w * works[i];
                let head = (quotas[i] - offered).max(15.0);
                p99 += 1200.0 * works[i] / head + works[i];
            }
            samples.push(Sample {
                api_rates: vec![w],
                workloads: vec![w, w],
                quotas_mc: quotas,
                p99_ms: p99 * rng.lognormal_mean_cv(1.0, 0.05),
            });
        }
        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
        let split = ds.split(0.8, 0.1, 2);
        let mut model =
            LatencyModel::new(NetKind::Gnn, &[(0, 1)], 2, scaler, split.train.label_mean(), seed);
        let cfg = TrainConfig { epochs: 80, evals: 10, ..Default::default() };
        model.train(&split, &cfg);
        let bounds = Bounds { lower: vec![150.0, 400.0], upper: vec![1500.0, 2800.0] };
        (model, bounds, vec![60.0, 60.0])
    }

    #[test]
    fn solver_stays_in_bounds_and_meets_predicted_slo() {
        let (mut model, bounds, w) = trained_model(3);
        let res = solve(&mut model, &w, 120.0, &bounds, &SolverConfig::default());
        for i in 0..2 {
            assert!(
                res.quotas_mc[i] >= bounds.lower[i] - 1e-6
                    && res.quotas_mc[i] <= bounds.upper[i] + 1e-6,
                "quota {i} within bounds: {:?}",
                res.quotas_mc
            );
        }
        assert!(
            res.predicted_ms <= 120.0 * 1.15,
            "solution approximately satisfies the SLO: {res:?}"
        );
        assert!(res.iterations >= 25);
    }

    #[test]
    fn tighter_slo_costs_more_cpu() {
        let (mut model, bounds, w) = trained_model(4);
        // The box's lower corner sits near ~28 ms predicted at this load, so
        // both SLOs below are binding and discriminate.
        let loose = solve(&mut model, &w, 25.0, &bounds, &SolverConfig::default());
        let tight = solve(&mut model, &w, 12.0, &bounds, &SolverConfig::default());
        let sum = |r: &SolveResult| r.quotas_mc.iter().sum::<f64>();
        assert!(
            sum(&tight) > sum(&loose),
            "tight SLO {:?} must use more CPU than loose {:?}",
            tight.quotas_mc,
            loose.quotas_mc
        );
    }

    #[test]
    fn higher_workload_costs_more_cpu() {
        let (mut model, bounds, _) = trained_model(5);
        let low = solve(&mut model, &[30.0, 30.0], 18.0, &bounds, &SolverConfig::default());
        let high = solve(&mut model, &[90.0, 90.0], 18.0, &bounds, &SolverConfig::default());
        let sum = |r: &SolveResult| r.quotas_mc.iter().sum::<f64>();
        assert!(sum(&high) > sum(&low), "{:?} vs {:?}", high.quotas_mc, low.quotas_mc);
    }

    #[test]
    fn heavier_service_gets_more_cpu() {
        // Service 1 does 3× the work of service 0 in the synthetic surface.
        let (mut model, bounds, w) = trained_model(6);
        let res = solve(&mut model, &w, 15.0, &bounds, &SolverConfig::default());
        assert!(
            res.quotas_mc[1] > res.quotas_mc[0],
            "solver shifts CPU to the bottleneck: {:?}",
            res.quotas_mc
        );
    }

    #[test]
    fn unreachable_slo_saturates_at_upper_bounds() {
        let (mut model, bounds, w) = trained_model(7);
        let res = solve(&mut model, &w, 0.5, &bounds, &SolverConfig::default());
        // With an impossible 0.5 ms SLO the penalty dominates: quotas stay
        // pinned high in the box instead of descending to the floor.
        for i in 0..2 {
            let mid = 0.5 * (bounds.lower[i] + bounds.upper[i]);
            assert!(
                res.quotas_mc[i] > mid,
                "quota {i} stays in the upper half of the box: {:?}",
                res.quotas_mc
            );
        }
    }

    #[test]
    fn integer_refine_never_exceeds_ceil_and_meets_predicted_slo() {
        let (mut model, bounds, w) = trained_model(9);
        let res = solve(&mut model, &w, 16.0, &bounds, &SolverConfig::default());
        let unit = 100.0;
        let ceil_counts: Vec<usize> =
            res.quotas_mc.iter().map(|q| (q / unit).ceil() as usize).collect();
        let (counts, pred) = integer_refine(&model, &w, &res.quotas_mc, &bounds, unit, 16.0);
        for i in 0..counts.len() {
            let floor = (bounds.lower[i] / unit).ceil() as usize;
            assert!(
                counts[i] <= ceil_counts[i].max(floor),
                "refine only removes: {counts:?} vs {ceil_counts:?}"
            );
            assert!(counts[i] >= floor, "never below the Algorithm-1 floor");
        }
        assert!(
            pred <= 16.0 * 1.0001 || counts == ceil_counts,
            "refined config predicted in SLO: {pred}"
        );
    }

    #[test]
    fn integer_refine_reclaims_slack_when_slo_is_loose() {
        let (model, bounds, w) = trained_model(10);
        // A deliberately over-provisioned continuous solution with a loose
        // SLO: the greedy pass must strip whole instances.
        let continuous = vec![900.0, 1900.0];
        let (counts, pred) = integer_refine(&model, &w, &continuous, &bounds, 100.0, 60.0);
        let total: usize = counts.iter().sum();
        assert!(total < 9 + 19, "instances removed: {counts:?}");
        assert!(pred <= 60.0);
    }

    #[test]
    fn loss_surface_matches_solve_objective() {
        let (model, _, w) = trained_model(8);
        let l1 = loss_at(&model, &w, &[500.0, 1500.0], 100.0, 40.0);
        let l2 = loss_at(&model, &w, &[2500.0, 2500.0], 100.0, 40.0);
        assert!(l1.is_finite() && l2.is_finite());
        // Overprovisioning beyond need raises the resource term.
        assert!(l2 > l1 || l1 > 0.0);
    }
}
