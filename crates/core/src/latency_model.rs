//! The latency prediction model (§3.4): training loop, checkpointing, and
//! the Table-2 accuracy analysis.

use graf_gnn::{FlatMlp, GnnConfig, GraphSpec, LatencyNet, MicroserviceGnn};
use graf_nn::{Adam, AsymmetricHuber, Matrix};
use graf_sim::rng::DetRng;

use crate::dataset::{Dataset, Split};
use crate::features::FeatureScaler;
use crate::sample_collector::Sample;

/// Which network architecture to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetKind {
    /// The paper's MPNN + readout (§3.4).
    Gnn,
    /// The "GRAF without MPNN" ablation (§5.1, Fig 11).
    FlatMlp,
}

/// Training hyper-parameters.
///
/// The paper's Table 1 lists 7×10⁴ iterations at batch 256, learning rate
/// 2×10⁻⁴, dropout 0.25, θ_L = 0.1, θ_R = 0.3 on a GTX 1080. The default here
/// is a CPU-scale configuration preserving everything but the iteration
/// count; [`TrainConfig::paper`] restores the published values.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Asymmetric-Hüber left threshold.
    pub theta_l: f64,
    /// Asymmetric-Hüber right threshold.
    pub theta_r: f64,
    /// Validation evaluations per training run (for learning curves and
    /// best-checkpoint selection).
    pub evals: usize,
    /// Shuffle/dropout seed.
    pub seed: u64,
    /// Worker threads for data-parallel training (mini-batches are sharded
    /// over fixed chunks with an index-ordered gradient reduction, so any
    /// value produces bit-identical results; 1 = serial).
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 256,
            lr: 1e-3,
            theta_l: 0.1,
            theta_r: 0.3,
            evals: 20,
            seed: 7,
            threads: 1,
        }
    }
}

impl TrainConfig {
    /// The published hyper-parameters (Table 1). `epochs` here approximates
    /// 7×10⁴ optimizer iterations for a ~40 k-sample dataset.
    pub fn paper() -> Self {
        Self { epochs: 450, lr: 2e-4, ..Self::default() }
    }
}

/// Learning-curve record of one training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Optimizer iteration at each evaluation point.
    pub iters: Vec<usize>,
    /// Mean training loss since the previous evaluation.
    pub train_loss: Vec<f64>,
    /// Validation loss at each evaluation point.
    pub val_loss: Vec<f64>,
    /// Best validation loss seen.
    pub best_val: f64,
    /// Iteration of the best checkpoint.
    pub best_iter: usize,
}

/// Reusable buffers for the solver fast path: feature row, input matrix,
/// prediction, and input gradient. Warm after one call; reuse makes
/// [`LatencyModel::predict_ms_with_grad`] allocation-free in steady state.
#[derive(Default)]
struct SolveScratch {
    feat: Vec<f64>,
    x: Matrix,
    pred: Vec<f64>,
    dx: Matrix,
}

/// The trained model plus the scaling that maps between physical units and
/// network space.
pub struct LatencyModel {
    net: Box<dyn LatencyNet + Send>,
    /// Feature scaling (shared with the controller).
    pub scaler: FeatureScaler,
    /// Labels are trained as `y / label_scale`.
    pub label_scale: f64,
    scratch: SolveScratch,
}

impl Clone for LatencyModel {
    fn clone(&self) -> Self {
        Self {
            net: self.net.boxed_clone(),
            scaler: self.scaler,
            label_scale: self.label_scale,
            scratch: SolveScratch::default(),
        }
    }
}

impl LatencyModel {
    /// Creates an untrained model for `num_services` services over the given
    /// call-graph edges.
    pub fn new(
        kind: NetKind,
        edges: &[(u16, u16)],
        num_services: usize,
        scaler: FeatureScaler,
        label_scale: f64,
        seed: u64,
    ) -> Self {
        let mut rng = DetRng::new(seed);
        let cfg = GnnConfig::default();
        let net: Box<dyn LatencyNet + Send> = match kind {
            NetKind::Gnn => {
                let graph = GraphSpec::from_edges(num_services, edges);
                Box::new(MicroserviceGnn::new(graph, cfg.clone(), &mut rng))
            }
            NetKind::FlatMlp => Box::new(FlatMlp::new(
                num_services,
                cfg.feature_dim,
                cfg.readout_hidden,
                cfg.dropout,
                &mut rng,
            )),
        };
        assert!(label_scale > 0.0, "label scale must be positive");
        Self { net, scaler, label_scale, scratch: SolveScratch::default() }
    }

    /// Number of services the model covers.
    pub fn num_services(&self) -> usize {
        self.net.num_nodes()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.net.num_params()
    }

    /// Attaches a self-profiler handle to the underlying network: training
    /// steps then attribute wall time to `train.forward_backward`,
    /// `train.reduce` and `train.optimizer` phases. Profiling never alters
    /// numerics.
    pub fn set_prof(&mut self, prof: graf_prof::Prof) {
        self.net.set_prof(prof);
    }

    /// Builds a [`Dataset`] from collected samples using this model's scaler.
    pub fn dataset_from_samples(scaler: &FeatureScaler, samples: &[Sample]) -> Dataset {
        let mut d = Dataset::new();
        for s in samples {
            d.push(scaler.features(&s.workloads, &s.quotas_mc), s.p99_ms);
        }
        d
    }

    fn scaled_labels(&self, ys: &[f64]) -> Vec<f64> {
        ys.iter().map(|y| y / self.label_scale).collect()
    }

    /// Trains on `split.train`, tracking validation loss and keeping the
    /// best-validation checkpoint (§3.4: "the validation set is used to
    /// prevent overfitting and save the best performance GNN").
    pub fn train(&mut self, split: &Split, cfg: &TrainConfig) -> TrainReport {
        self.train_observed(split, cfg, &graf_obs::Obs::disabled())
    }

    /// [`LatencyModel::train`] with telemetry: emits one `graf.train.eval`
    /// point per evaluation (optimizer iteration, train/val loss) and a
    /// closing `graf.train` span (epochs, best checkpoint, epochs/sec).
    /// Numerically identical to the unobserved path.
    pub fn train_observed(
        &mut self,
        split: &Split,
        cfg: &TrainConfig,
        obs: &graf_obs::Obs,
    ) -> TrainReport {
        assert!(!split.train.is_empty(), "training set is empty");
        let mut train_span = obs.span("graf.train");
        let train_start = train_span.is_recording().then(std::time::Instant::now);
        let scratch_before = self.net.scratch_stats();
        self.net.set_threads(cfg.threads.max(1));
        let loss = AsymmetricHuber { theta_l: cfg.theta_l, theta_r: cfg.theta_r };
        let mut opt = Adam::new(cfg.lr);
        let mut rng = DetRng::new(cfg.seed);
        let mut drop_rng = DetRng::new(cfg.seed ^ 0xD20);

        let (val_x, val_y_raw) = split.val.as_matrix();
        let val_y = self.scaled_labels(&val_y_raw);
        let have_val = !split.val.is_empty();

        let mut report = TrainReport { best_val: f64::INFINITY, ..Default::default() };
        let mut best: Option<Box<dyn LatencyNet + Send>> = None;
        let eval_every = (cfg.epochs / cfg.evals.max(1)).max(1);

        let mut iter = 0usize;
        let mut acc_loss = 0.0;
        let mut acc_n = 0usize;
        // One scaled-label buffer for the whole run, refilled per batch.
        let mut y_buf: Vec<f64> = Vec::with_capacity(cfg.batch_size);
        for epoch in 0..cfg.epochs {
            for (x, y_raw) in split.train.batches(cfg.batch_size, &mut rng) {
                y_buf.clear();
                y_buf.extend(y_raw.iter().map(|y| y / self.label_scale));
                let l = self.net.train_step(&x, &y_buf, &loss, &mut opt, &mut drop_rng);
                acc_loss += l;
                acc_n += 1;
                iter += 1;
            }
            if epoch % eval_every == eval_every - 1 || epoch == cfg.epochs - 1 {
                let vl = if have_val {
                    self.net.eval_loss(&val_x, &val_y, &loss)
                } else {
                    acc_loss / acc_n.max(1) as f64
                };
                report.iters.push(iter);
                report.train_loss.push(acc_loss / acc_n.max(1) as f64);
                report.val_loss.push(vl);
                obs.point("graf.train.eval")
                    .attr("iter", iter)
                    .attr("epoch", epoch + 1)
                    .attr("train_loss", acc_loss / acc_n.max(1) as f64)
                    .attr("val_loss", vl);
                acc_loss = 0.0;
                acc_n = 0;
                if vl < report.best_val {
                    report.best_val = vl;
                    report.best_iter = iter;
                    best = Some(self.net.boxed_clone());
                }
            }
        }
        if let Some(b) = best {
            self.net = b;
        }
        if train_span.is_recording() {
            let secs = train_start.map_or(0.0, |t| t.elapsed().as_secs_f64());
            train_span
                .attr("epochs", cfg.epochs)
                .attr("iters", iter)
                .attr("best_val", report.best_val)
                .attr("best_iter", report.best_iter)
                .attr("epochs_per_sec", if secs > 0.0 { cfg.epochs as f64 / secs } else { 0.0 });
        }
        if obs.is_enabled() {
            // Allocation-avoidance accounting for this run: scratch-pool
            // buffer reuses vs fresh allocations inside the net's kernels.
            let (reused, allocated) = self.net.scratch_stats();
            obs.counter_add("graf.nn.scratch.reused", &[], reused.saturating_sub(scratch_before.0));
            obs.counter_add(
                "graf.nn.scratch.allocated",
                &[],
                allocated.saturating_sub(scratch_before.1),
            );
        }
        report
    }

    /// Evaluation loss on a dataset (scaled-label space).
    pub fn eval_loss(&self, data: &Dataset, cfg: &TrainConfig) -> f64 {
        let loss = AsymmetricHuber { theta_l: cfg.theta_l, theta_r: cfg.theta_r };
        let (x, y_raw) = data.as_matrix();
        let y = self.scaled_labels(&y_raw);
        self.net.eval_loss(&x, &y, &loss)
    }

    /// Predicts p99 latency (ms) for physical workloads (req/s) and quotas (mc).
    pub fn predict_ms(&self, workloads: &[f64], quotas_mc: &[f64]) -> f64 {
        let row = self.scaler.features(workloads, quotas_mc);
        let x = Matrix::row_vector(row);
        self.net.predict(&x)[0] * self.label_scale
    }

    /// Predicts p99 latency (ms) for already-scaled feature rows.
    pub fn predict_rows_ms(&self, x: &Matrix) -> Vec<f64> {
        self.net.predict(x).iter().map(|p| p * self.label_scale).collect()
    }

    /// Fused prediction + conditional gradient — the solver fast path.
    ///
    /// Runs one forward pass whose activations are retained; only when the
    /// predicted latency exceeds `grad_if_above_ms` is the backward pass run,
    /// reusing the retained trace (one forward + at most one backward per
    /// solver iteration, versus the two forwards + one backward of calling
    /// [`LatencyModel::predict_ms`] then [`LatencyModel::grad_quota`]).
    ///
    /// Returns `(predicted_ms, grad_written)`; `grad_out` holds the per-quota
    /// gradient (ms per mc) only when `grad_written` is true.
    pub fn predict_ms_with_grad(
        &mut self,
        workloads: &[f64],
        quotas_mc: &[f64],
        grad_if_above_ms: f64,
        grad_out: &mut Vec<f64>,
    ) -> (f64, bool) {
        let n = workloads.len();
        self.scaler.features_into(workloads, quotas_mc, &mut self.scratch.feat);
        self.scratch.x.reshape_for_overwrite(1, n * 2);
        self.scratch.x.data_mut().copy_from_slice(&self.scratch.feat);
        self.net.predict_keep_into(&self.scratch.x, &mut self.scratch.pred);
        let pred = self.scratch.pred[0] * self.label_scale;
        if pred <= grad_if_above_ms {
            return (pred, false);
        }
        self.net.grad_from_kept_into(&self.scratch.x, &mut self.scratch.dx);
        grad_out.clear();
        grad_out.reserve(n);
        for i in 0..n {
            let g = self.scratch.dx.get(0, 2 * i + 1);
            grad_out.push(self.label_scale * g / self.scaler.quota_div);
        }
        (pred, true)
    }

    /// Gradient of predicted latency (ms) with respect to each quota (mc).
    pub fn grad_quota(&mut self, workloads: &[f64], quotas_mc: &[f64]) -> Vec<f64> {
        let row = self.scaler.features(workloads, quotas_mc);
        let x = Matrix::row_vector(row);
        let g = self.net.grad_input(&x);
        (0..workloads.len())
            .map(|i| self.label_scale * g.get(0, 2 * i + 1) / self.scaler.quota_div)
            .collect()
    }

    /// Computes the Table-2 error analysis on a held-out dataset.
    pub fn error_table(&self, test: &Dataset) -> ErrorTable {
        let (x, y) = test.as_matrix();
        let preds = self.predict_rows_ms(&x);
        ErrorTable::compute(&preds, &y)
    }
}

/// Table 2: absolute percentage error by latency region + over-estimation.
#[derive(Clone, Debug)]
pub struct ErrorTable {
    /// `(label, lo_ms, hi_ms, mean |err| %, samples)` per region.
    pub regions: Vec<(String, f64, f64, f64, usize)>,
    /// Mean signed percentage over-estimation across all points
    /// (positive = model predicts high, the paper reports +5.2 %).
    pub mean_overestimate_pct: f64,
    /// Fraction of points where the model over-estimates.
    pub overestimate_fraction: f64,
    /// Total points.
    pub count: usize,
}

impl ErrorTable {
    /// Computes the table from predictions and labels (both ms).
    pub fn compute(preds: &[f64], labels: &[f64]) -> Self {
        assert_eq!(preds.len(), labels.len());
        let ranges = [
            ("0-50ms", 0.0, 50.0),
            ("50-100ms", 50.0, 100.0),
            ("0-200ms", 0.0, 200.0),
            ("0-800ms", 0.0, 800.0),
        ];
        let mut regions = Vec::new();
        for (name, lo, hi) in ranges {
            let mut sum = 0.0;
            let mut n = 0usize;
            for (&p, &y) in preds.iter().zip(labels) {
                if y >= lo && y < hi {
                    sum += ((p - y) / y.max(1e-9)).abs() * 100.0;
                    n += 1;
                }
            }
            regions.push((
                name.to_string(),
                lo,
                hi,
                if n > 0 { sum / n as f64 } else { f64::NAN },
                n,
            ));
        }
        let mut signed = 0.0;
        let mut over = 0usize;
        for (&p, &y) in preds.iter().zip(labels) {
            signed += (p - y) / y.max(1e-9) * 100.0;
            if p > y {
                over += 1;
            }
        }
        let count = preds.len();
        Self {
            regions,
            mean_overestimate_pct: if count > 0 { signed / count as f64 } else { 0.0 },
            overestimate_fraction: if count > 0 { over as f64 / count as f64 } else { 0.0 },
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic "application": 3-service chain with a queueing-shaped p99.
    fn synthetic_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = DetRng::new(seed);
        let mut out = Vec::new();
        for _ in 0..n {
            let w = rng.uniform(20.0, 120.0);
            let workloads = vec![w, w, w];
            let quotas: Vec<f64> = (0..3).map(|_| rng.uniform(200.0, 2000.0)).collect();
            // p99 ≈ Σ base + work/(quota − offered) queueing growth.
            let works = [1.0, 3.0, 2.0];
            let mut p99 = 3.0;
            for i in 0..3 {
                let offered = w * works[i];
                let head = (quotas[i] - offered).max(20.0);
                p99 += 1000.0 * works[i] / head + works[i];
            }
            // Mild multiplicative noise like real p99 measurements.
            let noisy = p99 * rng.lognormal_mean_cv(1.0, 0.08);
            out.push(Sample { api_rates: vec![w], workloads, quotas_mc: quotas, p99_ms: noisy });
        }
        out
    }

    fn fit_model(
        kind: NetKind,
        samples: &[Sample],
        cfg: &TrainConfig,
    ) -> (LatencyModel, TrainReport, Dataset) {
        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let ds = LatencyModel::dataset_from_samples(&scaler, samples);
        let split = ds.split(0.7, 0.15, 3);
        let label_scale = split.train.label_mean().max(1e-9);
        let mut model = LatencyModel::new(kind, &[(0, 1), (1, 2)], 3, scaler, label_scale, 11);
        let report = model.train(&split, cfg);
        (model, report, split.test)
    }

    #[test]
    fn training_learns_the_latency_surface() {
        let samples = synthetic_samples(600, 5);
        let cfg = TrainConfig { epochs: 40, evals: 8, ..Default::default() };
        let (model, report, test) = fit_model(NetKind::Gnn, &samples, &cfg);
        assert!(report.val_loss.first().unwrap() > report.val_loss.last().unwrap());
        let table = model.error_table(&test);
        let region_0_800 = &table.regions[3];
        assert!(region_0_800.4 > 0, "test points exist");
        assert!(region_0_800.3 < 40.0, "mean abs error under 40%: {:?}", table.regions);
    }

    #[test]
    fn predictions_scale_back_to_ms() {
        let samples = synthetic_samples(300, 6);
        let cfg = TrainConfig { epochs: 25, evals: 5, ..Default::default() };
        let (model, _, _) = fit_model(NetKind::Gnn, &samples, &cfg);
        let p = model.predict_ms(&[60.0, 60.0, 60.0], &[1000.0, 1500.0, 1200.0]);
        assert!(p > 1.0 && p < 500.0, "prediction in a sane ms range: {p}");
    }

    #[test]
    fn quota_gradient_is_mostly_negative() {
        // More CPU → lower predicted latency, so ∂latency/∂quota < 0 at a
        // loaded operating point for a trained model.
        let samples = synthetic_samples(600, 7);
        let cfg = TrainConfig { epochs: 40, evals: 8, ..Default::default() };
        let (mut model, _, _) = fit_model(NetKind::Gnn, &samples, &cfg);
        let g = model.grad_quota(&[100.0, 100.0, 100.0], &[400.0, 600.0, 500.0]);
        let negatives = g.iter().filter(|&&v| v < 0.0).count();
        assert!(negatives >= 2, "gradients should point downhill: {g:?}");
    }

    #[test]
    fn flat_mlp_also_trains() {
        let samples = synthetic_samples(400, 8);
        let cfg = TrainConfig { epochs: 30, evals: 6, ..Default::default() };
        let (_, report, _) = fit_model(NetKind::FlatMlp, &samples, &cfg);
        assert!(report.best_val < report.val_loss[0]);
    }

    #[test]
    fn error_table_regions_and_overestimation() {
        let preds = vec![55.0, 110.0, 40.0, 450.0];
        let labels = vec![50.0, 100.0, 50.0, 400.0];
        let t = ErrorTable::compute(&preds, &labels);
        assert_eq!(t.count, 4);
        // 0-50: only label 50? No: region is [0,50) → 40/50 point only.
        let r0 = &t.regions[0];
        assert_eq!(r0.4, 0, "no labels strictly below 50 except... none");
        let r_all = &t.regions[3];
        assert_eq!(r_all.4, 4);
        assert!(t.overestimate_fraction > 0.5);
        assert!(t.mean_overestimate_pct > 0.0);
    }

    #[test]
    fn best_checkpoint_is_restored() {
        // With a tiny noisy set and many epochs, final val loss can exceed
        // the best; after train() the model must hold the best checkpoint.
        let samples = synthetic_samples(120, 9);
        let cfg = TrainConfig { epochs: 30, evals: 10, ..Default::default() };
        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
        let split = ds.split(0.6, 0.2, 4);
        let mut model = LatencyModel::new(
            NetKind::Gnn,
            &[(0, 1), (1, 2)],
            3,
            scaler,
            split.train.label_mean(),
            12,
        );
        let report = model.train(&split, &cfg);
        let final_val = model.eval_loss(&split.val, &cfg);
        assert!(
            final_val <= report.best_val * 1.0001,
            "restored checkpoint matches best: {final_val} vs {}",
            report.best_val
        );
    }
}
