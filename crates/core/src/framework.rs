//! End-to-end GRAF assembly: profile → bound → sample → train → control.
//!
//! [`Graf::build`] performs the full §3 pipeline against a simulated
//! application, producing the trained artifacts; [`Graf::controller`] then
//! yields an [`crate::GrafController`] ready to drive a live cluster.

use graf_sim::topology::AppTopology;

use crate::analyzer::WorkloadAnalyzer;
use crate::controller::{GrafController, GrafControllerConfig};
use crate::dataset::Dataset;
use crate::features::FeatureScaler;
use crate::latency_model::{LatencyModel, NetKind, TrainConfig, TrainReport};
use crate::sample_collector::{Bounds, Sample, SampleCollector, SamplingConfig};

/// Configuration for [`Graf::build`].
#[derive(Clone, Debug)]
pub struct GrafBuildConfig {
    /// Sampling and Algorithm-1 settings.
    pub sampling: SamplingConfig,
    /// Training settings.
    pub train: TrainConfig,
    /// Network architecture.
    pub net: NetKind,
    /// Number of training samples to collect (paper: 42 k–50 k; CPU-scale
    /// default much smaller).
    pub num_samples: usize,
    /// Train/val split seed.
    pub split_seed: u64,
}

impl Default for GrafBuildConfig {
    fn default() -> Self {
        Self {
            sampling: SamplingConfig::default(),
            train: TrainConfig::default(),
            net: NetKind::Gnn,
            num_samples: 1500,
            split_seed: 42,
        }
    }
}

/// The trained GRAF artifacts for one application.
pub struct Graf {
    /// The application this instance was trained for.
    pub topo: AppTopology,
    /// Workload analyzer fitted on profiling traces.
    pub analyzer: WorkloadAnalyzer,
    /// Algorithm-1 quota bounds.
    pub bounds: Bounds,
    /// The trained latency prediction model.
    pub model: LatencyModel,
    /// Learning curves of the training run.
    pub report: TrainReport,
    /// Held-out test set (for Table-2 style analysis).
    pub test_set: Dataset,
    /// The raw collected samples.
    pub samples: Vec<Sample>,
    /// Build configuration used.
    pub build_cfg: GrafBuildConfig,
}

impl Graf {
    /// Runs the full offline pipeline: profile the app, reduce the search
    /// space (Algorithm 1), collect samples in parallel, and train the
    /// latency prediction model with best-checkpoint selection.
    ///
    /// Quickstart — build GRAF for a two-service chain and plan instances:
    ///
    /// ```
    /// use graf_core::{Graf, GrafBuildConfig, SamplingConfig, TrainConfig};
    /// use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};
    ///
    /// let topo = AppTopology::new(
    ///     "demo",
    ///     vec![ServiceSpec::new("web", 1.0, 300), ServiceSpec::new("db", 3.0, 300)],
    ///     vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
    /// );
    /// let graf = Graf::build(
    ///     topo,
    ///     GrafBuildConfig {
    ///         sampling: SamplingConfig {
    ///             probe_qps: vec![40.0],
    ///             measure_secs: 2.0,
    ///             warmup_secs: 1.0,
    ///             ..SamplingConfig::default()
    ///         },
    ///         train: TrainConfig { epochs: 3, evals: 1, ..Default::default() },
    ///         num_samples: 24,
    ///         ..Default::default()
    ///     },
    /// );
    /// // The analyzer learned the call graph from traces; the controller
    /// // turns per-API rates into per-service instance counts.
    /// assert_eq!(graf.analyzer.edges(), &[(0, 1)]);
    /// let mut controller = graf.controller(100.0);
    /// let counts = controller.plan_instances(&[40.0], 500.0);
    /// assert!(counts.iter().all(|&c| c >= 1));
    /// ```
    pub fn build(topo: AppTopology, cfg: GrafBuildConfig) -> Self {
        Self::build_observed(topo, cfg, &graf_obs::Obs::disabled())
    }

    /// [`Graf::build`] with telemetry: the bound search, sample fan-out and
    /// training run report through `obs`. The produced artifacts are
    /// identical to the unobserved build.
    pub fn build_observed(topo: AppTopology, cfg: GrafBuildConfig, obs: &graf_obs::Obs) -> Self {
        let collector =
            SampleCollector::new(topo.clone(), cfg.sampling.clone()).with_obs(obs.clone());
        let analyzer = collector.profile();
        let bounds = collector.reduce_search_space();
        let samples = collector.collect(&bounds, &analyzer, cfg.num_samples);
        assert!(!samples.is_empty(), "sample collection produced nothing");

        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let dataset = LatencyModel::dataset_from_samples(&scaler, &samples);
        let split = dataset.split(0.7, 0.15, cfg.split_seed);
        let label_scale = split.train.label_mean().max(1e-9);

        // The GNN's graph comes from traces (§3.4); fall back to the static
        // topology if profiling somehow saw no edges.
        let mut edges: Vec<(u16, u16)> = analyzer.edges().to_vec();
        if edges.is_empty() {
            edges = topo.edges().iter().map(|&(p, c)| (p.0, c.0)).collect();
        }
        let mut model = LatencyModel::new(
            cfg.net,
            &edges,
            topo.num_services(),
            scaler,
            label_scale,
            cfg.split_seed ^ 0x6E7,
        );
        let report = model.train_observed(&split, &cfg.train, obs);

        Self {
            topo,
            analyzer,
            bounds,
            model,
            report,
            test_set: split.test,
            samples,
            build_cfg: cfg,
        }
    }

    /// Retrains a model of the given kind on this build's samples with the
    /// same split — the §5.1 "GRAF vs GRAF without MPNN" ablation (Fig 11).
    pub fn train_ablation(&self, kind: NetKind) -> (LatencyModel, TrainReport) {
        let scaler = self.model.scaler;
        let dataset = LatencyModel::dataset_from_samples(&scaler, &self.samples);
        let split = dataset.split(0.7, 0.15, self.build_cfg.split_seed);
        let label_scale = split.train.label_mean().max(1e-9);
        let mut edges: Vec<(u16, u16)> = self.analyzer.edges().to_vec();
        if edges.is_empty() {
            edges = self.topo.edges().iter().map(|&(p, c)| (p.0, c.0)).collect();
        }
        let mut model = LatencyModel::new(
            kind,
            &edges,
            self.topo.num_services(),
            scaler,
            label_scale,
            self.build_cfg.split_seed ^ 0x6E7,
        );
        let report = model.train(&split, &self.build_cfg.train);
        (model, report)
    }

    /// Reference total front-end qps for §3.6 workload scaling: the probe
    /// operating point, i.e. the *center* of the sampled workload range.
    /// Observed totals beyond it are scaled down to this well-modeled region
    /// and the solved quotas scaled back up, rather than solving at the edge
    /// of the training box where the quota bounds bind.
    pub fn train_total_qps(&self) -> f64 {
        self.build_cfg.sampling.probe_qps.iter().sum()
    }

    /// Creates a controller targeting `slo_ms` with the trained artifacts.
    pub fn controller(&self, slo_ms: f64) -> GrafController {
        let cfg = GrafControllerConfig {
            slo_ms,
            train_total_qps: self.train_total_qps(),
            ..Default::default()
        };
        self.controller_with(cfg)
    }

    /// Creates a controller with a custom configuration.
    pub fn controller_with(&self, cfg: GrafControllerConfig) -> GrafController {
        GrafController::new(self.model.clone(), self.analyzer.clone(), self.bounds.clone(), cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample_collector::SamplingConfig;
    use graf_sim::topology::{ApiSpec, CallNode, ServiceSpec};

    fn tiny_build() -> Graf {
        let topo = AppTopology::new(
            "tiny",
            vec![ServiceSpec::new("a", 1.0, 300), ServiceSpec::new("b", 2.5, 300)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        );
        let cfg = GrafBuildConfig {
            sampling: SamplingConfig {
                probe_qps: vec![40.0],
                measure_secs: 3.0,
                warmup_secs: 1.5,
                abundant_quota_mc: 2500.0,
                threads: 8,
                ..SamplingConfig::default()
            },
            train: TrainConfig { epochs: 20, evals: 5, ..Default::default() },
            num_samples: 120,
            ..Default::default()
        };
        Graf::build(topo, cfg)
    }

    #[test]
    fn build_produces_consistent_artifacts() {
        let graf = tiny_build();
        assert_eq!(graf.analyzer.edges(), &[(0, 1)]);
        assert_eq!(graf.samples.len(), 120);
        assert!(graf.bounds.lower[1] > graf.bounds.lower[0], "heavy service floors higher");
        assert!(!graf.test_set.is_empty());
        assert!(graf.report.best_val.is_finite());
        // Model responds to quota in a sane direction at a loaded point.
        let l = graf.analyzer.service_workloads(&[45.0]);
        let p_small = graf.model.predict_ms(&l, &graf.bounds.lower);
        let p_big = graf.model.predict_ms(&l, &graf.bounds.upper);
        assert!(p_small > p_big, "starved config predicts higher latency: {p_small} vs {p_big}");
    }

    #[test]
    fn controller_from_build_plans_quotas() {
        let graf = tiny_build();
        let mut ctrl = graf.controller(80.0);
        let (quotas, res) = ctrl.plan(&[40.0]);
        assert_eq!(quotas.len(), 2);
        assert!(quotas.iter().all(|&q| q > 0.0));
        assert!(res.iterations > 0);
    }
}
