//! The resource controller and GRAF's proactive control loop (§3.6, §3.8).
//!
//! Every control interval the controller:
//!
//! 1. reads the **front-end** workload per API — the only live signal GRAF
//!    needs, available the instant traffic changes (§3.8),
//! 2. scales the workload into the trained region (§3.6: "scale observed
//!    workload moderately to fit into the latency prediction model"),
//! 3. distributes it over microservices with the workload analyzer (§3.3),
//! 4. runs the configuration solver through the trained model (§3.5),
//! 5. scales the solved quotas back up and converts them to instance counts
//!    (`ceil(quota / unit)`, eq. 7), and
//! 6. applies the decision to **every** microservice at once — which is what
//!    defeats the cascading effect when traffic surges.

use graf_orchestrator::{Autoscaler, Cluster};
use graf_sim::time::SimDuration;
use graf_sim::topology::{ApiId, ServiceId};

use graf_obs::Obs;

use crate::analyzer::WorkloadAnalyzer;
use crate::latency_model::LatencyModel;
use crate::sample_collector::Bounds;
use crate::solver::{solve_instrumented, SolveResult, SolverConfig};

/// Control-loop configuration.
#[derive(Clone, Debug)]
pub struct GrafControllerConfig {
    /// End-to-end p99 SLO, ms.
    pub slo_ms: f64,
    /// Control interval (the paper reports 3.4–6.8 s solver runtime against a
    /// 15 s production-style interval).
    pub interval: SimDuration,
    /// Trailing window over which front-end rates are observed.
    pub rate_window: SimDuration,
    /// Reference total front-end qps of the trained region; higher observed
    /// totals are scaled down by `s = total/reference` before solving and the
    /// resulting quotas multiplied back by `s` (§3.6).
    pub train_total_qps: f64,
    /// Safety multiplier on observed rates (1.0 = none).
    pub headroom: f64,
    /// Solver settings.
    pub solver: SolverConfig,
    /// §6 extension: refine `ceil(quota/unit)` into leaner integer instance
    /// counts by greedy model-checked removal. Applies when the observed
    /// workload is inside the trained region (no §3.6 rescaling active).
    pub integer_refine: bool,
}

impl Default for GrafControllerConfig {
    fn default() -> Self {
        Self {
            slo_ms: 100.0,
            interval: SimDuration::from_secs(15.0),
            rate_window: SimDuration::from_secs(5.0),
            train_total_qps: 100.0,
            headroom: 1.0,
            solver: SolverConfig::default(),
            integer_refine: false,
        }
    }
}

/// Everything one §3.6 planning pass produces. All `plan*` entry points are
/// wrappers over this, so `last_*` fields and telemetry populate in exactly
/// one place.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// Applied per-service quotas (after §3.6 rescaling), millicores.
    pub quotas_mc: Vec<f64>,
    /// Instance counts, when a CPU unit was supplied (eq. 7, possibly
    /// tightened by the §6 integer refinement).
    pub counts: Option<Vec<usize>>,
    /// Per-service workloads the solver saw (scaled space).
    pub workloads: Vec<f64>,
    /// §3.6 scale factor `s = total/train_total_qps` (≥ 1).
    pub scale: f64,
    /// The solver's result at the scaled workload.
    pub solve: SolveResult,
    /// Instances reclaimed by the integer refinement versus plain `ceil`.
    pub refine_saved: usize,
}

/// GRAF's end-to-end autoscaler.
pub struct GrafController {
    model: LatencyModel,
    analyzer: WorkloadAnalyzer,
    bounds: Bounds,
    /// Control configuration (mutable so experiments can toggle options like
    /// `integer_refine` after construction).
    pub cfg: GrafControllerConfig,
    /// Most recent solve, for observability and the bench harness.
    pub last_solve: Option<SolveResult>,
    /// Most recent applied per-service quotas (after workload rescaling), mc.
    pub last_quotas_mc: Vec<f64>,
    /// Telemetry handle; disabled by default.
    pub obs: Obs,
    /// Self-profiler handle; disabled by default.
    pub prof: graf_prof::Prof,
}

impl GrafController {
    /// Creates the controller from trained artifacts.
    pub fn new(
        model: LatencyModel,
        analyzer: WorkloadAnalyzer,
        bounds: Bounds,
        cfg: GrafControllerConfig,
    ) -> Self {
        assert_eq!(model.num_services(), analyzer.num_services());
        assert!(cfg.train_total_qps > 0.0);
        Self {
            model,
            analyzer,
            bounds,
            cfg,
            last_solve: None,
            last_quotas_mc: Vec::new(),
            obs: Obs::disabled(),
            prof: graf_prof::Prof::disabled(),
        }
    }

    /// Attaches a telemetry handle: ticks, solves and planning decisions are
    /// recorded through it. Telemetry never alters any decision.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Attaches a self-profiler handle: ticks, solves and training steps
    /// attribute wall time to `controller.tick` / `solver.*` / `train.*`
    /// phases. Profiling never alters any decision.
    pub fn set_prof(&mut self, prof: graf_prof::Prof) {
        self.model.set_prof(prof.clone());
        self.prof = prof;
    }

    /// The controller configuration.
    pub fn config(&self) -> &GrafControllerConfig {
        &self.cfg
    }

    /// The workload analyzer the controller plans with.
    pub fn analyzer(&self) -> &WorkloadAnalyzer {
        &self.analyzer
    }

    /// Mutable access to the workload analyzer — the degradation layer
    /// refreshes multiplicities from live traces through this.
    pub fn analyzer_mut(&mut self) -> &mut WorkloadAnalyzer {
        &mut self.analyzer
    }

    /// Reads the front-end per-API rates the controller would plan from:
    /// the trailing `rate_window` of each API's arrival counter (§3.8).
    pub fn observed_rates(&self, cluster: &Cluster) -> Vec<f64> {
        let k =
            (self.cfg.rate_window.as_micros() / cluster.world().config().window_us).max(1) as usize;
        let napis = cluster.world().topology().num_apis();
        (0..napis).map(|a| cluster.world().api_arrival_rate(ApiId(a as u16), k)).collect()
    }

    /// One full §3.6 planning pass. Every other `plan*` method delegates
    /// here, so `last_solve`/`last_quotas_mc` and telemetry are maintained in
    /// a single place.
    ///
    /// With `cpu_unit_mc = Some(unit)` the outcome also carries instance
    /// counts: eq. 7's `ceil(quota/unit)`, tightened by the §6 integer
    /// refinement when enabled and the workload is inside the trained region.
    pub fn plan_outcome(&mut self, api_rates: &[f64], cpu_unit_mc: Option<f64>) -> PlanOutcome {
        let rates: Vec<f64> = api_rates.iter().map(|r| r * self.cfg.headroom).collect();
        let total: f64 = rates.iter().sum();
        let s = (total / self.cfg.train_total_qps).max(1.0);
        let scaled: Vec<f64> = rates.iter().map(|r| r / s).collect();
        let workloads = self.analyzer.service_workloads(&scaled);
        let obs = self.obs.clone();
        let prof = self.prof.clone();
        let res = solve_instrumented(
            &mut self.model,
            &workloads,
            self.cfg.slo_ms,
            &self.bounds,
            &self.cfg.solver,
            &obs,
            &prof,
        );
        let quotas: Vec<f64> = res.quotas_mc.iter().map(|q| q * s).collect();

        let mut refine_saved = 0usize;
        let mut refined = false;
        let counts = cpu_unit_mc.map(|unit| {
            let ceil_counts: Vec<usize> =
                quotas.iter().map(|q| (q / unit).ceil().max(1.0) as usize).collect();
            if self.cfg.integer_refine && s <= 1.0 {
                let (counts, _) = crate::solver::integer_refine(
                    &self.model,
                    &workloads,
                    &res.quotas_mc,
                    &self.bounds,
                    unit,
                    self.cfg.slo_ms,
                );
                let ceil_total: usize = ceil_counts.iter().sum();
                let refined_total: usize = counts.iter().sum();
                refine_saved = ceil_total.saturating_sub(refined_total);
                refined = true;
                counts
            } else {
                ceil_counts
            }
        });

        self.last_solve = Some(res.clone());
        self.last_quotas_mc = match (&counts, cpu_unit_mc) {
            (Some(c), Some(unit)) if refined => c.iter().map(|&k| k as f64 * unit).collect(),
            _ => quotas.clone(),
        };
        PlanOutcome { quotas_mc: quotas, counts, workloads, scale: s, solve: res, refine_saved }
    }

    /// Computes the target quotas for the given per-API rates (the §3.6
    /// pipeline without touching a cluster) — also used by the benches.
    pub fn plan(&mut self, api_rates: &[f64]) -> (Vec<f64>, SolveResult) {
        let out = self.plan_outcome(api_rates, None);
        (out.quotas_mc, out.solve)
    }

    /// [`GrafController::plan`] plus the intermediate quantities: the
    /// per-service workloads the solver saw and the §3.6 scale factor.
    pub fn plan_detailed(&mut self, api_rates: &[f64]) -> (Vec<f64>, SolveResult, Vec<f64>, f64) {
        let out = self.plan_outcome(api_rates, None);
        (out.quotas_mc, out.solve, out.workloads, out.scale)
    }

    /// Plans instance counts directly: eq. 7's `ceil`, optionally tightened by
    /// the §6 integer refinement when the workload is inside the trained
    /// region.
    pub fn plan_instances(&mut self, api_rates: &[f64], cpu_unit_mc: f64) -> Vec<usize> {
        self.plan_outcome(api_rates, Some(cpu_unit_mc)).counts.expect("unit given")
    }
}

impl GrafController {
    /// One control tick planned from externally supplied per-API `rates`
    /// instead of a live metric read — the entry point the degradation layer
    /// uses to feed (possibly repaired) signals through the full §3.6 path.
    /// Returns the instance counts applied to the cluster.
    pub fn tick_with_rates(&mut self, cluster: &mut Cluster, rates: &[f64]) -> Vec<usize> {
        // Resolve the CPU unit per managed service (eq. 7). When every
        // deployment agrees — the common case — the shared unit feeds the
        // full planning path (including integer refinement); mixed units fall
        // back to per-service ceil on the planned quotas, since the §6
        // refinement is defined over a single unit.
        let num_services = self.model.num_services();
        let units: Vec<f64> = (0..num_services)
            .map(|svc| {
                cluster
                    .deployments()
                    .iter()
                    .find(|d| d.service.0 as usize == svc)
                    .map_or(100.0, |d| d.cpu_unit_mc)
            })
            .collect();
        let uniform = units.windows(2).all(|w| w[0] == w[1]);
        if !uniform {
            self.obs.counter_add("graf.controller.unit_mismatch", &[], 1);
        }
        let _tick_scope = self.prof.enter("controller.tick");
        let mut span = self.obs.span("graf.controller.tick");
        let out = if uniform {
            self.plan_outcome(rates, units.first().copied())
        } else {
            self.plan_outcome(rates, None)
        };
        let counts: Vec<usize> = match &out.counts {
            Some(c) => c.clone(),
            None => out
                .quotas_mc
                .iter()
                .zip(&units)
                .map(|(q, unit)| (q / unit).ceil().max(1.0) as usize)
                .collect(),
        };
        if span.is_recording() {
            let mut delta_total = 0i64;
            let mut deltas = String::new();
            for (svc, &n) in counts.iter().enumerate() {
                let desired = cluster
                    .deployments()
                    .iter()
                    .find(|d| d.service.0 as usize == svc)
                    .map_or(0, |d| d.desired);
                let delta = n.max(1) as i64 - desired as i64;
                delta_total += delta.abs();
                if !deltas.is_empty() {
                    deltas.push(' ');
                }
                deltas.push_str(&format!("{svc}:{delta:+}"));
            }
            span.sim_time_s(cluster.world().now().as_secs_f64())
                .attr("total_qps", rates.iter().sum::<f64>())
                .attr("scale_s", out.scale)
                .attr("solver_iterations", out.solve.iterations)
                .attr("predicted_p99_ms", out.solve.predicted_ms)
                .attr("quota_total_mc", out.quotas_mc.iter().sum::<f64>())
                .attr("instances", counts.iter().sum::<usize>())
                .attr("instance_delta_total", delta_total)
                .attr("instance_deltas", deltas)
                .attr("refine_saved", out.refine_saved)
                .attr("uniform_units", uniform);
        }
        drop(span);
        // Proactive application: every microservice scaled in the same tick.
        for (svc, &n) in counts.iter().enumerate() {
            cluster.set_desired(ServiceId(svc as u16), n.max(1));
        }
        counts
    }
}

impl Autoscaler for GrafController {
    fn interval(&self) -> SimDuration {
        self.cfg.interval
    }

    fn tick(&mut self, cluster: &mut Cluster) {
        let rates = self.observed_rates(cluster);
        self.tick_with_rates(cluster, &rates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureScaler;
    use crate::latency_model::{NetKind, TrainConfig};
    use crate::sample_collector::Sample;
    use graf_orchestrator::{CreationModel, Deployment};
    use graf_sim::rng::DetRng;
    use graf_sim::time::SimTime;
    use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};
    use graf_sim::world::{SimConfig, World};

    fn topo2() -> AppTopology {
        AppTopology::new(
            "t2",
            vec![ServiceSpec::new("a", 1.0, 200).cv(0.0), ServiceSpec::new("b", 3.0, 200).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        )
    }

    fn trained_controller(train_total_qps: f64, slo_ms: f64) -> GrafController {
        // Synthetic surface as in solver tests.
        let mut rng = DetRng::new(21);
        let works = [1.0, 3.0];
        let ranges = [(150.0, 1500.0), (400.0, 2800.0)];
        let mut samples = Vec::new();
        for _ in 0..600 {
            let w = rng.uniform(20.0, 100.0);
            let quotas: Vec<f64> = ranges.iter().map(|&(lo, hi)| rng.uniform(lo, hi)).collect();
            let mut p99 = 2.0;
            for i in 0..2 {
                let head = (quotas[i] - w * works[i]).max(15.0);
                p99 += 1200.0 * works[i] / head + works[i];
            }
            samples.push(Sample {
                api_rates: vec![w],
                workloads: vec![w, w],
                quotas_mc: quotas,
                p99_ms: p99,
            });
        }
        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
        let split = ds.split(0.8, 0.1, 2);
        let mut model =
            LatencyModel::new(NetKind::Gnn, &[(0, 1)], 2, scaler, split.train.label_mean(), 5);
        model.train(&split, &TrainConfig { epochs: 80, evals: 8, ..Default::default() });
        let analyzer = WorkloadAnalyzer::from_multiplicities(vec![vec![1.0, 1.0]], vec![(0, 1)]);
        let bounds = Bounds { lower: vec![150.0, 400.0], upper: vec![1500.0, 2800.0] };
        GrafController::new(
            model,
            analyzer,
            bounds,
            GrafControllerConfig { slo_ms, train_total_qps, ..Default::default() },
        )
    }

    #[test]
    fn plan_responds_to_workload() {
        // SLO 18 ms is binding at this load (corner predicts ~25-30 ms).
        let mut c = trained_controller(100.0, 18.0);
        let (q_low, _) = c.plan(&[25.0]);
        let (q_high, _) = c.plan(&[95.0]);
        assert!(
            q_high.iter().sum::<f64>() > q_low.iter().sum::<f64>(),
            "more workload → more CPU: {q_low:?} vs {q_high:?}"
        );
    }

    #[test]
    fn workload_scaling_extends_beyond_training_region() {
        let mut c = trained_controller(100.0, 18.0);
        let (q_ref, _) = c.plan(&[100.0]);
        let (q_double, _) = c.plan(&[200.0]);
        let ratio = q_double.iter().sum::<f64>() / q_ref.iter().sum::<f64>();
        assert!(
            (1.7..=2.3).contains(&ratio),
            "2× workload beyond the trained region scales quotas ≈2×: {ratio}"
        );
    }

    #[test]
    fn integer_refine_plans_no_more_instances_than_ceil() {
        let mut plain = trained_controller(100.0, 18.0);
        let counts_ceil = plain.plan_instances(&[60.0], 100.0);
        let mut refined_ctrl = {
            let mut c = trained_controller(100.0, 18.0);
            c.cfg.integer_refine = true;
            c
        };
        let counts_ref = refined_ctrl.plan_instances(&[60.0], 100.0);
        assert_eq!(counts_ceil.len(), counts_ref.len());
        let sum = |v: &[usize]| v.iter().sum::<usize>();
        assert!(
            sum(&counts_ref) <= sum(&counts_ceil),
            "refinement only removes: {counts_ref:?} vs {counts_ceil:?}"
        );
        assert!(counts_ref.iter().all(|&c| c >= 1));
    }

    #[test]
    fn tick_scales_every_service_at_once() {
        let mut controller = trained_controller(100.0, 18.0);
        let world = World::new(topo2(), SimConfig::default(), 31);
        let mut cluster = Cluster::new(
            world,
            vec![Deployment::new(ServiceId(0), 250.0, 1), Deployment::new(ServiceId(1), 250.0, 1)],
            CreationModel::instant(),
        );
        // Offer 80 qps for 10 s so the rate window sees the workload.
        for i in 0..800u64 {
            cluster.world_mut().inject(ApiId(0), SimTime(i * 12_500));
        }
        cluster.world_mut().run_until(SimTime::from_secs(10.0));
        controller.tick(&mut cluster);
        let d0 = cluster.deployment(ServiceId(0)).desired;
        let d1 = cluster.deployment(ServiceId(1)).desired;
        assert!(d1 > 1, "the heavy service scaled in one tick: {d0}, {d1}");
        assert!(d1 > d0, "the heavier service gets more instances: {d0} vs {d1}");
        assert!(controller.last_solve.is_some());
    }
}
