//! Steady-state evaluation runs and baseline tuning.
//!
//! The paper compares GRAF against a *fine-tuned* Kubernetes autoscaler:
//! "we hand-tuned the resource utilization threshold of K8s autoscaler to
//! meet latency SLO. One global resource utilization threshold is empirically
//! found according to the latency SLO" (§5.3). [`tune_hpa_threshold`]
//! automates that hand-tuning: it tries thresholds from loose to tight and
//! keeps the loosest one whose steady-state p99 meets the SLO.
//!
//! [`run_steady`] is the shared trial runner: warm up under load with the
//! given autoscaler, then measure p99 and average resource usage — the
//! quantities behind Figures 14/15/16/18.

use graf_loadgen::{LoadGen, OpenLoop};
use graf_metrics::Summary;
use graf_orchestrator::{
    run_experiment, Autoscaler, Cluster, CreationModel, Deployment, ExperimentHooks, HpaConfig,
    KubernetesHpa,
};
use graf_sim::time::SimDuration;
use graf_sim::topology::{ApiId, AppTopology, ServiceId};
use graf_sim::world::{Completion, SimConfig, World};

/// Outcome of one steady-state trial.
#[derive(Clone, Debug)]
pub struct SteadyOutcome {
    /// p99 end-to-end latency over the measurement phase, ms.
    pub p99_ms: Option<f64>,
    /// p95 end-to-end latency over the measurement phase, ms.
    pub p95_ms: Option<f64>,
    /// Time-averaged total live instances during measurement.
    pub mean_instances: f64,
    /// Time-averaged total ready quota, millicores.
    pub mean_quota_mc: f64,
    /// Time-averaged ready quota per service, millicores.
    pub per_service_quota_mc: Vec<f64>,
    /// Time-averaged live instances per service.
    pub per_service_instances: Vec<f64>,
    /// Requests completed during measurement.
    pub completed: usize,
    /// Requests that hit the client timeout during measurement.
    pub timeouts: usize,
}

/// A steady-state trial definition.
#[derive(Clone, Debug)]
pub struct SteadyTrial {
    /// Application under test.
    pub topo: AppTopology,
    /// Instance CPU unit per service (uniform), millicores.
    pub cpu_unit_mc: f64,
    /// Initial replicas per service.
    pub initial_replicas: usize,
    /// Offered open-loop rate per API, req/s.
    pub rates: Vec<f64>,
    /// Warm-up phase (autoscaler converges), then measurement phase.
    pub warmup: SimDuration,
    /// Measurement phase length.
    pub measure: SimDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl SteadyTrial {
    /// A trial with sensible defaults for the given app and rates.
    pub fn new(topo: AppTopology, rates: Vec<f64>) -> Self {
        assert_eq!(rates.len(), topo.num_apis());
        Self {
            topo,
            cpu_unit_mc: 100.0,
            initial_replicas: 4,
            rates,
            // Warm-up must exceed the HPA's 5-minute scale-down stabilization
            // window so the measured phase reflects converged behaviour.
            warmup: SimDuration::from_secs(420.0),
            measure: SimDuration::from_secs(180.0),
            seed: 77,
        }
    }

    /// Sets the initial replica count per service (start near the expected
    /// operating point to avoid a cold-start backlog distorting warm-up).
    pub fn initial_replicas(mut self, n: usize) -> Self {
        self.initial_replicas = n;
        self
    }

    /// Builds the cluster for this trial.
    pub fn cluster(&self) -> Cluster {
        let world = World::new(self.topo.clone(), SimConfig::default(), self.seed);
        let deployments = (0..self.topo.num_services())
            .map(|s| Deployment::new(ServiceId(s as u16), self.cpu_unit_mc, self.initial_replicas))
            .collect();
        Cluster::new(world, deployments, CreationModel::default())
    }

    /// Builds the open-loop generator for this trial.
    pub fn loadgen(&self) -> OpenLoop {
        let mut g = OpenLoop::new(self.seed ^ 0x10AD).poisson();
        for (api, &rate) in self.rates.iter().enumerate() {
            g = g.rate(ApiId(api as u16), rate);
        }
        g
    }
}

/// Runs a steady-state trial under the given autoscaler.
pub fn run_steady(trial: &SteadyTrial, scaler: &mut dyn Autoscaler) -> SteadyOutcome {
    let mut cluster = trial.cluster();
    let mut loadgen = trial.loadgen();
    run_steady_with(trial, &mut cluster, &mut loadgen, scaler)
}

/// Runs a steady-state trial with a caller-provided cluster and generator.
pub fn run_steady_with(
    trial: &SteadyTrial,
    cluster: &mut Cluster,
    loadgen: &mut dyn LoadGen,
    scaler: &mut dyn Autoscaler,
) -> SteadyOutcome {
    let warmup_end = cluster.world().now() + trial.warmup;
    let end = warmup_end + trial.measure;
    let n = trial.topo.num_services();

    let mut lat = Summary::new();
    let mut completed = 0usize;
    let mut timeouts = 0usize;
    let mut inst_samples = 0usize;
    let mut inst_sum = 0.0f64;
    let mut quota_sum = 0.0f64;
    let mut per_quota = vec![0.0f64; n];
    let mut per_inst = vec![0.0f64; n];

    let mut on_segment = |cluster: &mut Cluster, comps: &[Completion]| {
        let now = cluster.world().now();
        if now <= warmup_end {
            return;
        }
        for c in comps {
            lat.record(c.latency_us() as f64 / 1000.0);
            completed += 1;
            if c.timed_out {
                timeouts += 1;
            }
        }
        inst_samples += 1;
        inst_sum += cluster.total_instances() as f64;
        quota_sum += cluster.total_ready_quota_mc();
        for s in 0..n {
            per_quota[s] += cluster.world().ready_quota_mc(ServiceId(s as u16));
            per_inst[s] += cluster.live_instances(ServiceId(s as u16)) as f64;
        }
    };
    let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
    run_experiment(cluster, loadgen, scaler, end, &mut hooks);

    let div = inst_samples.max(1) as f64;
    SteadyOutcome {
        p99_ms: lat.percentile(0.99),
        p95_ms: lat.percentile(0.95),
        mean_instances: inst_sum / div,
        mean_quota_mc: quota_sum / div,
        per_service_quota_mc: per_quota.iter().map(|v| v / div).collect(),
        per_service_instances: per_inst.iter().map(|v| v / div).collect(),
        completed,
        timeouts,
    }
}

/// Creates an HPA with the given threshold (convenience for evaluations).
pub fn hpa_with_threshold(threshold: f64, num_services: usize) -> KubernetesHpa {
    KubernetesHpa::new(HpaConfig::with_threshold(threshold), num_services)
}

/// Hand-tunes the HPA utilization threshold for a latency SLO (§5.3):
/// candidates are tried loosest-first and the loosest threshold whose
/// steady-state p99 meets `slo_ms` wins; if none qualifies the tightest is
/// returned. Returns `(threshold, outcome)`.
///
/// A fixed global threshold must hold up across runs, not just on the run it
/// was picked on — an operator hand-tuning against live p99 noise cannot
/// overfit to one trajectory. The tuner therefore validates every candidate
/// on **two** independent seeds and only accepts thresholds that meet the
/// SLO on both; the returned outcome is from the trial's own seed.
pub fn tune_hpa_threshold(
    trial: &SteadyTrial,
    slo_ms: f64,
    candidates: &[f64],
) -> (f64, SteadyOutcome) {
    assert!(!candidates.is_empty());
    let mut sorted: Vec<f64> = candidates.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite thresholds"));
    let mut validation = trial.clone();
    validation.seed = trial.seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut last = None;
    for &threshold in &sorted {
        let mut hpa =
            KubernetesHpa::new(HpaConfig::with_threshold(threshold), trial.topo.num_services());
        let outcome = run_steady(trial, &mut hpa);
        let ok = outcome.p99_ms.is_some_and(|p| p <= slo_ms);
        let ok = ok && {
            let mut hpa2 =
                KubernetesHpa::new(HpaConfig::with_threshold(threshold), trial.topo.num_services());
            let v = run_steady(&validation, &mut hpa2);
            v.p99_ms.is_some_and(|p| p <= slo_ms)
        };
        let record = (threshold, outcome);
        if ok {
            return record;
        }
        last = Some(record);
    }
    last.expect("at least one candidate evaluated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_orchestrator::StaticScaler;
    use graf_sim::topology::{ApiSpec, CallNode, ServiceSpec};

    fn topo() -> AppTopology {
        AppTopology::new(
            "t",
            vec![ServiceSpec::new("a", 1.0, 200), ServiceSpec::new("b", 3.0, 200)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        )
    }

    fn quick_trial(rates: Vec<f64>) -> SteadyTrial {
        let mut t = SteadyTrial::new(topo(), rates).initial_replicas(2);
        t.cpu_unit_mc = 250.0;
        t.warmup = SimDuration::from_secs(60.0);
        t.measure = SimDuration::from_secs(30.0);
        t
    }

    #[test]
    fn static_provisioning_measures_latency_and_resources() {
        let trial = quick_trial(vec![30.0]);
        let out = run_steady(&trial, &mut StaticScaler);
        assert!(out.completed > 500, "completed {}", out.completed);
        assert!(out.p99_ms.unwrap() > 4.0);
        assert!((out.mean_instances - 4.0).abs() < 1e-9, "2 services × 2 replicas");
        assert_eq!(out.per_service_quota_mc.len(), 2);
    }

    #[test]
    fn hpa_outcome_tracks_threshold() {
        let trial = quick_trial(vec![120.0]);
        // Offered: a=120 mc, b=360 mc. Tight threshold → more instances.
        let mut loose = KubernetesHpa::new(HpaConfig::with_threshold(0.9), 2);
        let mut tight = KubernetesHpa::new(HpaConfig::with_threshold(0.2), 2);
        let out_loose = run_steady(&trial, &mut loose);
        let out_tight = run_steady(&trial, &mut tight);
        assert!(
            out_tight.mean_instances > out_loose.mean_instances,
            "tight {} vs loose {}",
            out_tight.mean_instances,
            out_loose.mean_instances
        );
        assert!(
            out_tight.p99_ms.unwrap() <= out_loose.p99_ms.unwrap() * 1.1,
            "tight threshold cannot be much slower"
        );
    }

    #[test]
    fn tuning_picks_loosest_threshold_meeting_slo() {
        let trial = quick_trial(vec![120.0]);
        let candidates = [0.9, 0.7, 0.5, 0.3];
        let (threshold, outcome) = tune_hpa_threshold(&trial, 40.0, &candidates);
        assert!(candidates.contains(&threshold));
        // The chosen configuration was actually evaluated.
        assert!(outcome.completed > 0);
        if let Some(p99) = outcome.p99_ms {
            // Either it met the SLO or the tightest candidate was returned.
            assert!(p99 <= 40.0 || (threshold - 0.3).abs() < 1e-9);
        }
    }
}
