//! The state-aware sample collector (§3.7) and Algorithm 1.
//!
//! Training the latency prediction model needs `(workload, quotas) → p99`
//! samples. Exploring every quota combination is hopeless (the paper reports
//! a 0.00027× search-space reduction for Online Boutique), so Algorithm 1
//! first bounds each service's useful quota range:
//!
//! * the **upper bound** is where extra CPU stops reducing the service's own
//!   tail latency (per-job rate caps and base latency put a floor under it),
//! * the **lower bound** is where the *single service's* latency alone would
//!   already violate the end-to-end latency SLO.
//!
//! Samples are then drawn uniformly inside the box and measured by running
//! the simulated application — each sample applies a configuration, offers
//! load, lets the system settle, and reads the p99 over a 10-second window,
//! mirroring the paper's apply → load → measure → flush cycle. Samples are
//! independent, so collection fans out across threads (the analog of the
//! paper's "sample collection can be processed in parallel").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use graf_metrics::Summary;
use graf_sim::rng::DetRng;
use graf_sim::time::SimTime;
use graf_sim::topology::{ApiId, AppTopology, ServiceId};
use graf_sim::world::{SimConfig, World};
use graf_trace::Trace;

use crate::analyzer::WorkloadAnalyzer;

/// Sampling and Algorithm-1 configuration.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// End-to-end latency SLO in ms (Algorithm 1's lower-bound criterion).
    pub slo_ms: f64,
    /// Representative per-API probe rates (req/s) for bound search; samples
    /// scale these by a random factor in `workload_range`.
    pub probe_qps: Vec<f64>,
    /// Random per-sample workload multiplier range.
    pub workload_range: (f64, f64),
    /// "Sufficient CPU" for Algorithm 1's initialization, millicores.
    pub abundant_quota_mc: f64,
    /// Geometric quota-reduction factor per Algorithm-1 step.
    pub reduce_factor: f64,
    /// Quota floor, millicores.
    pub min_quota_mc: f64,
    /// Upper bound triggers when service p90 exceeds baseline × this (plus
    /// a small absolute slack to absorb sub-millisecond noise).
    pub upper_tolerance: f64,
    /// Instance CPU unit (quotas are deployed as `ceil(q/unit)` instances).
    pub cpu_unit_mc: f64,
    /// Measurement window, seconds (paper: 10 s).
    pub measure_secs: f64,
    /// Settle time before the window, seconds (paper's 5 s flush analog).
    pub warmup_secs: f64,
    /// Tail percentile to record (paper: 0.99).
    pub percentile: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for sample collection.
    pub threads: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            slo_ms: 100.0,
            probe_qps: vec![50.0],
            workload_range: (0.3, 1.3),
            abundant_quota_mc: 4000.0,
            reduce_factor: 0.85,
            min_quota_mc: 50.0,
            upper_tolerance: 1.10,
            cpu_unit_mc: 500.0,
            measure_secs: 10.0,
            warmup_secs: 5.0,
            percentile: 0.99,
            seed: 1,
            threads: 4,
        }
    }
}

/// Per-service quota bounds from Algorithm 1, millicores.
#[derive(Clone, Debug, PartialEq)]
pub struct Bounds {
    /// Lower bound `L_i`.
    pub lower: Vec<f64>,
    /// Upper bound `H_i`.
    pub upper: Vec<f64>,
}

impl Bounds {
    /// Box volume ratio versus the original `[min, abundant]^n` search space
    /// (the §5.1 "0.00027× reduced search space" statistic).
    pub fn volume_reduction(&self, min_mc: f64, abundant_mc: f64) -> f64 {
        let mut ratio = 1.0;
        for (l, h) in self.lower.iter().zip(&self.upper) {
            ratio *= ((h - l) / (abundant_mc - min_mc)).clamp(0.0, 1.0);
        }
        ratio
    }
}

/// One collected training sample.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Offered per-API rates (req/s).
    pub api_rates: Vec<f64>,
    /// Per-service workloads derived by the analyzer (req/s).
    pub workloads: Vec<f64>,
    /// Applied per-service quotas, millicores.
    pub quotas_mc: Vec<f64>,
    /// Measured end-to-end tail latency, milliseconds.
    pub p99_ms: f64,
}

/// Result of one measurement run.
#[derive(Clone, Debug)]
pub struct MeasureOutcome {
    /// End-to-end tail latency over the window, ms (None if nothing completed).
    pub e2e_tail_ms: Option<f64>,
    /// Per-service tail latency (configured percentile) over the window, ms.
    pub service_tail_ms: Vec<Option<f64>>,
    /// Per-service p90 over the window, ms (steadier signal for Algorithm 1).
    pub service_p90_ms: Vec<Option<f64>>,
    /// Requests completed inside the window.
    pub completed: usize,
}

/// Collects training data from a simulated application.
pub struct SampleCollector {
    topo: AppTopology,
    cfg: SamplingConfig,
    obs: graf_obs::Obs,
}

impl SampleCollector {
    /// Creates a collector.
    ///
    /// # Panics
    /// Panics unless `probe_qps` has one rate per API of the topology.
    pub fn new(topo: AppTopology, cfg: SamplingConfig) -> Self {
        assert_eq!(cfg.probe_qps.len(), topo.num_apis(), "probe_qps must have one rate per API");
        assert!(cfg.reduce_factor > 0.0 && cfg.reduce_factor < 1.0);
        Self { topo, cfg, obs: graf_obs::Obs::disabled() }
    }

    /// Attaches a telemetry handle: the Algorithm-1 bound search and the
    /// sample fan-out report progress through it.
    pub fn with_obs(mut self, obs: graf_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The sampling configuration.
    pub fn config(&self) -> &SamplingConfig {
        &self.cfg
    }

    /// Runs one measurement: deploy `quotas`, offer `rates`, measure the tail
    /// over the configured window. Optionally returns the traces.
    pub fn measure(
        &self,
        quotas_mc: &[f64],
        rates: &[f64],
        seed: u64,
        keep_traces: bool,
    ) -> (MeasureOutcome, Vec<Trace>) {
        measure_run(&self.topo, quotas_mc, rates, &self.cfg, seed, keep_traces, None)
    }

    /// Profiles the application: runs it well-provisioned under the probe
    /// workload with full tracing and fits the workload analyzer (§3.3).
    pub fn profile(&self) -> WorkloadAnalyzer {
        let abundant = vec![self.cfg.abundant_quota_mc; self.topo.num_services()];
        let (_, traces) = self.measure(&abundant, &self.cfg.probe_qps.clone(), self.cfg.seed, true);
        WorkloadAnalyzer::from_traces(&traces, self.topo.num_apis(), self.topo.num_services(), 0.9)
    }

    /// Algorithm 1: per-service quota bounds.
    ///
    /// p99 over a short window is noisy, so the raw algorithm is robustified
    /// in two ways that preserve its semantics: the upper-bound knee is
    /// detected on the steadier p90 of the *service's own* latency, and both
    /// bounds require **two consecutive** violating steps before triggering
    /// (a single noisy window cannot set a bound).
    pub fn reduce_search_space(&self) -> Bounds {
        let mut span = self.obs.span("graf.sample.bounds");
        let mut probes = 2u64; // the two baseline runs below
        let n = self.topo.num_services();
        let abundant = vec![self.cfg.abundant_quota_mc; n];
        // Bounds must support the most demanding workload the sampler will
        // offer, so the scan runs at the top of the workload range.
        let rates: Vec<f64> =
            self.cfg.probe_qps.iter().map(|q| q * self.cfg.workload_range.1).collect();
        // Baseline per-service latency with sufficient CPU everywhere,
        // averaged over two runs to tame tail noise.
        let (b1, _) = self.measure(&abundant, &rates, self.cfg.seed ^ 0xA1, false);
        let (b2, _) = self.measure(&abundant, &rates, self.cfg.seed ^ 0xB2, false);
        let baseline90: Vec<f64> = (0..n)
            .map(|i| {
                let a = b1.service_p90_ms[i].unwrap_or(self.cfg.slo_ms);
                let b = b2.service_p90_ms[i].unwrap_or(self.cfg.slo_ms);
                0.5 * (a + b)
            })
            .collect();

        let mut lower = vec![self.cfg.min_quota_mc; n];
        let mut upper = vec![self.cfg.abundant_quota_mc; n];
        for i in 0..n {
            // One downward scan recording (quota, p90, p99) of service i.
            let mut scan: Vec<(f64, f64, f64)> = Vec::new();
            let mut quotas = abundant.clone();
            let mut q = self.cfg.abundant_quota_mc;
            let mut step = 0u64;
            let mut slo_violations = 0;
            while q > self.cfg.min_quota_mc {
                q = (q * self.cfg.reduce_factor).max(self.cfg.min_quota_mc);
                quotas[i] = q;
                step += 1;
                probes += 1;
                let (out, _) =
                    self.measure(&quotas, &rates, self.cfg.seed ^ ((i as u64) << 8) ^ step, false);
                let p90 = out.service_p90_ms[i].unwrap_or(f64::INFINITY);
                let p99 = out.service_tail_ms[i].unwrap_or(f64::INFINITY);
                scan.push((q, p90, p99));
                // Stop early once the SLO violation is confirmed twice.
                slo_violations = if p99 > self.cfg.slo_ms { slo_violations + 1 } else { 0 };
                if slo_violations >= 2 {
                    break;
                }
            }
            // Upper bound: quota preceding the first two consecutive steps
            // whose p90 exceeds baseline × tolerance.
            let degraded = |&(_, p90, _): &(f64, f64, f64)| {
                p90 > baseline90[i] * self.cfg.upper_tolerance + 0.3
            };
            let mut upper_i = scan.last().map_or(self.cfg.abundant_quota_mc, |s| s.0);
            for w in 0..scan.len() {
                if degraded(&scan[w]) && scan.get(w + 1).is_none_or(degraded) {
                    upper_i = if w == 0 { self.cfg.abundant_quota_mc } else { scan[w - 1].0 };
                    break;
                }
            }
            // Lower bound: first of two consecutive steps whose own p99
            // already violates the end-to-end SLO.
            let violates = |&(_, _, p99): &(f64, f64, f64)| p99 > self.cfg.slo_ms;
            let mut lower_i = self.cfg.min_quota_mc;
            for w in 0..scan.len() {
                if violates(&scan[w]) && scan.get(w + 1).is_some_and(violates) {
                    lower_i = scan[w].0;
                    break;
                }
            }
            upper[i] = upper_i.max(lower_i);
            lower[i] = lower_i.min(upper[i]);
            self.obs
                .point("graf.sample.bound")
                .attr("service", i)
                .attr("lower_mc", lower[i])
                .attr("upper_mc", upper[i]);
        }
        let bounds = Bounds { lower, upper };
        if span.is_recording() {
            span.attr("probes", probes).attr("services", n).attr(
                "volume_reduction",
                bounds.volume_reduction(self.cfg.min_quota_mc, self.cfg.abundant_quota_mc),
            );
            self.obs.counter_add("graf.sample.probes", &[], probes);
        }
        bounds
    }

    /// Collects `n` samples inside `bounds`, fanning out over worker threads.
    /// `analyzer` converts offered rates into per-service workload features.
    pub fn collect(&self, bounds: &Bounds, analyzer: &WorkloadAnalyzer, n: usize) -> Vec<Sample> {
        let mut span = self.obs.span("graf.sample.collect");
        let start = span.is_recording().then(std::time::Instant::now);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Sample>>> = Mutex::new(vec![None; n]);
        let threads = self.cfg.threads.max(1);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::AcqRel);
                    if idx >= n {
                        break;
                    }
                    let sample = self.collect_one(bounds, analyzer, idx);
                    results.lock().expect("collector mutex")[idx] = sample;
                });
            }
        });
        let samples: Vec<Sample> =
            results.into_inner().expect("collector mutex").into_iter().flatten().collect();
        if span.is_recording() {
            let secs = start.map_or(0.0, |t| t.elapsed().as_secs_f64());
            span.attr("requested", n).attr("collected", samples.len()).attr(
                "samples_per_sec",
                if secs > 0.0 { samples.len() as f64 / secs } else { 0.0 },
            );
            self.obs.counter_add("graf.sample.collected", &[], samples.len() as u64);
        }
        samples
    }

    /// Collects `n` samples like [`SampleCollector::collect`], but screens
    /// every sample against a chaos schedule and rejects tainted
    /// measurements (§3.7's "collected data are verified" under injected
    /// faults).
    ///
    /// Collection is conceptually sequential even though it fans out over
    /// threads: sample `idx` occupies the virtual time slot
    /// `[idx·T, (idx+1)·T)` where `T = warmup_secs + measure_secs`. A sample
    /// whose slot overlaps a fault window is first measured under the
    /// slot-localized faults ([`graf_chaos::ChaosSchedule::localized`]),
    /// rejected as tainted, and then re-measured clean — so the returned
    /// corpus is *exactly* what a fault-free collection run produces, and
    /// the model never trains on corrupted tails. Returns the samples plus
    /// the number of rejected tainted measurements.
    pub fn collect_untainted(
        &self,
        bounds: &Bounds,
        analyzer: &WorkloadAnalyzer,
        n: usize,
        schedule: &graf_chaos::ChaosSchedule,
    ) -> (Vec<Sample>, usize) {
        let slot = self.cfg.warmup_secs + self.cfg.measure_secs;
        let rejected = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Sample>>> = Mutex::new(vec![None; n]);
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.threads.max(1) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::AcqRel);
                    if idx >= n {
                        break;
                    }
                    let from = SimTime::from_secs(idx as f64 * slot);
                    let until = SimTime::from_secs((idx + 1) as f64 * slot);
                    if schedule.overlaps(from, until) {
                        // Measure under the localized faults, then discard:
                        // the run is tainted by construction.
                        let (rates, quotas) = self.sample_params(bounds, idx);
                        let local = schedule.localized(from, until);
                        let _ = measure_run(
                            &self.topo,
                            &quotas,
                            &rates,
                            &self.cfg,
                            self.cfg.seed ^ 0xC011EC7 ^ (idx as u64) << 1,
                            false,
                            Some(&local),
                        );
                        rejected.fetch_add(1, Ordering::AcqRel);
                    }
                    let sample = self.collect_one(bounds, analyzer, idx);
                    results.lock().expect("collector mutex")[idx] = sample;
                });
            }
        });
        let samples: Vec<Sample> =
            results.into_inner().expect("collector mutex").into_iter().flatten().collect();
        let rejected = rejected.into_inner();
        if rejected > 0 {
            self.obs.counter_add("graf.sample.rejected_tainted", &[], rejected as u64);
        }
        (samples, rejected)
    }

    /// The deterministic per-sample draw: offered rates and quotas for
    /// sample `idx`, independent of thread interleaving and of whether the
    /// sample was previously probed as tainted.
    fn sample_params(&self, bounds: &Bounds, idx: usize) -> (Vec<f64>, Vec<f64>) {
        let mut rng = DetRng::new(self.cfg.seed ^ 0x5A17).fork(idx as u64);
        let (wlo, whi) = self.cfg.workload_range;
        let mult = rng.uniform(wlo, whi);
        let rates: Vec<f64> = self.cfg.probe_qps.iter().map(|q| q * mult).collect();
        let quotas: Vec<f64> = bounds
            .lower
            .iter()
            .zip(&bounds.upper)
            .map(|(&l, &h)| rng.uniform(l, h.max(l + 1e-9)))
            .collect();
        (rates, quotas)
    }

    fn collect_one(
        &self,
        bounds: &Bounds,
        analyzer: &WorkloadAnalyzer,
        idx: usize,
    ) -> Option<Sample> {
        let (rates, quotas) = self.sample_params(bounds, idx);
        let (out, _) = measure_run(
            &self.topo,
            &quotas,
            &rates,
            &self.cfg,
            self.cfg.seed ^ 0xC011EC7 ^ (idx as u64) << 1,
            false,
            None,
        );
        let p99_ms = out.e2e_tail_ms?;
        let workloads = analyzer.service_workloads(&rates);
        Some(Sample { api_rates: rates, workloads, quotas_mc: quotas, p99_ms })
    }
}

/// Runs one deploy → load → measure cycle in a fresh world. `chaos` installs
/// a (slot-localized) fault schedule into the measurement world — used only
/// to probe tainted samples, whose results are discarded.
fn measure_run(
    topo: &AppTopology,
    quotas_mc: &[f64],
    rates: &[f64],
    cfg: &SamplingConfig,
    seed: u64,
    keep_traces: bool,
    chaos: Option<&graf_chaos::ChaosSchedule>,
) -> (MeasureOutcome, Vec<Trace>) {
    assert_eq!(quotas_mc.len(), topo.num_services(), "one quota per service");
    assert_eq!(rates.len(), topo.num_apis(), "one rate per API");
    let sim_cfg =
        SimConfig { trace_sample: if keep_traces { 1.0 } else { 0.0 }, ..SimConfig::default() };
    let mut world = World::new(topo.clone(), sim_cfg, seed);
    if let Some(schedule) = chaos {
        schedule.install_world(&mut world);
    }
    for (s, &q) in quotas_mc.iter().enumerate() {
        let replicas = (q / cfg.cpu_unit_mc).ceil().max(1.0) as usize;
        world.add_instances(ServiceId(s as u16), replicas, q / replicas as f64, SimTime::ZERO);
    }
    let total = SimTime::from_secs(cfg.warmup_secs + cfg.measure_secs);
    let mut gen = DetRng::new(seed ^ 0x10AD);
    for (api, &rate) in rates.iter().enumerate() {
        if rate <= 0.0 {
            continue;
        }
        // Poisson arrivals over the whole run.
        let mut t = 0.0f64;
        loop {
            // graf-lint: allow(float-reduction, sequential single-stream accumulation — one worker owns this RNG stream, no cross-thread order)
            t += gen.exp(1e6 / rate);
            if t >= total.as_micros() as f64 {
                break;
            }
            world.inject(ApiId(api as u16), SimTime(t as u64));
        }
    }
    world.run_until(total);
    let win_start = SimTime::from_secs(cfg.warmup_secs);
    let mut e2e = Summary::new();
    let mut completed = 0usize;
    for c in world.drain_completions() {
        if c.end >= win_start {
            e2e.record(c.latency_us() as f64 / 1000.0);
            completed += 1;
        }
    }
    let k = cfg.measure_secs.ceil() as usize;
    let svc_pct = |q: f64| -> Vec<Option<f64>> {
        (0..topo.num_services())
            .map(|s| world.service_percentile(ServiceId(s as u16), k, q).map(|d| d.as_millis_f64()))
            .collect()
    };
    let outcome = MeasureOutcome {
        e2e_tail_ms: e2e.percentile(cfg.percentile),
        service_tail_ms: svc_pct(cfg.percentile),
        service_p90_ms: svc_pct(0.90),
        completed,
    };
    let traces = world.traces_mut().drain_finished();
    (outcome, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::topology::{ApiSpec, CallNode, ServiceSpec};

    fn chain2() -> AppTopology {
        AppTopology::new(
            "chain2",
            vec![ServiceSpec::new("a", 1.0, 300), ServiceSpec::new("b", 3.0, 300)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        )
    }

    fn fast_cfg() -> SamplingConfig {
        SamplingConfig {
            probe_qps: vec![40.0],
            measure_secs: 4.0,
            warmup_secs: 2.0,
            abundant_quota_mc: 3000.0,
            threads: 4,
            ..SamplingConfig::default()
        }
    }

    #[test]
    fn measurement_reports_tails() {
        let c = SampleCollector::new(chain2(), fast_cfg());
        let (out, traces) = c.measure(&[2000.0, 2000.0], &[40.0], 7, true);
        assert!(out.completed > 100, "completed {}", out.completed);
        let p99 = out.e2e_tail_ms.unwrap();
        assert!(p99 > 4.0 && p99 < 100.0, "p99 {p99}");
        assert!(!traces.is_empty());
        assert!(out.service_tail_ms.iter().all(Option::is_some));
    }

    #[test]
    fn profile_learns_the_call_graph() {
        let c = SampleCollector::new(chain2(), fast_cfg());
        let analyzer = c.profile();
        assert_eq!(analyzer.edges(), &[(0, 1)]);
        let l = analyzer.service_workloads(&[10.0]);
        assert_eq!(l, vec![10.0, 10.0]);
    }

    #[test]
    fn algorithm1_bounds_are_ordered_and_tight() {
        let c = SampleCollector::new(chain2(), fast_cfg());
        let b = c.reduce_search_space();
        for i in 0..2 {
            assert!(b.lower[i] >= c.config().min_quota_mc);
            assert!(b.upper[i] <= c.config().abundant_quota_mc);
            assert!(b.lower[i] <= b.upper[i], "bounds ordered for service {i}");
        }
        // Service b (3 core·ms at 40 qps = 120 mc offered) needs more CPU
        // than a (40 mc offered): its lower bound must be higher.
        assert!(b.lower[1] > b.lower[0], "heavier service has higher floor: {b:?}");
        // The reduced box is a genuine reduction.
        let reduction = b.volume_reduction(c.config().min_quota_mc, c.config().abundant_quota_mc);
        assert!(reduction < 0.5, "volume reduced: {reduction}");
    }

    #[test]
    fn collect_produces_deterministic_samples_in_bounds() {
        let c = SampleCollector::new(chain2(), fast_cfg());
        let analyzer = c.profile();
        let bounds = Bounds { lower: vec![200.0, 300.0], upper: vec![1500.0, 2500.0] };
        let samples = c.collect(&bounds, &analyzer, 8);
        assert_eq!(samples.len(), 8);
        for s in &samples {
            for i in 0..2 {
                assert!(s.quotas_mc[i] >= bounds.lower[i] && s.quotas_mc[i] <= bounds.upper[i]);
            }
            assert!(s.p99_ms > 0.0);
            assert_eq!(s.workloads.len(), 2);
        }
        // Thread-count independence: same samples with 1 worker.
        let mut cfg1 = fast_cfg();
        cfg1.threads = 1;
        let c1 = SampleCollector::new(chain2(), cfg1);
        let samples1 = c1.collect(&bounds, &analyzer, 8);
        for (a, b) in samples.iter().zip(&samples1) {
            assert_eq!(a.quotas_mc, b.quotas_mc);
            assert_eq!(a.p99_ms, b.p99_ms);
        }
    }

    #[test]
    fn tainted_samples_are_rejected_and_remeasured() {
        use graf_chaos::{ChaosSchedule, FaultKind};
        let c = SampleCollector::new(chain2(), fast_cfg());
        let analyzer = c.profile();
        let bounds = Bounds { lower: vec![200.0, 300.0], upper: vec![1500.0, 2500.0] };
        let clean = c.collect(&bounds, &analyzer, 6);
        // Slot T = warmup 2 s + measure 4 s = 6 s; a fault spanning
        // [7 s, 14 s) taints sample slots 1 ([6,12)) and 2 ([12,18)).
        let sched = ChaosSchedule::new(5).fault(
            FaultKind::LatencySpike { service: ServiceId(0), factor: 3.0 },
            SimTime::from_secs(7.0),
            SimTime::from_secs(14.0),
        );
        let (samples, rejected) = c.collect_untainted(&bounds, &analyzer, 6, &sched);
        assert_eq!(rejected, 2, "exactly the two overlapping slots rejected");
        assert_eq!(samples.len(), clean.len());
        for (a, b) in samples.iter().zip(&clean) {
            assert_eq!(a.quotas_mc, b.quotas_mc, "re-measured corpus is fault-free");
            assert_eq!(a.p99_ms, b.p99_ms, "re-measured corpus is fault-free");
        }
    }

    #[test]
    fn more_workload_raises_tail_latency() {
        let c = SampleCollector::new(chain2(), fast_cfg());
        let (lo, _) = c.measure(&[600.0, 600.0], &[30.0], 3, false);
        let (hi, _) = c.measure(&[600.0, 600.0], &[150.0], 3, false);
        assert!(
            hi.e2e_tail_ms.unwrap() > lo.e2e_tail_ms.unwrap(),
            "tail grows with load: {lo:?} vs {hi:?}"
        );
    }
}
