//! §6 extension: graph partitioning for scalability.
//!
//! The readout layer's input grows linearly with the number of microservices
//! (§6: "the readout phase's neural network input node dimension is linearly
//! dependent on the number of microservices"), so the paper suggests that
//! "graph partitioning algorithms might reduce the burden … by partitioning
//! the microservices and training separately."
//!
//! This module implements that suggestion: [`partition_graph`] splits the
//! service graph into `k` balanced, connectivity-aware parts, and
//! [`PartitionedLatencyModel`] trains one (much smaller) GNN per part on the
//! *same* end-to-end labels, restricted to that part's features. Predictions
//! compose additively around the global mean:
//!
//! `L̂(x) = base + Σ_p (L̂_p(x_p) − base)`
//!
//! which is exact when the true latency decomposes additively across
//! partitions (sequential chains) and an approximation otherwise. The
//! `ablation_partition` bench quantifies the accuracy/size trade-off.

use crate::dataset::Dataset;
use crate::features::FeatureScaler;
use crate::latency_model::{LatencyModel, NetKind, TrainConfig, TrainReport};
use crate::sample_collector::Sample;

/// Splits a graph of `num_nodes` services into `k` balanced parts.
///
/// Greedy BFS region growing: parts are seeded round-robin from unassigned
/// nodes and grown along edges, keeping sizes within one node of each other.
/// Returns each part's sorted node list; every node appears exactly once.
pub fn partition_graph(num_nodes: usize, edges: &[(u16, u16)], k: usize) -> Vec<Vec<u16>> {
    assert!(k >= 1 && k <= num_nodes, "1 <= k <= nodes");
    let mut adj = vec![Vec::new(); num_nodes];
    for &(a, b) in edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    let target = num_nodes.div_ceil(k);
    let mut assigned = vec![false; num_nodes];
    let mut parts: Vec<Vec<u16>> = Vec::with_capacity(k);
    for _ in 0..k {
        // Seed: first unassigned node (deterministic).
        let Some(seed) = (0..num_nodes).find(|&n| !assigned[n]) else { break };
        let mut part = vec![seed as u16];
        assigned[seed] = true;
        let mut frontier = vec![seed as u16];
        while part.len() < target {
            // Expand along edges first; fall back to any unassigned node.
            let next = frontier
                .iter()
                .flat_map(|&f| adj[f as usize].iter().copied())
                .find(|&n| !assigned[n as usize])
                .or_else(|| (0..num_nodes as u16).find(|&n| !assigned[n as usize]));
            match next {
                Some(n) => {
                    assigned[n as usize] = true;
                    part.push(n);
                    frontier.push(n);
                }
                None => break,
            }
        }
        part.sort_unstable();
        parts.push(part);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// One trained sub-model with its node subset.
struct Part {
    nodes: Vec<u16>,
    model: LatencyModel,
}

/// An ensemble of per-partition latency models (§6 scalability).
pub struct PartitionedLatencyModel {
    parts: Vec<Part>,
    base_ms: f64,
    num_services: usize,
}

impl PartitionedLatencyModel {
    /// Partitions the graph, trains one model per part on the shared samples
    /// and split, and returns the ensemble with each part's train report.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        kind: NetKind,
        edges: &[(u16, u16)],
        num_services: usize,
        k: usize,
        scaler: FeatureScaler,
        samples: &[Sample],
        train: &TrainConfig,
        split_seed: u64,
    ) -> (Self, Vec<TrainReport>) {
        assert!(!samples.is_empty());
        let parts_nodes = partition_graph(num_services, edges, k);
        let base_ms = samples.iter().map(|s| s.p99_ms).sum::<f64>() / samples.len() as f64;
        let mut parts = Vec::new();
        let mut reports = Vec::new();
        for nodes in parts_nodes {
            // Induced subgraph with remapped ids.
            let remap = |id: u16| nodes.iter().position(|&n| n == id).map(|i| i as u16);
            let sub_edges: Vec<(u16, u16)> =
                edges.iter().filter_map(|&(a, b)| Some((remap(a)?, remap(b)?))).collect();
            // Per-part dataset: the same e2e labels, features restricted to
            // the part's services.
            let mut ds = Dataset::new();
            for s in samples {
                let w: Vec<f64> = nodes.iter().map(|&n| s.workloads[n as usize]).collect();
                let q: Vec<f64> = nodes.iter().map(|&n| s.quotas_mc[n as usize]).collect();
                ds.push(scaler.features(&w, &q), s.p99_ms);
            }
            let split = ds.split(0.7, 0.15, split_seed);
            let label_scale = split.train.label_mean().max(1e-9);
            let mut model = LatencyModel::new(
                kind,
                &sub_edges,
                nodes.len(),
                scaler,
                label_scale,
                split_seed ^ (nodes[0] as u64) << 3,
            );
            let report = model.train(&split, train);
            reports.push(report);
            parts.push(Part { nodes, model });
        }
        (Self { parts, base_ms, num_services }, reports)
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Total trainable parameters across all part models.
    pub fn num_params(&self) -> usize {
        self.parts.iter().map(|p| p.model.num_params()).sum()
    }

    /// Predicts e2e p99 (ms) by additive composition around the global mean.
    pub fn predict_ms(&self, workloads: &[f64], quotas_mc: &[f64]) -> f64 {
        assert_eq!(workloads.len(), self.num_services);
        let mut acc = self.base_ms;
        for p in &self.parts {
            let w: Vec<f64> = p.nodes.iter().map(|&n| workloads[n as usize]).collect();
            let q: Vec<f64> = p.nodes.iter().map(|&n| quotas_mc[n as usize]).collect();
            acc += p.model.predict_ms(&w, &q) - self.base_ms;
        }
        acc
    }

    /// Mean absolute percentage error over a sample set.
    pub fn mape(&self, samples: &[Sample]) -> f64 {
        let mut acc = 0.0;
        for s in samples {
            let p = self.predict_ms(&s.workloads, &s.quotas_mc);
            acc += ((p - s.p99_ms) / s.p99_ms.max(1e-9)).abs();
        }
        100.0 * acc / samples.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::rng::DetRng;

    #[test]
    fn partition_covers_all_nodes_exactly_once() {
        let edges = [(0u16, 1u16), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6), (6, 7)];
        for k in 1..=4 {
            let parts = partition_graph(8, &edges, k);
            let mut all: Vec<u16> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..8).collect::<Vec<_>>(), "k={k}: {parts:?}");
            // Balanced within one target size.
            let target = 8usize.div_ceil(k);
            for p in &parts {
                assert!(p.len() <= target, "k={k}: part too large {parts:?}");
            }
        }
    }

    #[test]
    fn partition_prefers_connected_regions() {
        // Two disjoint chains: 0-1-2 and 3-4-5. k=2 must split them apart.
        let edges = [(0u16, 1u16), (1, 2), (3, 4), (4, 5)];
        let parts = partition_graph(6, &edges, 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], vec![0, 1, 2]);
        assert_eq!(parts[1], vec![3, 4, 5]);
    }

    /// On an additively decomposable surface, the partitioned ensemble tracks
    /// the truth nearly as well as it would with full visibility.
    #[test]
    fn partitioned_model_learns_additive_surface() {
        let works = [0.5, 1.5, 1.0, 2.0];
        let n = works.len();
        let mut rng = DetRng::new(9);
        let mut samples = Vec::new();
        for _ in 0..800 {
            let w = rng.uniform(20.0, 100.0);
            let quotas: Vec<f64> =
                works.iter().map(|wk| rng.uniform(120.0 + wk * 110.0, 2000.0)).collect();
            let mut p99 = 3.0;
            for i in 0..n {
                let head = (quotas[i] - w * works[i]).max(12.0);
                p99 += 800.0 * works[i] / head + works[i];
            }
            samples.push(Sample {
                api_rates: vec![w],
                workloads: vec![w; n],
                quotas_mc: quotas,
                p99_ms: p99,
            });
        }
        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let edges = [(0u16, 1u16), (1, 2), (2, 3)];
        let train = TrainConfig { epochs: 60, evals: 6, ..Default::default() };
        let (model, reports) = PartitionedLatencyModel::build(
            NetKind::Gnn,
            &edges,
            n,
            2,
            scaler,
            &samples,
            &train,
            17,
        );
        assert_eq!(model.num_parts(), 2);
        assert_eq!(reports.len(), 2);
        let err = model.mape(&samples);
        assert!(err < 15.0, "partitioned ensemble fits the additive surface: {err:.1}%");
        // Quota direction is preserved through the composition.
        let w = vec![60.0; n];
        let lo: Vec<f64> = works.iter().map(|wk| 130.0 + wk * 110.0).collect();
        let hi = vec![2000.0; n];
        assert!(model.predict_ms(&w, &lo) > model.predict_ms(&w, &hi));
    }
}
