//! Graceful degradation for the control loop: a health-gated policy ladder.
//!
//! The paper's controller assumes clean inputs — complete traces, fresh
//! finite metrics, a cluster that starts instances when asked. Production
//! telemetry breaks all three (and `graf-chaos` reproduces the breakage), so
//! [`ResilientController`] wraps [`GrafController`] with the degradation
//! ladder related systems make explicit (LSRAM's lightweight fallback
//! allocator, §3.7's anomaly handling):
//!
//! 1. **Full** — the complete GRAF solve on fresh, finite rate signals.
//! 2. **LastGood** — rate signals are NaN or stale: re-apply the most recent
//!    healthy plan, as long as it is younger than a bounded age.
//! 3. **Fallback** — no sufficiently recent plan: threshold scaling on
//!    per-service CPU utilization (the Kubernetes HPA baseline), a
//!    cluster-local signal that survives front-end telemetry outages.
//! 4. **Freeze** — nothing trustworthy at all: hold the current allocation.
//!
//! Demotion is immediate; promotion back toward **Full** requires
//! `recovery_ticks` consecutive healthy ticks (hysteresis), so a flapping
//! signal cannot make the controller oscillate between policies.
//!
//! Trace gaps are handled *inside* Full rather than by demotion: the
//! workload analyzer is refreshed from live traces each tick, and API rows
//! whose trace coverage collapsed keep their last-known-good multiplicities
//! ([`WorkloadAnalyzer::fold_refit`]) — per-service workload estimates
//! interpolate across the gap instead of shrinking toward zero.
//!
//! Every policy transition is counted and every tick spanned through
//! `graf-obs` (`graf.resilient.*`).

use std::collections::VecDeque;
use std::path::PathBuf;

use graf_chaos::{ChaosEngine, ChaosSchedule};
use graf_obs::{FlightRecorder, Obs};
use graf_orchestrator::{Autoscaler, Cluster, HpaConfig, KubernetesHpa};
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::ServiceId;
use graf_trace::Trace;

use crate::analyzer::WorkloadAnalyzer;
use crate::audit::{AuditRecord, AuditSolve, AuditTrail};
use crate::controller::GrafController;

/// The rung of the degradation ladder a tick executed at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyLevel {
    /// Full GRAF solve on fresh inputs.
    Full,
    /// Re-apply the last healthy plan (bounded age).
    LastGood,
    /// Threshold/HPA scaling on cluster-local utilization.
    Fallback,
    /// Hold the current allocation.
    Freeze,
}

impl PolicyLevel {
    /// Stable lowercase name, for metric labels and tables.
    pub fn name(self) -> &'static str {
        match self {
            PolicyLevel::Full => "full",
            PolicyLevel::LastGood => "last_good",
            PolicyLevel::Fallback => "fallback",
            PolicyLevel::Freeze => "freeze",
        }
    }

    /// Ladder depth: 0 (Full) … 3 (Freeze). Higher is more degraded.
    pub fn severity(self) -> u8 {
        match self {
            PolicyLevel::Full => 0,
            PolicyLevel::LastGood => 1,
            PolicyLevel::Fallback => 2,
            PolicyLevel::Freeze => 3,
        }
    }
}

/// How the wrapper reacts to unhealthy inputs — the axis the `chaos_matrix`
/// bench compares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyMode {
    /// The graded ladder described at the module level.
    Ladder,
    /// The naive strawman: freeze on *any* unhealthy signal (bad rates,
    /// collapsed trace coverage, a creation shortfall) and do nothing until
    /// every signal recovers. This is what an operator gets from "halt
    /// automation on anomaly" alerting rules.
    FreezeOnFault,
}

/// Configuration of the degradation ladder.
#[derive(Clone, Debug)]
pub struct ResilientConfig {
    /// Maximum age of a plan that [`PolicyLevel::LastGood`] may re-apply.
    pub max_plan_age: SimDuration,
    /// Rate readings older than this count as stale (unhealthy).
    pub max_signal_age: SimDuration,
    /// Consecutive healthy ticks required before promoting back to Full.
    pub recovery_ticks: u32,
    /// Per-API trace coverage below this marks a trace gap: the analyzer
    /// holds last-known-good multiplicities, and [`PolicyMode::FreezeOnFault`]
    /// freezes.
    pub coverage_floor: f64,
    /// Minimum traces of an API drained in one tick before its coverage
    /// estimate is updated (fewer is no evidence either way).
    pub min_coverage_traces: usize,
    /// Rolling live-trace buffer the analyzer refit uses.
    pub refit_buffer: usize,
    /// Minimum buffered traces before any refit is attempted.
    pub refit_min_traces: usize,
    /// Fallback threshold-scaler configuration.
    pub hpa: HpaConfig,
    /// Ladder or the freeze-on-fault strawman.
    pub mode: PolicyMode,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            max_plan_age: SimDuration::from_secs(60.0),
            max_signal_age: SimDuration::from_secs(20.0),
            recovery_ticks: 2,
            coverage_floor: 0.7,
            min_coverage_traces: 5,
            refit_buffer: 512,
            refit_min_traces: 50,
            hpa: HpaConfig::default(),
            mode: PolicyMode::Ladder,
        }
    }
}

/// [`GrafController`] wrapped in the health-gated degradation ladder.
///
/// Implements [`Autoscaler`], so it drops into every experiment driver the
/// plain controller does. Without an armed chaos engine and with healthy
/// inputs it plans exactly like the inner controller (modulo the live
/// analyzer refresh, which adopts multiplicities statistically identical to
/// the offline fit when traces are complete).
pub struct ResilientController {
    inner: GrafController,
    cfg: ResilientConfig,
    chaos: Option<ChaosEngine>,
    /// Scrape history `(time, rates)` for staleness/snapshot faults.
    history: VecDeque<(SimTime, Vec<f64>)>,
    /// Pristine offline analyzer — the coverage yardstick.
    reference: WorkloadAnalyzer,
    /// Rolling live traces feeding the analyzer refresh.
    trace_buf: VecDeque<Trace>,
    /// Per-API trace coverage estimate (1.0 = complete call graphs).
    coverage: Vec<f64>,
    /// Most recent healthy plan: `(when, instance counts)`.
    last_plan: Option<(SimTime, Vec<usize>)>,
    fallback: KubernetesHpa,
    level: PolicyLevel,
    healthy_streak: u32,
    transitions: u64,
    interpolated_rows: u64,
    obs: Obs,
    prof: graf_prof::Prof,
    /// Tick sequence number feeding the audit trail.
    ticks: u64,
    audit: Option<AuditTrail>,
    /// Flight-recorder ring plus the path it dumps to on ladder demotion.
    flight: Option<(FlightRecorder, PathBuf)>,
}

impl ResilientController {
    /// Wraps a trained controller in the degradation ladder.
    pub fn new(inner: GrafController, cfg: ResilientConfig) -> Self {
        let reference = inner.analyzer().clone();
        let napis = reference.num_apis();
        let nservices = reference.num_services();
        let fallback = KubernetesHpa::new(cfg.hpa.clone(), nservices);
        Self {
            inner,
            cfg,
            chaos: None,
            history: VecDeque::new(),
            reference,
            trace_buf: VecDeque::new(),
            coverage: vec![1.0; napis],
            last_plan: None,
            fallback,
            level: PolicyLevel::Full,
            healthy_streak: 0,
            transitions: 0,
            interpolated_rows: 0,
            obs: Obs::disabled(),
            prof: graf_prof::Prof::disabled(),
            ticks: 0,
            audit: None,
            flight: None,
        }
    }

    /// Arms the controller-side faults of a chaos schedule (metric NaN/
    /// staleness windows, stale-model snapshots). World- and cluster-side
    /// faults are armed via `Cluster::arm_chaos`.
    pub fn arm_chaos(&mut self, schedule: &ChaosSchedule) {
        self.chaos = Some(schedule.engine(graf_chaos::stream::CONTROLLER));
    }

    /// Attaches a telemetry handle (transitions, per-tick spans, level
    /// gauge). Telemetry never alters any decision.
    pub fn set_obs(&mut self, obs: Obs) {
        self.inner.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Attaches a self-profiler handle (tick/solver/training phase
    /// attribution), delegated to the wrapped controller. Profiling never
    /// alters any decision.
    pub fn set_prof(&mut self, prof: graf_prof::Prof) {
        self.inner.set_prof(prof.clone());
        self.prof = prof;
    }

    /// Enables the per-tick decision audit trail: every tick appends one
    /// [`AuditRecord`] (inputs, chosen rung, solver stats, applied plan and
    /// deltas). Auditing is write-only and never alters any decision.
    pub fn set_audit(&mut self, trail: AuditTrail) {
        self.audit = Some(trail);
    }

    /// The audit trail, when enabled.
    pub fn audit(&self) -> Option<&AuditTrail> {
        self.audit.as_ref()
    }

    /// Mutable audit trail (e.g. to flush its file sink).
    pub fn audit_mut(&mut self) -> Option<&mut AuditTrail> {
        self.audit.as_mut()
    }

    /// Attaches a flight recorder: every tick's audit record is pushed into
    /// the ring, and any ladder **demotion** dumps the ring to `dump_path`
    /// (the crash/incident black box). Recording never alters any decision.
    pub fn set_flight(&mut self, recorder: FlightRecorder, dump_path: PathBuf) {
        self.flight = Some((recorder, dump_path));
    }

    /// The flight recorder, when attached.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref().map(|(r, _)| r)
    }

    /// The rung the most recent tick executed at.
    pub fn level(&self) -> PolicyLevel {
        self.level
    }

    /// Degradation transitions so far (both demotions and recoveries).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Analyzer rows held back by trace-gap interpolation so far.
    pub fn interpolated_rows(&self) -> u64 {
        self.interpolated_rows
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &GrafController {
        &self.inner
    }

    /// The latest reading taken at or before `t` (falls back to the oldest
    /// retained reading when the history does not reach back that far).
    fn reading_at(&self, t: SimTime) -> Option<(SimTime, Vec<f64>)> {
        let mut best: Option<&(SimTime, Vec<f64>)> = None;
        for entry in &self.history {
            if entry.0 <= t {
                best = Some(entry);
            } else {
                break;
            }
        }
        best.or_else(|| self.history.front()).cloned()
    }

    /// Applies the controller-side chaos faults to the freshly scraped
    /// `raw` rates; returns the reading the planner should see plus its
    /// sample time.
    fn observed(&self, now: SimTime, raw: &[f64]) -> (Vec<f64>, SimTime) {
        let Some(chaos) = &self.chaos else { return (raw.to_vec(), now) };
        if chaos.metric_nan(now) {
            return (vec![f64::NAN; raw.len()], now);
        }
        if let Some(since) = chaos.stale_model_since(now) {
            if let Some((t, r)) = self.reading_at(since) {
                return (r, t);
            }
        }
        if let Some(delay) = chaos.metric_delay(now) {
            let t = SimTime::from_micros(now.as_micros().saturating_sub(delay.as_micros()));
            if let Some((t, r)) = self.reading_at(t) {
                return (r, t);
            }
            // No reading that old exists: the scrape has nothing to serve.
            return (vec![f64::NAN; raw.len()], now);
        }
        (raw.to_vec(), now)
    }

    /// Folds this tick's finished traces into the coverage estimate and the
    /// live analyzer refresh.
    fn update_traces(&mut self, drained: Vec<Trace>) {
        let napis = self.reference.num_apis();
        if !drained.is_empty() {
            // Per-API coverage from this tick's traces: observed spans per
            // trace over the expected spans of a complete call graph.
            let mut spans = vec![0.0f64; napis];
            let mut count = vec![0usize; napis];
            for t in &drained {
                let api = t.api as usize;
                if api < napis {
                    spans[api] += t.spans.len() as f64;
                    count[api] += 1;
                }
            }
            for api in 0..napis {
                if count[api] >= self.cfg.min_coverage_traces {
                    let expected = self.reference.expected_spans(api).max(1.0);
                    self.coverage[api] = (spans[api] / count[api] as f64 / expected).min(1.0);
                }
            }
            for t in drained {
                if self.trace_buf.len() == self.cfg.refit_buffer {
                    self.trace_buf.pop_front();
                }
                self.trace_buf.push_back(t);
            }
        }
        if self.trace_buf.len() >= self.cfg.refit_min_traces {
            let traces: Vec<Trace> = self.trace_buf.iter().cloned().collect();
            let fresh =
                WorkloadAnalyzer::from_traces(&traces, napis, self.reference.num_services(), 0.9);
            let held = self.inner.analyzer_mut().fold_refit(
                &fresh,
                &self.coverage,
                self.cfg.coverage_floor,
            );
            if held > 0 {
                self.interpolated_rows += held as u64;
                self.obs.counter_add("graf.resilient.interpolated_rows", &[], held as u64);
            }
        }
    }

    /// The rung the current health signals call for (before hysteresis).
    fn target_level(
        &self,
        now: SimTime,
        rates_finite: bool,
        fresh_ok: bool,
        cov_ok: bool,
        creation_ok: bool,
        util_available: bool,
    ) -> PolicyLevel {
        match self.cfg.mode {
            PolicyMode::FreezeOnFault => {
                if rates_finite && fresh_ok && cov_ok && creation_ok {
                    PolicyLevel::Full
                } else {
                    PolicyLevel::Freeze
                }
            }
            PolicyMode::Ladder => {
                if rates_finite && fresh_ok {
                    // Trace gaps are repaired by interpolation inside Full;
                    // creation shortfalls are retried by re-planning.
                    PolicyLevel::Full
                } else if self.last_plan.as_ref().is_some_and(|(t, _)| {
                    now.since(*t).as_micros() <= self.cfg.max_plan_age.as_micros()
                }) {
                    PolicyLevel::LastGood
                } else if util_available {
                    PolicyLevel::Fallback
                } else {
                    PolicyLevel::Freeze
                }
            }
        }
    }
}

impl Autoscaler for ResilientController {
    fn interval(&self) -> SimDuration {
        self.inner.interval()
    }

    fn tick(&mut self, cluster: &mut Cluster) {
        let _tick_scope = self.prof.enter("controller.resilient_tick");
        let now = cluster.world().now();
        // Snapshot desired counts before acting, so the audit record can
        // report the tick's implied deltas. Only taken when someone listens.
        let want_audit = self.audit.is_some() || self.flight.is_some();
        let desired_before: Vec<usize> = if want_audit {
            cluster.deployments().iter().map(|d| d.desired).collect()
        } else {
            Vec::new()
        };

        // 1. Scrape, remember, and pass the reading through the fault engine.
        let raw = self.inner.observed_rates(cluster);
        self.history.push_back((now, raw.clone()));
        let horizon =
            now.as_micros().saturating_sub(self.cfg.max_plan_age.as_micros() + 15 * 60 * 1_000_000);
        while self.history.front().is_some_and(|(t, _)| t.as_micros() < horizon) {
            self.history.pop_front();
        }
        let (rates, sampled_at) = self.observed(now, &raw);
        let age = now.since(sampled_at);

        // 2. Trace coverage + live analyzer refresh (gap interpolation).
        let drained = cluster.world_mut().traces_mut().drain_finished();
        self.update_traces(drained);

        // 3. Health signals.
        let rates_finite = rates.iter().all(|r| r.is_finite());
        let fresh_ok = age.as_micros() <= self.cfg.max_signal_age.as_micros();
        let cov_ok = self.coverage.iter().all(|&c| c >= self.cfg.coverage_floor);
        let creation_ok = cluster.deployments().iter().all(|d| {
            let (starting, ready, _) = cluster.world().instance_counts(d.service);
            starting + ready >= d.desired
        });
        let util_available =
            cluster.deployments().iter().any(|d| cluster.world().instance_counts(d.service).1 > 0);

        // 4. Hysteresis: demote immediately, promote only after a healthy
        //    streak.
        let target =
            self.target_level(now, rates_finite, fresh_ok, cov_ok, creation_ok, util_available);
        if target == PolicyLevel::Full {
            self.healthy_streak += 1;
        } else {
            self.healthy_streak = 0;
        }
        // Demotion (target at least as severe) applies at once; promotion
        // back toward Full waits out the recovery streak.
        let demoting = target.severity() >= self.level.severity();
        let mut next = if demoting || self.healthy_streak >= self.cfg.recovery_ticks {
            target
        } else {
            self.level
        };
        // A hysteresis hold must still respect the bounded plan age.
        if next == PolicyLevel::LastGood {
            let plan_fresh = self.last_plan.as_ref().is_some_and(|(t, _)| {
                now.since(*t).as_micros() <= self.cfg.max_plan_age.as_micros()
            });
            if !plan_fresh {
                next = if util_available { PolicyLevel::Fallback } else { PolicyLevel::Freeze };
            }
        }

        // 5. Act at the chosen rung.
        match next {
            PolicyLevel::Full => {
                let counts = self.inner.tick_with_rates(cluster, &rates);
                self.last_plan = Some((now, counts));
            }
            PolicyLevel::LastGood => {
                if let Some((_, counts)) = self.last_plan.clone() {
                    for (svc, &n) in counts.iter().enumerate() {
                        cluster.set_desired(ServiceId(svc as u16), n.max(1));
                    }
                }
            }
            PolicyLevel::Fallback => self.fallback.tick(cluster),
            PolicyLevel::Freeze => {}
        }

        // 6. Decision audit + flight recorder. The record captures what the
        //    tick saw (inputs, health), chose (rung, solver stats) and did
        //    (desired counts and deltas); a demotion dumps the ring.
        let demoted = next.severity() > self.level.severity();
        if want_audit {
            let solver = (next == PolicyLevel::Full)
                .then_some(self.inner.last_solve.as_ref())
                .flatten()
                .map(|s| AuditSolve {
                    iterations: s.iterations,
                    loss: s.loss,
                    predicted_ms: s.predicted_ms,
                });
            let desired: Vec<usize> = cluster.deployments().iter().map(|d| d.desired).collect();
            let deltas: Vec<i64> =
                desired.iter().zip(&desired_before).map(|(&a, &b)| a as i64 - b as i64).collect();
            let rec = AuditRecord {
                tick: self.ticks,
                sim_time_s: now.as_secs_f64(),
                level: next.name(),
                rates: rates.clone(),
                signal_age_s: age.as_secs_f64(),
                rates_finite,
                coverage_min: self.coverage.iter().copied().fold(1.0f64, f64::min),
                creation_ok,
                solver,
                desired,
                deltas,
            };
            if let Some((ring, _)) = &self.flight {
                ring.record(&rec.to_json());
            }
            if let Some(trail) = &mut self.audit {
                trail.push(rec);
            }
        }
        if demoted {
            if let Some((ring, path)) = &self.flight {
                // Dump errors are swallowed: the black box must never take
                // down the control loop.
                let _ = ring.dump_to(path);
            }
        }
        self.ticks += 1;

        // 7. Telemetry.
        if next != self.level {
            self.transitions += 1;
            self.obs.counter_add(
                "graf.resilient.transitions",
                &[("from", self.level.name()), ("to", next.name())],
                1,
            );
        }
        self.level = next;
        if self.obs.is_enabled() {
            self.obs.gauge_set("graf.resilient.level", &[], next.severity() as f64);
            let min_cov = self.coverage.iter().copied().fold(1.0f64, f64::min);
            self.obs
                .point("graf.resilient.tick")
                .attr("level", next.name())
                .attr("signal_age_s", age.as_secs_f64())
                .attr("coverage", min_cov)
                .attr("rates_finite", rates_finite)
                .attr("creation_ok", creation_ok)
                .sim_time_s(now.as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::GrafControllerConfig;
    use crate::features::FeatureScaler;
    use crate::latency_model::{LatencyModel, NetKind, TrainConfig};
    use crate::sample_collector::{Bounds, Sample};
    use graf_chaos::FaultKind;
    use graf_orchestrator::{CreationModel, Deployment};
    use graf_sim::rng::DetRng;
    use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};
    use graf_sim::world::{SimConfig, World};

    fn topo2() -> AppTopology {
        AppTopology::new(
            "t2",
            vec![ServiceSpec::new("a", 1.0, 200).cv(0.0), ServiceSpec::new("b", 3.0, 200).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        )
    }

    /// A minimally trained controller — ladder logic does not depend on
    /// model quality, only on the solve being runnable.
    fn tiny_controller() -> GrafController {
        let mut rng = DetRng::new(21);
        let mut samples = Vec::new();
        for _ in 0..120 {
            let w = rng.uniform(20.0, 100.0);
            let quotas = vec![rng.uniform(150.0, 1500.0), rng.uniform(400.0, 2800.0)];
            let p99 =
                2.0 + 1200.0 / (quotas[0] - w).max(15.0) + 3600.0 / (quotas[1] - 3.0 * w).max(15.0);
            samples.push(Sample {
                api_rates: vec![w],
                workloads: vec![w, w],
                quotas_mc: quotas,
                p99_ms: p99,
            });
        }
        let scaler = FeatureScaler::fit(
            samples.iter().map(|s| (s.workloads.as_slice(), s.quotas_mc.as_slice())),
        );
        let ds = LatencyModel::dataset_from_samples(&scaler, &samples);
        let split = ds.split(0.8, 0.1, 2);
        let mut model =
            LatencyModel::new(NetKind::Gnn, &[(0, 1)], 2, scaler, split.train.label_mean(), 5);
        model.train(&split, &TrainConfig { epochs: 6, evals: 2, ..Default::default() });
        let analyzer = WorkloadAnalyzer::from_multiplicities(vec![vec![1.0, 1.0]], vec![(0, 1)]);
        let bounds = Bounds { lower: vec![150.0, 400.0], upper: vec![1500.0, 2800.0] };
        GrafController::new(
            model,
            analyzer,
            bounds,
            GrafControllerConfig { slo_ms: 18.0, train_total_qps: 100.0, ..Default::default() },
        )
    }

    fn cluster2(seed: u64) -> Cluster {
        let world = World::new(topo2(), SimConfig::default(), seed);
        Cluster::new(
            world,
            vec![
                Deployment::new(graf_sim::topology::ServiceId(0), 250.0, 1),
                Deployment::new(graf_sim::topology::ServiceId(1), 250.0, 1),
            ],
            CreationModel::instant(),
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn ladder_degrades_and_recovers_with_hysteresis() {
        let cfg = ResilientConfig {
            max_plan_age: SimDuration::from_secs(30.0),
            max_signal_age: SimDuration::from_secs(10.0),
            recovery_ticks: 2,
            ..ResilientConfig::default()
        };
        let mut rc = ResilientController::new(tiny_controller(), cfg);
        let schedule =
            graf_chaos::ChaosSchedule::new(9).fault(FaultKind::MetricNan, t(20.0), t(60.0));
        rc.arm_chaos(&schedule);
        let mut cluster = cluster2(31);
        let mut levels = Vec::new();
        for secs in [10.0, 15.0, 25.0, 48.0, 65.0, 70.0] {
            cluster.world_mut().run_until(t(secs));
            rc.tick(&mut cluster);
            levels.push(rc.level());
        }
        assert_eq!(
            levels,
            vec![
                PolicyLevel::Full,     // healthy
                PolicyLevel::Full,     // healthy; plan recorded at 15 s
                PolicyLevel::LastGood, // NaN rates, plan age 10 s ≤ 30 s
                PolicyLevel::Fallback, // NaN rates, plan age 33 s > 30 s
                PolicyLevel::Fallback, // healthy again, but streak 1 < 2: held
                PolicyLevel::Full,     // streak 2 → recovered
            ]
        );
        assert_eq!(rc.transitions(), 3, "full→last_good→fallback→full");
    }

    #[test]
    fn freeze_mode_freezes_on_any_fault_and_ladder_stays_live() {
        let cfg = ResilientConfig { mode: PolicyMode::FreezeOnFault, ..ResilientConfig::default() };
        let mut rc = ResilientController::new(tiny_controller(), cfg);
        let schedule =
            graf_chaos::ChaosSchedule::new(9).fault(FaultKind::MetricNan, t(20.0), t(60.0));
        rc.arm_chaos(&schedule);
        let mut cluster = cluster2(31);
        cluster.world_mut().run_until(t(10.0));
        rc.tick(&mut cluster);
        assert_eq!(rc.level(), PolicyLevel::Full);
        let desired_before: Vec<usize> = cluster.deployments().iter().map(|d| d.desired).collect();
        cluster.world_mut().run_until(t(25.0));
        rc.tick(&mut cluster);
        assert_eq!(rc.level(), PolicyLevel::Freeze);
        let desired_after: Vec<usize> = cluster.deployments().iter().map(|d| d.desired).collect();
        assert_eq!(desired_before, desired_after, "freeze holds the allocation");
    }

    #[test]
    fn audit_trail_records_every_tick_and_flight_dumps_on_demotion() {
        let cfg = ResilientConfig {
            max_plan_age: SimDuration::from_secs(30.0),
            max_signal_age: SimDuration::from_secs(10.0),
            recovery_ticks: 2,
            ..ResilientConfig::default()
        };
        let mut rc = ResilientController::new(tiny_controller(), cfg);
        let schedule =
            graf_chaos::ChaosSchedule::new(9).fault(FaultKind::MetricNan, t(20.0), t(60.0));
        rc.arm_chaos(&schedule);
        rc.set_audit(AuditTrail::in_memory());
        let dump = std::env::temp_dir()
            .join(format!("graf-flightrec-demotion-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&dump);
        rc.set_flight(FlightRecorder::new(16), dump.clone());

        let mut cluster = cluster2(31);
        // Same timeline as `ladder_degrades_and_recovers_with_hysteresis` up
        // to the fallback demotion: full, full, last_good, fallback.
        for secs in [10.0, 15.0, 25.0, 48.0] {
            cluster.world_mut().run_until(t(secs));
            rc.tick(&mut cluster);
        }

        let trail = rc.audit().expect("audit attached");
        assert_eq!(trail.len(), 4, "one record per tick");
        let levels: Vec<&str> = trail.records().iter().map(|r| r.level).collect();
        assert_eq!(levels, vec!["full", "full", "last_good", "fallback"]);
        for (i, rec) in trail.records().iter().enumerate() {
            assert_eq!(rec.tick, i as u64, "ticks are sequenced");
            assert_eq!(rec.solver.is_some(), rec.level == "full", "solver stats iff a solve ran");
            assert_eq!(rec.desired.len(), 2);
            assert_eq!(rec.deltas.len(), 2);
        }
        assert!(!trail.records()[2].rates_finite, "the NaN fault is visible in the record");

        // Both demotions dumped the ring; the file holds the state as of the
        // last one: all four decisions, in order, each line parseable.
        let dumped = std::fs::read_to_string(&dump).expect("demotion dumped the flight ring");
        let lines: Vec<&str> = dumped.lines().collect();
        assert_eq!(lines.len(), 4, "ring held every tick so far");
        for (i, line) in lines.iter().enumerate() {
            let doc = graf_obs::json::parse(line).expect("dumped line is valid JSON");
            assert_eq!(doc.get("tick").and_then(|v| v.as_f64()), Some(i as f64));
        }
        let _ = std::fs::remove_file(&dump);
    }

    #[test]
    fn audit_and_flight_do_not_perturb_decisions() {
        let run = |instrument: bool| -> (Vec<usize>, Vec<PolicyLevel>) {
            let cfg = ResilientConfig {
                max_plan_age: SimDuration::from_secs(30.0),
                max_signal_age: SimDuration::from_secs(10.0),
                recovery_ticks: 2,
                ..ResilientConfig::default()
            };
            let mut rc = ResilientController::new(tiny_controller(), cfg);
            let schedule =
                graf_chaos::ChaosSchedule::new(9).fault(FaultKind::MetricNan, t(20.0), t(60.0));
            rc.arm_chaos(&schedule);
            if instrument {
                rc.set_audit(AuditTrail::in_memory());
                rc.set_prof(graf_prof::Prof::enabled());
                let dump = std::env::temp_dir()
                    .join(format!("graf-flightrec-perturb-{}.jsonl", std::process::id()));
                rc.set_flight(FlightRecorder::new(8), dump);
            }
            let mut cluster = cluster2(31);
            let mut levels = Vec::new();
            for secs in [10.0, 15.0, 25.0, 48.0, 65.0, 70.0] {
                cluster.world_mut().run_until(t(secs));
                rc.tick(&mut cluster);
                levels.push(rc.level());
            }
            (cluster.deployments().iter().map(|d| d.desired).collect(), levels)
        };
        let plain = run(false);
        let audited = run(true);
        assert_eq!(plain.0, audited.0, "final plans are bit-identical");
        assert_eq!(plain.1, audited.1, "ladder trajectory is bit-identical");
    }

    #[test]
    fn healthy_ticks_match_inner_controller_exactly() {
        let mut rc = ResilientController::new(tiny_controller(), ResilientConfig::default());
        let mut plain = tiny_controller();
        let mut ca = cluster2(31);
        let mut cb = cluster2(31);
        for secs in [10.0, 25.0, 40.0] {
            ca.world_mut().run_until(t(secs));
            cb.world_mut().run_until(t(secs));
            rc.tick(&mut ca);
            plain.tick(&mut cb);
        }
        assert_eq!(rc.level(), PolicyLevel::Full);
        assert_eq!(rc.transitions(), 0);
        let da: Vec<usize> = ca.deployments().iter().map(|d| d.desired).collect();
        let db: Vec<usize> = cb.deployments().iter().map(|d| d.desired).collect();
        assert_eq!(da, db, "no chaos, healthy signals → identical plans");
    }
}
