//! Training data handling: deterministic splits and mini-batching.
//!
//! "Our collected samples are separated into the training, validation, and
//! test sets" (§5.1); the validation set selects the best checkpoint (§3.4).

use graf_nn::Matrix;
use graf_sim::rng::DetRng;

/// A supervised dataset: feature rows and scalar labels.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

/// Train/validation/test split of a [`Dataset`].
#[derive(Clone, Debug)]
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Validation partition (checkpoint selection).
    pub val: Dataset,
    /// Held-out test partition (Table 2's accuracy numbers).
    pub test: Dataset,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one `(features, label)` sample.
    ///
    /// # Panics
    /// Panics if the feature width differs from previous samples.
    pub fn push(&mut self, x: Vec<f64>, y: f64) {
        if let Some(first) = self.xs.first() {
            assert_eq!(first.len(), x.len(), "inconsistent feature width");
        }
        assert!(y.is_finite(), "labels must be finite");
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Feature width (0 when empty).
    pub fn width(&self) -> usize {
        self.xs.first().map_or(0, Vec::len)
    }

    /// Labels.
    pub fn labels(&self) -> &[f64] {
        &self.ys
    }

    /// Feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// The whole dataset as one matrix + label vector.
    pub fn as_matrix(&self) -> (Matrix, Vec<f64>) {
        let w = self.width();
        let m = Matrix::from_fn(self.len(), w, |r, c| self.xs[r][c]);
        (m, self.ys.clone())
    }

    /// Mean label.
    pub fn label_mean(&self) -> f64 {
        if self.ys.is_empty() {
            0.0
        } else {
            self.ys.iter().sum::<f64>() / self.ys.len() as f64
        }
    }

    /// Splits deterministically (seeded shuffle) into train/val/test with the
    /// given fractions (test gets the remainder).
    ///
    /// # Panics
    /// Panics unless `0 < train_frac`, `0 <= val_frac` and
    /// `train_frac + val_frac < 1`.
    pub fn split(&self, train_frac: f64, val_frac: f64, seed: u64) -> Split {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = DetRng::new(seed);
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = rng.uniform_u64(0, i as u64) as usize;
            idx.swap(i, j);
        }
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_val = ((n as f64) * val_frac).round() as usize;
        let take = |range: &[usize]| {
            let mut d = Dataset::new();
            for &i in range {
                d.push(self.xs[i].clone(), self.ys[i]);
            }
            d
        };
        Split {
            train: take(&idx[..n_train.min(n)]),
            val: take(&idx[n_train.min(n)..(n_train + n_val).min(n)]),
            test: take(&idx[(n_train + n_val).min(n)..]),
        }
    }

    /// Yields shuffled mini-batches of up to `batch` rows as matrices.
    pub fn batches(&self, batch: usize, rng: &mut DetRng) -> Vec<(Matrix, Vec<f64>)> {
        assert!(batch > 0);
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.uniform_u64(0, i as u64) as usize;
            idx.swap(i, j);
        }
        let w = self.width();
        idx.chunks(batch)
            .map(|chunk| {
                let m = Matrix::from_fn(chunk.len(), w, |r, c| self.xs[chunk[r]][c]);
                let y = chunk.iter().map(|&i| self.ys[i]).collect();
                (m, y)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            d.push(vec![i as f64, 2.0 * i as f64], i as f64);
        }
        d
    }

    #[test]
    fn split_fractions_and_disjointness() {
        let d = dataset(100);
        let s = d.split(0.7, 0.15, 1);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.val.len(), 15);
        assert_eq!(s.test.len(), 15);
        // Labels are unique here, so disjointness = label sets disjoint.
        let mut all: Vec<i64> = s
            .train
            .labels()
            .iter()
            .chain(s.val.labels())
            .chain(s.test.labels())
            .map(|&y| y as i64)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "partitions cover all samples exactly once");
    }

    #[test]
    fn split_is_deterministic() {
        let d = dataset(50);
        let a = d.split(0.6, 0.2, 7);
        let b = d.split(0.6, 0.2, 7);
        assert_eq!(a.train.labels(), b.train.labels());
        let c = d.split(0.6, 0.2, 8);
        assert_ne!(a.train.labels(), c.train.labels(), "seed changes the shuffle");
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = dataset(23);
        let mut rng = DetRng::new(3);
        let batches = d.batches(8, &mut rng);
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 23);
        let mut seen: Vec<i64> =
            batches.iter().flat_map(|(_, y)| y.iter().map(|&v| v as i64)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn as_matrix_matches_rows() {
        let d = dataset(3);
        let (m, y) = d.as_matrix();
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(y, vec![0.0, 1.0, 2.0]);
        assert_eq!(d.label_mean(), 1.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature width")]
    fn width_is_enforced() {
        let mut d = dataset(2);
        d.push(vec![1.0], 0.0);
    }
}
