//! The workload analyzer (§3.3).
//!
//! Front-end workloads `w` (per-API qps) do not expose the graph structure of
//! the application, so the analyzer distributes them over microservices using
//! per-API call multiplicities learned from distributed traces: the workload
//! of service `i` is `l_i = Σ_api w_api × m(api, i)`, where `m` is the
//! 90 %-ile number of calls service `i` receives per request of that API
//! ("from the history 90 %-ile samples are chosen to represent the behavior
//! of the API").

use graf_trace::{CallStats, Trace};

/// Per-API, per-service call multiplicities plus the derived service graph.
#[derive(Clone, Debug)]
pub struct WorkloadAnalyzer {
    /// `mult[api][service]` — calls to `service` per request of `api`.
    mult: Vec<Vec<f64>>,
    /// Parent→child service edges observed in traces.
    edges: Vec<(u16, u16)>,
    /// Traces folded in.
    traces_seen: u64,
}

impl WorkloadAnalyzer {
    /// Builds the analyzer from a corpus of traces.
    ///
    /// `num_apis`/`num_services` bound the table; APIs or services never seen
    /// in traces get zero multiplicity.
    pub fn from_traces(
        traces: &[Trace],
        num_apis: usize,
        num_services: usize,
        percentile: f64,
    ) -> Self {
        let mut stats = CallStats::new();
        stats.observe_all(traces.iter());
        let mut mult = vec![vec![0.0; num_services]; num_apis];
        for (api, row) in mult.iter_mut().enumerate() {
            if let Some(profile) = stats.profile_mut(api as u16) {
                for (svc, cell) in row.iter_mut().enumerate() {
                    *cell = profile.multiplicity(svc as u16, percentile);
                }
            }
        }
        let edges = stats.edges().into_iter().map(|e| (e.parent, e.child)).collect();
        Self { mult, edges, traces_seen: traces.len() as u64 }
    }

    /// Builds an analyzer from known multiplicities (tests, synthetic runs).
    pub fn from_multiplicities(mult: Vec<Vec<f64>>, edges: Vec<(u16, u16)>) -> Self {
        Self { mult, edges, traces_seen: 0 }
    }

    /// Number of APIs.
    pub fn num_apis(&self) -> usize {
        self.mult.len()
    }

    /// Number of services.
    pub fn num_services(&self) -> usize {
        self.mult.first().map_or(0, Vec::len)
    }

    /// Multiplicity of `service` under `api`.
    pub fn multiplicity(&self, api: usize, service: usize) -> f64 {
        self.mult[api][service]
    }

    /// Traces the analyzer was fitted on.
    pub fn traces_seen(&self) -> u64 {
        self.traces_seen
    }

    /// The service graph observed in traces — this is what the GNN's message
    /// passing runs over (§3.4: "MPNN is structured with edge connection
    /// details derived from trace data").
    pub fn edges(&self) -> &[(u16, u16)] {
        &self.edges
    }

    /// Folds a freshly refitted analyzer into this one, interpolating across
    /// trace gaps: an API's multiplicity row is adopted from `fresh` only
    /// when its observed trace coverage is at least `floor`; rows whose
    /// coverage collapsed (spans dropped, traces truncated) keep the
    /// last-known-good multiplicities instead, so per-service workloads stay
    /// continuous across the gap rather than silently shrinking toward zero.
    ///
    /// `coverage[api]` is the observed fraction of expected spans per trace
    /// (see [`WorkloadAnalyzer::expected_spans`]). Returns how many API rows
    /// were held back (interpolated).
    ///
    /// # Panics
    /// Panics if `fresh` or `coverage` disagree with this analyzer's shape.
    pub fn fold_refit(&mut self, fresh: &WorkloadAnalyzer, coverage: &[f64], floor: f64) -> usize {
        assert_eq!(fresh.num_apis(), self.num_apis(), "same API count");
        assert_eq!(fresh.num_services(), self.num_services(), "same service count");
        assert_eq!(coverage.len(), self.num_apis(), "one coverage figure per API");
        let mut held = 0usize;
        for ((dst, src), &cov) in self.mult.iter_mut().zip(&fresh.mult).zip(coverage) {
            if cov >= floor {
                dst.clone_from(src);
            } else {
                held += 1;
            }
        }
        self.traces_seen += fresh.traces_seen;
        held
    }

    /// Expected spans per trace of `api` under this analyzer's
    /// multiplicities — `Σ_svc m(api, svc)`, the yardstick live trace
    /// coverage is measured against.
    pub fn expected_spans(&self, api: usize) -> f64 {
        self.mult[api].iter().sum()
    }

    /// Distributes per-API front-end rates into per-service workloads:
    /// `l_i = Σ_api w_api × m(api, i)`.
    ///
    /// ```
    /// use graf_core::WorkloadAnalyzer;
    /// // One API calling service 0 once and service 1 twice per request.
    /// let a = WorkloadAnalyzer::from_multiplicities(vec![vec![1.0, 2.0]], vec![(0, 1)]);
    /// assert_eq!(a.service_workloads(&[10.0]), vec![10.0, 20.0]);
    /// ```
    ///
    /// # Panics
    /// Panics if `api_rates.len()` differs from the analyzer's API count.
    pub fn service_workloads(&self, api_rates: &[f64]) -> Vec<f64> {
        assert_eq!(api_rates.len(), self.num_apis(), "one rate per API");
        let n = self.num_services();
        let mut l = vec![0.0; n];
        for (api, &w) in api_rates.iter().enumerate() {
            for (svc, li) in l.iter_mut().enumerate() {
                *li += w * self.mult[api][svc];
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_trace::{Span, SpanId, TraceId};

    fn trace(id: u64, api: u16, spans: &[(u32, Option<u32>, u16)]) -> Trace {
        Trace {
            id: TraceId(id),
            api,
            spans: spans
                .iter()
                .map(|&(sid, parent, svc)| Span {
                    trace_id: TraceId(id),
                    span_id: SpanId(sid),
                    parent: parent.map(SpanId),
                    service: svc,
                    api,
                    start_us: 0,
                    end_us: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn workloads_follow_multiplicities() {
        // API 0: svc0 once, svc1 twice. API 1: svc0 once.
        let traces = vec![
            trace(1, 0, &[(0, None, 0), (1, Some(0), 1), (2, Some(0), 1)]),
            trace(2, 1, &[(0, None, 0)]),
        ];
        let a = WorkloadAnalyzer::from_traces(&traces, 2, 2, 0.9);
        assert_eq!(a.multiplicity(0, 1), 2.0);
        let l = a.service_workloads(&[10.0, 5.0]);
        assert_eq!(l[0], 15.0, "svc0 = 10×1 + 5×1");
        assert_eq!(l[1], 20.0, "svc1 = 10×2");
    }

    #[test]
    fn percentile_uses_demanding_traces() {
        // svc1 usually called once, occasionally 3 times.
        let mut traces = Vec::new();
        for i in 0..9 {
            traces.push(trace(i, 0, &[(0, None, 0), (1, Some(0), 1)]));
        }
        traces.push(trace(
            9,
            0,
            &[(0, None, 0), (1, Some(0), 1), (2, Some(0), 1), (3, Some(0), 1)],
        ));
        let a = WorkloadAnalyzer::from_traces(&traces, 1, 2, 0.9);
        // p90 over {1×9, 3×1} = 1 (rank 9 of 10); p100 would be 3.
        assert_eq!(a.multiplicity(0, 1), 1.0);
        let a100 = WorkloadAnalyzer::from_traces(&traces, 1, 2, 1.0);
        assert_eq!(a100.multiplicity(0, 1), 3.0);
    }

    #[test]
    fn edges_come_from_traces() {
        let traces = vec![trace(1, 0, &[(0, None, 0), (1, Some(0), 1), (2, Some(1), 2)])];
        let a = WorkloadAnalyzer::from_traces(&traces, 1, 3, 0.9);
        assert_eq!(a.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(a.traces_seen(), 1);
    }

    #[test]
    fn fold_refit_interpolates_across_gaps() {
        let mut a = WorkloadAnalyzer::from_multiplicities(
            vec![vec![1.0, 2.0], vec![1.0, 0.0]],
            vec![(0, 1)],
        );
        let fresh = WorkloadAnalyzer::from_multiplicities(
            vec![vec![1.0, 3.0], vec![1.0, 1.0]],
            vec![(0, 1)],
        );
        // API 0 fully covered → adopt; API 1 in a trace gap → hold last good.
        let held = a.fold_refit(&fresh, &[1.0, 0.2], 0.7);
        assert_eq!(held, 1);
        assert_eq!(a.multiplicity(0, 1), 3.0, "covered row adopted");
        assert_eq!(a.multiplicity(1, 1), 0.0, "gapped row interpolated (held)");
        assert_eq!(a.expected_spans(0), 4.0);
    }

    #[test]
    fn unseen_api_contributes_nothing() {
        let traces = vec![trace(1, 0, &[(0, None, 0)])];
        let a = WorkloadAnalyzer::from_traces(&traces, 2, 1, 0.9);
        let l = a.service_workloads(&[10.0, 100.0]);
        assert_eq!(l[0], 10.0, "api 1 never traced → multiplicity 0");
    }
}
