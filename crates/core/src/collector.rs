//! The state and trace collector (§3.2).
//!
//! Thin observation layer over the simulated cluster: it snapshots exactly
//! the signals the paper's collectors export — front-end workload per API
//! (Prometheus/Linkerd), per-service CPU usage and utilization (cAdvisor),
//! per-service and end-to-end latency percentiles, and assembles finished
//! Jaeger traces into a [`WorkloadAnalyzer`].

use graf_sim::time::SimDuration;
use graf_sim::topology::{ApiId, ServiceId};
use graf_sim::world::World;

use crate::analyzer::WorkloadAnalyzer;

/// One observation of the cluster at a control instant.
#[derive(Clone, Debug)]
pub struct StateSnapshot {
    /// Front-end request rate per API (req/s) over the observation window.
    pub api_rates: Vec<f64>,
    /// CPU utilization per service (None before any capacity existed).
    pub utilization: Vec<Option<f64>>,
    /// Mean used millicores per service.
    pub used_mc: Vec<f64>,
    /// Ready quota per service, millicores.
    pub ready_quota_mc: Vec<f64>,
    /// p99 latency per service over the window, milliseconds.
    pub service_p99_ms: Vec<Option<f64>>,
    /// End-to-end p99 over the window, milliseconds.
    pub e2e_p99_ms: Option<f64>,
}

/// Takes a snapshot over the trailing `window`.
pub fn snapshot(world: &World, window: SimDuration) -> StateSnapshot {
    let k = (window.as_micros() / world.config().window_us).max(1) as usize;
    let n = world.topology().num_services();
    let napis = world.topology().num_apis();
    StateSnapshot {
        api_rates: (0..napis).map(|a| world.api_arrival_rate(ApiId(a as u16), k)).collect(),
        utilization: (0..n)
            .map(|s| world.service_utilization(ServiceId(s as u16), window))
            .collect(),
        used_mc: (0..n).map(|s| world.service_used_mc(ServiceId(s as u16), window)).collect(),
        ready_quota_mc: (0..n).map(|s| world.ready_quota_mc(ServiceId(s as u16))).collect(),
        service_p99_ms: (0..n)
            .map(|s| {
                world.service_percentile(ServiceId(s as u16), k, 0.99).map(|d| d.as_millis_f64())
            })
            .collect(),
        e2e_p99_ms: world.e2e_percentile(k, 0.99).map(|d| d.as_millis_f64()),
    }
}

/// Drains finished traces from the world and fits a [`WorkloadAnalyzer`] on
/// them at the given multiplicity percentile (the paper uses 0.9).
pub fn drain_analyzer(world: &mut World, percentile: f64) -> WorkloadAnalyzer {
    let traces = world.traces_mut().drain_finished();
    let num_apis = world.topology().num_apis();
    let num_services = world.topology().num_services();
    WorkloadAnalyzer::from_traces(&traces, num_apis, num_services, percentile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::time::SimTime;
    use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ServiceSpec};
    use graf_sim::world::SimConfig;

    fn world_with_load() -> World {
        let topo = AppTopology::new(
            "t",
            vec![ServiceSpec::new("a", 1.0, 100).cv(0.0), ServiceSpec::new("b", 2.0, 100).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        );
        let mut w = World::new(topo, SimConfig::default(), 42);
        w.add_instances(ServiceId(0), 1, 1000.0, SimTime::ZERO);
        w.add_instances(ServiceId(1), 1, 1000.0, SimTime::ZERO);
        for i in 0..500u64 {
            w.inject(ApiId(0), SimTime(i * 20_000)); // 50 qps for 10 s
        }
        w.run_until(SimTime::from_secs(10.0));
        w
    }

    #[test]
    fn snapshot_reports_all_signals() {
        let w = world_with_load();
        let s = snapshot(&w, SimDuration::from_secs(5.0));
        assert!((s.api_rates[0] - 50.0).abs() < 5.0, "api rate {:?}", s.api_rates);
        assert_eq!(s.ready_quota_mc, vec![1000.0, 1000.0]);
        assert!(s.utilization[0].unwrap() > 0.0);
        assert!(s.used_mc[1] > s.used_mc[0], "b does more work than a");
        assert!(s.e2e_p99_ms.unwrap() > 3.0, "two hops ≥ 3 ms");
        assert!(s.service_p99_ms[1].unwrap() > 2.0);
    }

    #[test]
    fn analyzer_fits_from_world_traces() {
        let mut w = world_with_load();
        let a = drain_analyzer(&mut w, 0.9);
        assert!(a.traces_seen() >= 490);
        assert_eq!(a.edges(), &[(0, 1)]);
        let l = a.service_workloads(&[100.0]);
        assert_eq!(l, vec![100.0, 100.0]);
        // Traces were drained: a second analyzer sees nothing.
        let b = drain_analyzer(&mut w, 0.9);
        assert_eq!(b.traces_seen(), 0);
    }
}
