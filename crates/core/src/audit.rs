//! Per-tick decision audit trail for the resilient control loop.
//!
//! Every [`ResilientController`](crate::ResilientController) tick can emit
//! one structured [`AuditRecord`] capturing what the controller *saw* (the
//! post-chaos rate reading, signal age, health flags), which ladder rung it
//! *chose*, what the solver *did* (iterations, loss, predicted latency —
//! when the Full rung ran a solve), and what it *applied* (per-service
//! desired counts plus the implied deltas against the previous tick).
//!
//! Records serialize to JSON Lines — one self-contained object per tick —
//! through the same std-only writer the telemetry exporter uses, so a run's
//! audit file replays the controller's reasoning without attaching a
//! debugger. The trail is write-only: nothing reads it back into a
//! decision, so auditing on or off cannot change controller behaviour.

use std::io::Write as _;
use std::path::Path;

use graf_obs::json::{write_f64, write_str};

/// Solver statistics captured when a tick ran the full GRAF solve.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditSolve {
    /// Gradient-descent iterations used.
    pub iterations: usize,
    /// Final loss value (scaled space).
    pub loss: f64,
    /// Predicted p99 at the solution, ms.
    pub predicted_ms: f64,
}

/// One control tick's decision, inputs included.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditRecord {
    /// Tick sequence number (starts at 0).
    pub tick: u64,
    /// Simulated time of the tick, seconds.
    pub sim_time_s: f64,
    /// Ladder rung the tick executed at (`full`, `last_good`, …).
    pub level: &'static str,
    /// Per-API rates the planner saw (post-chaos; may be NaN).
    pub rates: Vec<f64>,
    /// Age of the rate reading, seconds.
    pub signal_age_s: f64,
    /// All rates finite?
    pub rates_finite: bool,
    /// Minimum per-API trace coverage estimate.
    pub coverage_min: f64,
    /// Instance creation keeping up with desired counts?
    pub creation_ok: bool,
    /// Solver stats, when the Full rung ran a solve this tick.
    pub solver: Option<AuditSolve>,
    /// Per-service desired instance counts after the tick.
    pub desired: Vec<usize>,
    /// `desired - previous desired` per service: the tick's applied change.
    pub deltas: Vec<i64>,
}

impl AuditRecord {
    /// Serializes the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str("{\"tick\":");
        out.push_str(&self.tick.to_string());
        out.push_str(",\"sim_time_s\":");
        write_f64(&mut out, self.sim_time_s);
        out.push_str(",\"level\":");
        write_str(&mut out, self.level);
        out.push_str(",\"rates\":[");
        for (i, r) in self.rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_f64(&mut out, *r);
        }
        out.push_str("],\"signal_age_s\":");
        write_f64(&mut out, self.signal_age_s);
        out.push_str(",\"rates_finite\":");
        out.push_str(if self.rates_finite { "true" } else { "false" });
        out.push_str(",\"coverage_min\":");
        write_f64(&mut out, self.coverage_min);
        out.push_str(",\"creation_ok\":");
        out.push_str(if self.creation_ok { "true" } else { "false" });
        out.push_str(",\"solver\":");
        match &self.solver {
            Some(s) => {
                out.push_str("{\"iterations\":");
                out.push_str(&s.iterations.to_string());
                out.push_str(",\"loss\":");
                write_f64(&mut out, s.loss);
                out.push_str(",\"predicted_ms\":");
                write_f64(&mut out, s.predicted_ms);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"desired\":[");
        for (i, d) in self.desired.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_string());
        }
        out.push_str("],\"deltas\":[");
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// Collects [`AuditRecord`]s, optionally streaming each to a JSONL file.
///
/// In-memory records are always retained (bounded only by run length — a
/// control tick every 15 simulated seconds stays tiny), so tests and
/// experiment drivers can inspect the trail without re-parsing the file.
pub struct AuditTrail {
    records: Vec<AuditRecord>,
    sink: Option<std::io::BufWriter<std::fs::File>>,
}

impl AuditTrail {
    /// A trail that only retains records in memory.
    pub fn in_memory() -> Self {
        Self { records: Vec::new(), sink: None }
    }

    /// A trail that additionally appends one JSON line per record to `path`
    /// (truncating any existing file; parent directories are created).
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let sink = std::io::BufWriter::new(std::fs::File::create(path)?);
        Ok(Self { records: Vec::new(), sink: Some(sink) })
    }

    /// Appends a record, streaming it to the file sink when one is attached.
    /// File I/O errors are swallowed — auditing must never take down the
    /// control loop.
    pub fn push(&mut self, rec: AuditRecord) {
        if let Some(sink) = &mut self.sink {
            let _ = sink.write_all(rec.to_json().as_bytes());
            let _ = sink.write_all(b"\n");
        }
        self.records.push(rec);
    }

    /// The recorded ticks, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no tick has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Flushes the file sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            let _ = sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_obs::json::{parse, Json};

    fn sample() -> AuditRecord {
        AuditRecord {
            tick: 3,
            sim_time_s: 45.0,
            level: "full",
            rates: vec![80.5, f64::NAN],
            signal_age_s: 0.25,
            rates_finite: false,
            coverage_min: 0.92,
            creation_ok: true,
            solver: Some(AuditSolve { iterations: 120, loss: 3.5, predicted_ms: 17.2 }),
            desired: vec![2, 5],
            deltas: vec![0, 2],
        }
    }

    #[test]
    fn record_serializes_to_parseable_json() {
        let j = parse(&sample().to_json()).expect("valid JSON");
        assert_eq!(j.get("tick").and_then(Json::as_f64), Some(3.0));
        assert_eq!(j.get("level").and_then(Json::as_str), Some("full"));
        // NaN rates become null per RFC 8259.
        assert_eq!(j.get("rates"), Some(&Json::Arr(vec![Json::Num(80.5), Json::Null])));
        assert_eq!(
            j.get("solver").and_then(|s| s.get("iterations")).and_then(Json::as_f64),
            Some(120.0)
        );
        assert_eq!(j.get("deltas"), Some(&Json::Arr(vec![Json::Num(0.0), Json::Num(2.0)])));
    }

    #[test]
    fn degraded_tick_serializes_null_solver() {
        let rec = AuditRecord { solver: None, level: "freeze", ..sample() };
        let j = parse(&rec.to_json()).expect("valid JSON");
        assert_eq!(j.get("solver"), Some(&Json::Null));
        assert_eq!(j.get("level").and_then(Json::as_str), Some("freeze"));
    }

    #[test]
    fn trail_streams_jsonl_to_file() {
        let dir = std::env::temp_dir().join("graf-audit-test");
        let path = dir.join("audit.jsonl");
        let mut trail = AuditTrail::to_file(&path).expect("create trail");
        trail.push(sample());
        trail.push(AuditRecord { tick: 4, ..sample() });
        trail.flush();
        assert_eq!(trail.len(), 2);
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            parse(line).expect("each line is standalone JSON");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
