//! # graf-core
//!
//! GRAF itself: the paper's proactive, SLO-oriented resource-allocation
//! framework, assembled from the components of §3 (Figure 8):
//!
//! 1. **State and trace collector** ([`collector`], §3.2) — front-end
//!    workloads, per-service CPU figures and distributed traces from the
//!    simulated cluster (the cAdvisor + Jaeger analog).
//! 2. **Workload analyzer** ([`analyzer`], §3.3) — converts per-API front-end
//!    rates into per-microservice workloads using the 90 %-ile call
//!    multiplicities observed in traces.
//! 3. **Latency prediction model** ([`latency_model`], §3.4) — trains the
//!    MPNN+readout network (or the no-MPNN ablation) with the asymmetric
//!    Hüber percentage loss to predict end-to-end p99 latency from
//!    `(workload, quota)` node features.
//! 4. **Configuration solver** ([`solver`], §3.5) — Adam gradient descent
//!    *through the trained network* over the CPU-quota variables, minimizing
//!    `Σ r + ρ·max(0, L̂(w,r) − SLO)` (eq. 5/6) within Algorithm-1 bounds.
//! 5. **Resource controller** ([`controller`], §3.6) — scales workloads into
//!    the trained region, converts solved quotas to instance counts
//!    (`ceil(quota / unit)`, eq. 7) and applies them to every microservice at
//!    once — the proactive allocation of §3.8.
//! 6. **Sample collector** ([`sample_collector`], §3.7) — Algorithm 1's
//!    search-space reduction plus parallel state-aware sample collection.
//!
//! [`framework::Graf`] wires all of it together: collect → train → control.
//! [`resilient::ResilientController`] wraps the controller in a health-gated
//! degradation ladder (full solve → last-good plan → HPA fallback → freeze)
//! for running under the fault classes `graf-chaos` injects.
//!
//! **Invariants.** The whole pipeline is deterministic per seed: sample
//! collection forks per-sample RNG streams, training shards with ordered
//! reductions (`graf-gnn`), and the solver is seed-free gradient descent —
//! so collect → train → control is bit-reproducible, with or without a
//! chaos schedule armed. Training/solver hot loops are allocation-free
//! after warm-up (verified under `--features sanitize`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyzer;
pub mod anomaly;
pub mod audit;
pub mod baseline;
pub mod collector;
pub mod controller;
pub mod dataset;
pub mod features;
pub mod framework;
pub mod latency_model;
pub mod partition;
pub mod resilient;
pub mod sample_collector;
pub mod solver;

pub use analyzer::WorkloadAnalyzer;
pub use anomaly::{AnomalyGuard, AnomalyGuardConfig};
pub use audit::{AuditRecord, AuditSolve, AuditTrail};
pub use controller::{GrafController, GrafControllerConfig, PlanOutcome};
pub use dataset::{Dataset, Split};
pub use features::FeatureScaler;
pub use framework::{Graf, GrafBuildConfig};
pub use latency_model::{LatencyModel, NetKind, TrainConfig, TrainReport};
pub use partition::{partition_graph, PartitionedLatencyModel};
pub use resilient::{PolicyLevel, PolicyMode, ResilientConfig, ResilientController};
pub use sample_collector::{Bounds, Sample, SampleCollector, SamplingConfig};
pub use solver::{
    integer_refine, solve, solve_instrumented, solve_observed, SolveResult, SolverConfig,
};
