//! Feature scaling for the latency prediction model.
//!
//! Node features are `(workload l_i, quota r_i)` (§3.3). Raw units (qps,
//! millicores) differ by orders of magnitude, so both are divided by
//! dataset-derived constants before entering the network. The same scaler is
//! used at training and control time; the resource controller additionally
//! scales whole workloads into the trained region (§3.6), which composes with
//! this per-feature normalization.

/// Divides workloads and quotas by fixed constants fitted on training data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeatureScaler {
    /// Workload divisor (≈ max per-service workload seen in training).
    pub workload_div: f64,
    /// Quota divisor (≈ max per-service quota seen in training).
    pub quota_div: f64,
}

impl FeatureScaler {
    /// Fits divisors from per-sample `(workloads, quotas)` rows.
    pub fn fit<'a>(rows: impl IntoIterator<Item = (&'a [f64], &'a [f64])>) -> Self {
        let mut wmax = 0.0f64;
        let mut qmax = 0.0f64;
        for (w, q) in rows {
            for &v in w {
                wmax = wmax.max(v);
            }
            for &v in q {
                qmax = qmax.max(v);
            }
        }
        Self { workload_div: wmax.max(1e-9), quota_div: qmax.max(1e-9) }
    }

    /// Builds the network input row `[l₀', r₀', l₁', r₁', …]`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn features(&self, workloads: &[f64], quotas: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(workloads.len() * 2);
        self.features_into(workloads, quotas, &mut out);
        out
    }

    /// [`FeatureScaler::features`] writing into `out` (cleared and refilled;
    /// once warm the capacity is reused, so repeated calls do not allocate —
    /// the solver-iteration hot path).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn features_into(&self, workloads: &[f64], quotas: &[f64], out: &mut Vec<f64>) {
        assert_eq!(workloads.len(), quotas.len(), "one workload and quota per service");
        out.clear();
        out.reserve(workloads.len() * 2);
        for (&l, &r) in workloads.iter().zip(quotas) {
            out.push(l / self.workload_div);
            out.push(r / self.quota_div);
        }
    }

    /// Scaled value of a single quota.
    pub fn scale_quota(&self, r_mc: f64) -> f64 {
        r_mc / self.quota_div
    }

    /// Millicores for a scaled quota value.
    pub fn unscale_quota(&self, r_scaled: f64) -> f64 {
        r_scaled * self.quota_div
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_takes_maxima() {
        let w1 = [10.0, 40.0];
        let q1 = [500.0, 200.0];
        let w2 = [100.0, 5.0];
        let q2 = [100.0, 900.0];
        let s = FeatureScaler::fit([(&w1[..], &q1[..]), (&w2[..], &q2[..])]);
        assert_eq!(s.workload_div, 100.0);
        assert_eq!(s.quota_div, 900.0);
    }

    #[test]
    fn features_interleave_and_scale() {
        let s = FeatureScaler { workload_div: 100.0, quota_div: 1000.0 };
        let f = s.features(&[50.0, 100.0], &[500.0, 250.0]);
        assert_eq!(f, vec![0.5, 0.5, 1.0, 0.25]);
    }

    #[test]
    fn quota_scaling_round_trips() {
        let s = FeatureScaler { workload_div: 1.0, quota_div: 800.0 };
        let r = 640.0;
        assert!((s.unscale_quota(s.scale_quota(r)) - r).abs() < 1e-12);
    }

    #[test]
    fn empty_fit_is_safe() {
        let s = FeatureScaler::fit(std::iter::empty::<(&[f64], &[f64])>());
        assert!(s.workload_div > 0.0 && s.quota_div > 0.0);
    }
}
