//! §6 extension: actively countering contention anomalies.
//!
//! GRAF minimizes resources for the *modeled* latency surface, so an
//! unmodeled contention event (noisy neighbour, cache thrashing — simulated
//! via `World::inject_contention`) produces latency spikes the solver cannot
//! anticipate; the paper notes that "an algorithm that actively removes
//! contentions … should take place in order to fully utilize the capabilities
//! of GRAF while meeting SLO latency at all times."
//!
//! [`AnomalyGuard`] wraps any autoscaler (typically [`crate::GrafController`])
//! with a per-service anomaly detector: it tracks a calm-period EWMA of each
//! service's p99 and, when the current p99 exceeds it by a trigger ratio,
//! temporarily boosts that service's replicas — spreading load over more
//! instances dilutes the contended ones — until the spike clears.

use graf_orchestrator::{Autoscaler, Cluster};
use graf_sim::time::SimDuration;
use graf_sim::topology::ServiceId;

/// Detector/mitigation knobs.
#[derive(Clone, Debug)]
pub struct AnomalyGuardConfig {
    /// A service is anomalous when its p99 exceeds `EWMA × trigger_ratio`.
    pub trigger_ratio: f64,
    /// Replica multiplier applied while a service is anomalous.
    pub boost: f64,
    /// Control ticks the boost persists after the last trigger.
    pub hold_ticks: u32,
    /// Observation window for per-service p99.
    pub window: SimDuration,
    /// EWMA smoothing factor for the calm baseline.
    pub ewma_alpha: f64,
}

impl Default for AnomalyGuardConfig {
    fn default() -> Self {
        Self {
            trigger_ratio: 3.0,
            boost: 1.6,
            hold_ticks: 2,
            window: SimDuration::from_secs(15.0),
            ewma_alpha: 0.15,
        }
    }
}

/// Wraps an autoscaler with contention-anomaly detection and mitigation.
pub struct AnomalyGuard<A: Autoscaler> {
    inner: A,
    cfg: AnomalyGuardConfig,
    baseline_p99_ms: Vec<Option<f64>>,
    hold: Vec<u32>,
    /// Total anomaly triggers observed (for experiments).
    pub triggers: u64,
}

impl<A: Autoscaler> AnomalyGuard<A> {
    /// Wraps `inner` for a cluster with `num_services` services.
    pub fn new(inner: A, num_services: usize, cfg: AnomalyGuardConfig) -> Self {
        Self {
            inner,
            cfg,
            baseline_p99_ms: vec![None; num_services],
            hold: vec![0; num_services],
            triggers: 0,
        }
    }

    /// The wrapped autoscaler.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Services currently under an anomaly boost.
    pub fn boosted(&self) -> Vec<usize> {
        self.hold.iter().enumerate().filter(|&(_, &h)| h > 0).map(|(i, _)| i).collect()
    }
}

impl<A: Autoscaler> Autoscaler for AnomalyGuard<A> {
    fn interval(&self) -> SimDuration {
        self.inner.interval()
    }

    fn tick(&mut self, cluster: &mut Cluster) {
        self.inner.tick(cluster);
        let k = (self.cfg.window.as_micros() / cluster.world().config().window_us).max(1) as usize;
        for svc in 0..self.baseline_p99_ms.len() {
            let service = ServiceId(svc as u16);
            let Some(p99) =
                cluster.world().service_percentile(service, k, 0.99).map(|d| d.as_millis_f64())
            else {
                continue;
            };
            match self.baseline_p99_ms[svc] {
                None => self.baseline_p99_ms[svc] = Some(p99),
                Some(base) => {
                    if p99 > base * self.cfg.trigger_ratio {
                        // Anomaly: do not poison the baseline; arm the boost.
                        if self.hold[svc] == 0 {
                            self.triggers += 1;
                        }
                        self.hold[svc] = self.cfg.hold_ticks;
                    } else {
                        let a = self.cfg.ewma_alpha;
                        self.baseline_p99_ms[svc] = Some(base * (1.0 - a) + p99 * a);
                        self.hold[svc] = self.hold[svc].saturating_sub(1);
                    }
                }
            }
            if self.hold[svc] > 0 {
                let desired = cluster.deployment(service).desired;
                let boosted = ((desired as f64) * self.cfg.boost).ceil() as usize;
                cluster.set_desired(service, boosted.max(desired + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_orchestrator::{CreationModel, Deployment, StaticScaler};
    use graf_sim::time::SimTime;
    use graf_sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceSpec};
    use graf_sim::world::{SimConfig, World};

    fn topo() -> AppTopology {
        AppTopology::new(
            "anom",
            vec![ServiceSpec::new("a", 0.5, 100).cv(0.3), ServiceSpec::new("b", 1.0, 100).cv(0.3)],
            vec![ApiSpec::new("get", CallNode::new(0).call(CallNode::new(1)))],
        )
    }

    /// Drives 100 qps for `secs`, ticking the scaler every 15 s.
    fn drive(cluster: &mut Cluster, scaler: &mut dyn Autoscaler, secs: f64) {
        let start = cluster.world().now();
        let end = SimTime(start.0 + (secs * 1e6) as u64);
        let mut rng = graf_sim::rng::DetRng::new(3);
        let mut t = start.as_micros() as f64;
        let mut arrivals = Vec::new();
        loop {
            t += rng.exp(10_000.0);
            if t >= end.as_micros() as f64 {
                break;
            }
            arrivals.push(SimTime(t as u64));
        }
        let mut ai = 0;
        let mut next = SimTime(start.0 + 15_000_000);
        while cluster.world().now() < end {
            let to = next.min(end);
            while ai < arrivals.len() && arrivals[ai] < to {
                cluster.world_mut().inject(ApiId(0), arrivals[ai]);
                ai += 1;
            }
            cluster.world_mut().run_until(to);
            scaler.tick(cluster);
            next = SimTime(next.0 + 15_000_000);
        }
    }

    fn cluster_with_contention() -> Cluster {
        let mut world = World::new(topo(), SimConfig::default(), 44);
        // Service b suffers 5x contention between 120 s and 240 s.
        world.inject_contention(
            ServiceId(1),
            5.0,
            SimTime::from_secs(120.0),
            SimTime::from_secs(240.0),
        );
        Cluster::new(
            world,
            vec![Deployment::new(ServiceId(0), 100.0, 2), Deployment::new(ServiceId(1), 100.0, 3)],
            CreationModel::instant(),
        )
    }

    #[test]
    fn guard_detects_and_boosts_the_contended_service() {
        let mut cluster = cluster_with_contention();
        let mut guard = AnomalyGuard::new(StaticScaler, 2, AnomalyGuardConfig::default());
        drive(&mut cluster, &mut guard, 100.0); // calm phase: learn baseline
        assert_eq!(guard.triggers, 0, "no false positives in the calm phase");
        let before = cluster.deployment(ServiceId(1)).desired;
        drive(&mut cluster, &mut guard, 80.0); // into the contention window
        assert!(guard.triggers >= 1, "contention detected");
        assert!(guard.boosted().contains(&1), "service b boosted");
        let during = cluster.deployment(ServiceId(1)).desired;
        assert!(during > before, "replicas raised: {before} → {during}");
        // After the anomaly clears, the boost is released.
        drive(&mut cluster, &mut guard, 200.0);
        assert!(guard.boosted().is_empty(), "boost released after recovery");
    }

    #[test]
    fn guard_mitigates_tail_latency_versus_unguarded() {
        // Unguarded.
        let mut c1 = cluster_with_contention();
        let mut plain = StaticScaler;
        drive(&mut c1, &mut plain, 230.0);
        let unguarded = c1.world().e2e_percentile(60, 0.99).unwrap().as_millis_f64();
        // Guarded.
        let mut c2 = cluster_with_contention();
        let mut guard = AnomalyGuard::new(StaticScaler, 2, AnomalyGuardConfig::default());
        drive(&mut c2, &mut guard, 230.0);
        let guarded = c2.world().e2e_percentile(60, 0.99).unwrap().as_millis_f64();
        assert!(
            guarded < unguarded,
            "guard reduces the contention spike: {guarded:.1} vs {unguarded:.1} ms"
        );
    }
}
