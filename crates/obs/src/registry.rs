//! The metrics registry: named counters, gauges and log-bucketed histograms
//! with labelled series.
//!
//! Series are keyed by `(name, sorted labels)` and stored in a `BTreeMap`
//! so exports render in a stable order. Histograms reuse
//! [`graf_metrics::Histogram`], the same log-bucketed structure the
//! simulator's latency surfaces use (bounded relative error, O(1) record).

use std::collections::BTreeMap;

use graf_metrics::Histogram;

/// A label set: sorted `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

/// The kind and state of one metric series.
#[derive(Clone, Debug)]
pub enum Series {
    /// Monotone counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log-bucketed histogram of `u64` values.
    Hist(Histogram),
}

impl Series {
    /// The Prometheus type name of this series.
    pub fn type_name(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Hist(_) => "histogram",
        }
    }
}

/// Keyed metric storage. All mutation goes through [`crate::Obs`].
#[derive(Debug, Default)]
pub struct Registry {
    series: BTreeMap<(&'static str, Labels), Series>,
}

fn own(labels: &[(&'static str, &str)]) -> Labels {
    let mut v: Labels = labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter series, creating it at zero first.
    ///
    /// Recording under a name already registered as a different metric kind
    /// is a programming error and panics (names are static strings chosen at
    /// instrumentation sites).
    pub fn counter_add(&mut self, name: &'static str, labels: &[(&'static str, &str)], n: u64) {
        match self.series.entry((name, own(labels))).or_insert(Series::Counter(0)) {
            Series::Counter(c) => *c += n,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Sets a gauge series.
    pub fn gauge_set(&mut self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        match self.series.entry((name, own(labels))).or_insert(Series::Gauge(0.0)) {
            Series::Gauge(g) => *g = v,
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// Records into a histogram series.
    pub fn hist_record(&mut self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        match self
            .series
            .entry((name, own(labels)))
            .or_insert_with(|| Series::Hist(Histogram::new()))
        {
            Series::Hist(h) => h.record(value),
            other => panic!("{name} already registered as {}", other.type_name()),
        }
    }

    /// All series in stable `(name, labels)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Labels, &Series)> {
        self.series.iter().map(|((name, labels), s)| (*name, labels, s))
    }

    /// Looks up a single series.
    pub fn get(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Option<&Series> {
        self.series.get(&(name, own(labels)))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` when no series exist.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = Registry::new();
        r.counter_add("c", &[("svc", "a")], 1);
        r.counter_add("c", &[("svc", "a")], 2);
        r.counter_add("c", &[("svc", "b")], 5);
        assert_eq!(r.len(), 2);
        match r.get("c", &[("svc", "a")]) {
            Some(Series::Counter(3)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn label_order_does_not_split_series() {
        let mut r = Registry::new();
        r.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut r = Registry::new();
        r.gauge_set("g", &[], 1.0);
        r.gauge_set("g", &[], -2.5);
        match r.get("g", &[]) {
            Some(Series::Gauge(v)) => assert_eq!(*v, -2.5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn histograms_record_counts() {
        let mut r = Registry::new();
        for v in [10u64, 20, 30] {
            r.hist_record("h", &[], v);
        }
        match r.get("h", &[]) {
            Some(Series::Hist(h)) => {
                assert_eq!(h.count(), 3);
                assert_eq!(h.max(), 30);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let mut r = Registry::new();
        r.counter_add("x", &[], 1);
        r.gauge_set("x", &[], 1.0);
    }
}
