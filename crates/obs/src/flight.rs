//! A flight recorder: a bounded ring buffer of recent JSONL lines (audit
//! records, events) that can be dumped to disk when something goes wrong —
//! a panic, or a chaos-induced policy demotion.
//!
//! The recorder is the black box of the control loop: recording is cheap and
//! continuous (one `VecDeque` push under a mutex, oldest line evicted when
//! full), and the buffer is only ever written out on a trigger, so steady
//! state does no I/O. Like every other telemetry surface in this workspace,
//! the recorder is write-only — nothing reads it back to make a decision.
//!
//! ```
//! use graf_obs::FlightRecorder;
//!
//! let rec = FlightRecorder::new(3);
//! for i in 0..5 {
//!     rec.record(&format!("{{\"tick\":{i}}}"));
//! }
//! // Only the most recent `capacity` lines are retained.
//! assert_eq!(rec.len(), 3);
//! assert_eq!(rec.dropped(), 2);
//! assert_eq!(rec.snapshot().first().map(|s| s.as_str()), Some("{\"tick\":2}"));
//! ```

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity: enough for hours of control ticks at 15 s/tick.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

struct FlightInner {
    capacity: usize,
    buf: Mutex<VecDeque<String>>,
    dropped: AtomicU64,
}

/// A cheaply clonable handle to a shared bounded ring of JSONL lines.
///
/// All clones record into the same ring; see the module docs for the
/// dump-on-trigger usage model.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `capacity` lines (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Arc::new(FlightInner {
                capacity,
                buf: Mutex::new(VecDeque::with_capacity(capacity)),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Appends one line (a complete JSON document, no trailing newline);
    /// evicts the oldest line when the ring is full.
    pub fn record(&self, line: &str) {
        let mut buf = self.inner.buf.lock().expect("flight buffer poisoned");
        if buf.len() == self.inner.capacity {
            buf.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::AcqRel);
        }
        buf.push_back(line.to_string());
    }

    /// Lines currently retained.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().expect("flight buffer poisoned").len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lines evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Acquire)
    }

    /// The retained lines, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.inner.buf.lock().expect("flight buffer poisoned").iter().cloned().collect()
    }

    /// Writes the retained lines (oldest first, one per line) to `path`,
    /// creating parent directories as needed. Returns the number of lines
    /// written. The ring is left intact, so several triggers can dump
    /// overlapping windows.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<usize> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let lines = self.snapshot();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for line in &lines {
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
        }
        f.flush()?;
        Ok(lines.len())
    }

    /// Installs a panic hook that dumps the ring to `path` before the
    /// previous hook runs, so a crashing run leaves its last-seconds record
    /// behind. The hook chains: existing panic behaviour is preserved.
    pub fn arm_panic_dump(&self, path: PathBuf) {
        let rec = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Ignore I/O errors: panicking inside a panic hook aborts.
            let _ = rec.dump_to(&path);
            prev(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(2);
        rec.record("a");
        rec.record("b");
        rec.record("c");
        assert_eq!(rec.snapshot(), vec!["b".to_string(), "c".to_string()]);
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = FlightRecorder::new(8);
        let other = rec.clone();
        rec.record("x");
        other.record("y");
        assert_eq!(rec.snapshot(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn dump_writes_jsonl_and_keeps_the_ring() {
        let rec = FlightRecorder::new(4);
        rec.record("{\"a\":1}");
        rec.record("{\"a\":2}");
        let dir = std::env::temp_dir().join("graf-flight-test");
        let path = dir.join("dump.jsonl");
        let n = rec.dump_to(&path).expect("dump");
        assert_eq!(n, 2);
        let body = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(body, "{\"a\":1}\n{\"a\":2}\n");
        assert_eq!(rec.len(), 2, "dumping does not drain");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capacity_floor_is_one() {
        let rec = FlightRecorder::new(0);
        rec.record("only");
        rec.record("kept");
        assert_eq!(rec.snapshot(), vec!["kept".to_string()]);
    }
}
