//! Exporters: JSONL event log, Prometheus text exposition, and the
//! human-readable end-of-run summary table.

use std::io::{self, Write};

use graf_metrics::Histogram;

use crate::json::{write_f64, write_str};
use crate::registry::Series;
use crate::{EventKind, Obs, Value};

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::F64(x) => write_f64(out, *x),
        Value::I64(x) => {
            out.push_str(&x.to_string());
        }
        Value::U64(x) => {
            out.push_str(&x.to_string());
        }
        Value::Bool(x) => {
            out.push_str(if *x { "true" } else { "false" });
        }
        Value::Str(s) => write_str(out, s),
    }
}

/// Maps a dotted metric/span name to a Prometheus-legal one
/// (`graf.solver.iterations` → `graf_solver_iterations`).
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), prom_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", prom_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_num(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders one histogram series over `bounds` — the union of nonzero bucket
/// bounds across *all* series of the metric, so every label set of one
/// metric exposes the same `le` grid (Prometheus requires consistent bounds
/// for `sum by (le)` aggregation across series).
fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &Histogram,
    bounds: &[f64],
) {
    for &ub in bounds {
        let le = fmt_num(ub);
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name,
            prom_labels(labels, Some(("le", &le))),
            h.count_le(ub)
        ));
    }
    out.push_str(&format!(
        "{}_bucket{} {}\n",
        name,
        prom_labels(labels, Some(("le", "+Inf"))),
        h.count()
    ));
    out.push_str(&format!("{}_sum{} {}\n", name, prom_labels(labels, None), h.sum()));
    out.push_str(&format!("{}_count{} {}\n", name, prom_labels(labels, None), h.count()));
}

impl Obs {
    /// Renders the metrics registry in the Prometheus text exposition format
    /// (one `# TYPE` header per metric name, cumulative `le` buckets for
    /// histograms). Returns an empty string when disabled.
    pub fn render_prometheus(&self) -> String {
        self.with_registry(|reg| {
            // Pre-pass: union of nonzero bucket bounds per histogram metric,
            // so every label set of one metric exposes the same `le` grid.
            let mut hist_bounds: Vec<(&str, Vec<f64>)> = Vec::new();
            for (name, _labels, series) in reg.iter() {
                if let Series::Hist(h) = series {
                    let entry = match hist_bounds.iter_mut().find(|(n, _)| *n == name) {
                        Some(e) => e,
                        None => {
                            hist_bounds.push((name, Vec::new()));
                            hist_bounds.last_mut().expect("just pushed")
                        }
                    };
                    for (ub, _) in h.nonzero_buckets() {
                        if !entry.1.contains(&ub) {
                            entry.1.push(ub);
                        }
                    }
                }
            }
            for (_, bounds) in &mut hist_bounds {
                bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
            }

            let mut out = String::new();
            let mut last_name = "";
            for (name, labels, series) in reg.iter() {
                let pname = prom_name(name);
                if name != last_name {
                    out.push_str(&format!("# TYPE {} {}\n", pname, series.type_name()));
                    last_name = name;
                }
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{}{} {}\n", pname, prom_labels(labels, None), c));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            pname,
                            prom_labels(labels, None),
                            fmt_num(*g)
                        ));
                    }
                    Series::Hist(h) => {
                        let bounds = hist_bounds
                            .iter()
                            .find(|(n, _)| *n == name)
                            .map(|(_, b)| b.as_slice())
                            .unwrap_or(&[]);
                        render_histogram(&mut out, &pname, labels, h, bounds);
                    }
                }
            }
            out
        })
        .unwrap_or_default()
    }

    /// Writes the full telemetry stream as JSON Lines: every event in record
    /// order (span/point records with attributes), followed by one record per
    /// metric series. Every line is a self-contained JSON object carrying a
    /// monotone `wall_us` timestamp. No-op when disabled.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        let events = self.events();
        let mut last_wall = 0u64;
        for e in &events {
            let mut line = String::with_capacity(128);
            line.push_str(&format!("{{\"seq\":{},\"wall_us\":{}", e.seq, e.wall_us));
            if let Some(t) = e.sim_s {
                line.push_str(",\"sim_s\":");
                write_f64(&mut line, t);
            }
            match e.kind {
                EventKind::Span { dur_us } => {
                    line.push_str(&format!(",\"type\":\"span\",\"dur_us\":{dur_us}"));
                }
                EventKind::Point => line.push_str(",\"type\":\"point\""),
            }
            line.push_str(",\"name\":");
            write_str(&mut line, e.name);
            if !e.attrs.is_empty() {
                line.push_str(",\"attrs\":{");
                for (i, (k, v)) in e.attrs.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    write_str(&mut line, k);
                    line.push(':');
                    write_value(&mut line, v);
                }
                line.push('}');
            }
            line.push('}');
            writeln!(w, "{line}")?;
            last_wall = e.wall_us;
        }
        let metric_wall = self.wall_us_now().max(last_wall);
        let metric_lines = self
            .with_registry(|reg| {
                let mut lines = Vec::new();
                for (name, labels, series) in reg.iter() {
                    let mut line = String::with_capacity(96);
                    line.push_str(&format!("{{\"wall_us\":{metric_wall},\"type\":"));
                    match series {
                        Series::Counter(_) => line.push_str("\"counter\""),
                        Series::Gauge(_) => line.push_str("\"gauge\""),
                        Series::Hist(_) => line.push_str("\"histogram\""),
                    }
                    line.push_str(",\"name\":");
                    write_str(&mut line, name);
                    if !labels.is_empty() {
                        line.push_str(",\"labels\":{");
                        for (i, (k, v)) in labels.iter().enumerate() {
                            if i > 0 {
                                line.push(',');
                            }
                            write_str(&mut line, k);
                            line.push(':');
                            write_str(&mut line, v);
                        }
                        line.push('}');
                    }
                    match series {
                        Series::Counter(c) => line.push_str(&format!(",\"value\":{c}")),
                        Series::Gauge(g) => {
                            line.push_str(",\"value\":");
                            write_f64(&mut line, *g);
                        }
                        Series::Hist(h) => {
                            line.push_str(&format!(
                                ",\"count\":{},\"sum\":{},\"max\":{}",
                                h.count(),
                                h.sum(),
                                h.max()
                            ));
                            line.push_str(",\"mean\":");
                            write_f64(&mut line, h.mean());
                            for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
                                line.push_str(&format!(",\"{label}\":"));
                                match h.percentile(q) {
                                    Some(v) => line.push_str(&v.to_string()),
                                    None => line.push_str("null"),
                                }
                            }
                        }
                    }
                    line.push('}');
                    lines.push(line);
                }
                lines
            })
            .unwrap_or_default();
        for line in metric_lines {
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Writes the JSONL stream to a file path.
    pub fn write_jsonl_path(&self, path: &std::path::Path) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_jsonl(&mut f)?;
        f.flush()
    }

    /// Renders the human-readable end-of-run summary: per-span aggregates
    /// (count, total/mean wall time), point-event counts, and every metric
    /// series.
    pub fn summary(&self) -> String {
        if !self.is_enabled() {
            return "telemetry: disabled\n".to_string();
        }
        let events = self.events();
        // Aggregate spans and points by name, preserving first-seen order.
        let mut span_rows: Vec<(&'static str, u64, u64)> = Vec::new(); // name, count, total us
        let mut point_rows: Vec<(&'static str, u64)> = Vec::new();
        for e in &events {
            match e.kind {
                EventKind::Span { dur_us } => {
                    match span_rows.iter_mut().find(|(n, _, _)| *n == e.name) {
                        Some(row) => {
                            row.1 += 1;
                            row.2 += dur_us;
                        }
                        None => span_rows.push((e.name, 1, dur_us)),
                    }
                }
                EventKind::Point => match point_rows.iter_mut().find(|(n, _)| *n == e.name) {
                    Some(row) => row.1 += 1,
                    None => point_rows.push((e.name, 1)),
                },
            }
        }
        let mut out = String::new();
        out.push_str("── telemetry summary ──────────────────────────────────────────\n");
        if !span_rows.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>10}\n",
                "span", "count", "total ms", "mean ms"
            ));
            for (name, count, total_us) in &span_rows {
                out.push_str(&format!(
                    "{:<44} {:>8} {:>12.2} {:>10.3}\n",
                    name,
                    count,
                    *total_us as f64 / 1e3,
                    *total_us as f64 / 1e3 / *count as f64
                ));
            }
        }
        if !point_rows.is_empty() {
            out.push_str(&format!("{:<44} {:>8}\n", "event", "count"));
            for (name, count) in &point_rows {
                out.push_str(&format!("{:<44} {:>8}\n", name, count));
            }
        }
        let metrics = self
            .with_registry(|reg| {
                let mut s = String::new();
                if !reg.is_empty() {
                    s.push_str(&format!("{:<44} {:>18}\n", "metric", "value"));
                }
                for (name, labels, series) in reg.iter() {
                    let label_str = if labels.is_empty() {
                        String::new()
                    } else {
                        format!(
                            "{{{}}}",
                            labels
                                .iter()
                                .map(|(k, v)| format!("{k}={v}"))
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    };
                    let rendered = match series {
                        Series::Counter(c) => format!("{c}"),
                        Series::Gauge(g) => fmt_num(*g),
                        Series::Hist(h) => format!(
                            "n={} mean={:.1} p50={} p99={} max={}",
                            h.count(),
                            h.mean(),
                            h.percentile(0.5).unwrap_or(0),
                            h.percentile(0.99).unwrap_or(0),
                            h.max()
                        ),
                    };
                    s.push_str(&format!("{:<44} {:>18}\n", format!("{name}{label_str}"), rendered));
                }
                s
            })
            .unwrap_or_default();
        out.push_str(&metrics);
        let dropped = self.dropped_events();
        out.push_str(&format!("events: {} recorded, {} dropped\n", events.len(), dropped));
        out
    }
}

/// An append-as-you-go JSON Lines sink: one self-contained JSON object per
/// line, streamed through a buffered writer so long-running producers (sweep
/// workers, per-worker telemetry) never hold their whole stream in memory.
///
/// The sink owns the file; [`JsonlSink::finish`] (or drop) flushes it.
/// Callers pass fully serialized JSON objects — the sink only enforces the
/// one-object-per-line framing.
pub struct JsonlSink {
    w: io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
    lines: usize,
}

impl JsonlSink {
    /// Creates (truncates) the sink file.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self { w: io::BufWriter::new(file), path: path.to_path_buf(), lines: 0 })
    }

    /// Opens the sink file in append mode (history files).
    pub fn append(path: &std::path::Path) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { w: io::BufWriter::new(file), path: path.to_path_buf(), lines: 0 })
    }

    /// Writes one record (a serialized JSON object, no trailing newline).
    pub fn record(&mut self, json_obj: &str) -> io::Result<()> {
        debug_assert!(!json_obj.contains('\n'), "JSONL records must be single-line: {json_obj:?}");
        self.lines += 1;
        writeln!(self.w, "{json_obj}")
    }

    /// Number of records written so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The path the sink writes to.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Flushes and closes the sink.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn sample_obs() -> Obs {
        let obs = Obs::enabled();
        {
            let mut s = obs.span("graf.controller.tick");
            s.attr("total_qps", 612.5).attr("solver_iterations", 120u64).sim_time_s(15.0);
        }
        obs.point("graf.train.eval").attr("val_loss", 0.25);
        obs.counter_add("graf.sim.events", &[], 1234);
        obs.counter_add("graf.cluster.creations_started", &[("service", "cart")], 3);
        obs.gauge_set("graf.sim.queue_depth", &[], 17.0);
        for v in [1u64, 2, 2, 8, 400] {
            obs.hist_record("graf.cluster.creation_batch", &[], v);
        }
        obs
    }

    #[test]
    fn prometheus_renders_all_three_types() {
        let text = sample_obs().render_prometheus();
        assert!(text.contains("# TYPE graf_sim_events counter"), "{text}");
        assert!(text.contains("graf_sim_events 1234"), "{text}");
        assert!(text.contains("# TYPE graf_sim_queue_depth gauge"), "{text}");
        assert!(text.contains("graf_sim_queue_depth 17"), "{text}");
        assert!(text.contains("# TYPE graf_cluster_creation_batch histogram"), "{text}");
        assert!(text.contains("graf_cluster_creation_batch_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("graf_cluster_creation_batch_count 5"), "{text}");
        assert!(text.contains("graf_cluster_creation_batch_sum 413"), "{text}");
        assert!(text.contains("graf_cluster_creations_started{service=\"cart\"} 3"), "{text}");
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let obs = Obs::enabled();
        for v in [1u64, 1, 2, 3] {
            obs.hist_record("h", &[], v);
        }
        let text = obs.render_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"2\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"3\"} 4"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 4"), "{text}");
    }

    #[test]
    fn prometheus_histogram_series_share_bucket_bounds() {
        // Two label sets of the same metric with disjoint value ranges: both
        // series must expose the union of bounds so `sum by (le)` aggregates.
        let obs = Obs::enabled();
        obs.hist_record("lat", &[("svc", "a")], 2);
        obs.hist_record("lat", &[("svc", "a")], 2);
        obs.hist_record("lat", &[("svc", "b")], 9);
        let text = obs.render_prometheus();
        // Series a at its own bound and at b's (cumulative: all 2 obs ≤ 9).
        assert!(text.contains("lat_bucket{svc=\"a\",le=\"2\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{svc=\"a\",le=\"9\"} 2"), "{text}");
        // Series b at a's bound (nothing that small) and its own.
        assert!(text.contains("lat_bucket{svc=\"b\",le=\"2\"} 0"), "{text}");
        assert!(text.contains("lat_bucket{svc=\"b\",le=\"9\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{svc=\"a\",le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{svc=\"b\",le=\"+Inf\"} 1"), "{text}");
        // One TYPE header for the metric, not one per series.
        assert_eq!(text.matches("# TYPE lat histogram").count(), 1, "{text}");
    }

    #[test]
    fn prometheus_histogram_sum_and_count_per_series() {
        let obs = Obs::enabled();
        obs.hist_record("lat", &[("svc", "a")], 5);
        obs.hist_record("lat", &[("svc", "a")], 7);
        obs.hist_record("lat", &[("svc", "b")], 100);
        let text = obs.render_prometheus();
        assert!(text.contains("lat_sum{svc=\"a\"} 12"), "{text}");
        assert!(text.contains("lat_count{svc=\"a\"} 2"), "{text}");
        assert!(text.contains("lat_sum{svc=\"b\"} 100"), "{text}");
        assert!(text.contains("lat_count{svc=\"b\"} 1"), "{text}");
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let obs = Obs::enabled();
        let nasty = "a\"b\\c\nd";
        obs.counter_add("c", &[("k", nasty)], 1);
        let text = obs.render_prometheus();
        assert!(text.contains(r#"c{k="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn jsonl_lines_parse_and_timestamps_are_monotone() {
        let obs = sample_obs();
        let mut buf = Vec::new();
        obs.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 6, "events + metric records: {text}");
        let mut last_wall = -1.0;
        let mut names = Vec::new();
        for line in &lines {
            let j = parse(line).unwrap_or_else(|e| panic!("line {line:?}: {e}"));
            let wall = j.get("wall_us").and_then(Json::as_f64).expect("wall_us on every line");
            assert!(wall >= last_wall, "monotone timestamps: {wall} < {last_wall}");
            last_wall = wall;
            names.push(j.get("name").and_then(Json::as_str).unwrap().to_string());
        }
        assert!(names.iter().any(|n| n == "graf.controller.tick"));
        assert!(names.iter().any(|n| n == "graf.sim.events"));
        // The span line carries its attributes and duration.
        let span_line = lines.iter().find(|l| l.contains("controller.tick")).unwrap();
        let j = parse(span_line).unwrap();
        assert_eq!(j.get("type").and_then(Json::as_str), Some("span"));
        assert!(j.get("dur_us").is_some());
        assert_eq!(
            j.get("attrs").unwrap().get("solver_iterations").and_then(Json::as_f64),
            Some(120.0)
        );
        assert_eq!(j.get("sim_s").and_then(Json::as_f64), Some(15.0));
    }

    #[test]
    fn jsonl_escapes_attr_strings() {
        let obs = Obs::enabled();
        obs.point("e").attr("msg", "line1\nline2 \"quoted\"");
        let mut buf = Vec::new();
        obs.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let j = parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            j.get("attrs").unwrap().get("msg").and_then(Json::as_str),
            Some("line1\nline2 \"quoted\"")
        );
    }

    #[test]
    fn summary_mentions_spans_and_metrics() {
        let s = sample_obs().summary();
        assert!(s.contains("graf.controller.tick"), "{s}");
        assert!(s.contains("graf.train.eval"), "{s}");
        assert!(s.contains("graf.sim.events"), "{s}");
        assert!(s.contains("creation_batch"), "{s}");
        assert!(s.contains("0 dropped"), "{s}");
    }

    #[test]
    fn disabled_exports_are_empty() {
        let obs = Obs::disabled();
        assert_eq!(obs.render_prometheus(), "");
        let mut buf = Vec::new();
        obs.write_jsonl(&mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(obs.summary().contains("disabled"));
    }

    #[test]
    fn jsonl_sink_streams_lines_and_appends() {
        let dir = std::env::temp_dir().join(format!("graf-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");

        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(r#"{"a": 1}"#).unwrap();
        sink.record(r#"{"a": 2}"#).unwrap();
        assert_eq!(sink.lines(), 2);
        assert_eq!(sink.path(), path.as_path());
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 1}\n{\"a\": 2}\n");

        // Append mode adds to the existing stream; create mode truncates.
        let mut app = JsonlSink::append(&path).unwrap();
        app.record(r#"{"a": 3}"#).unwrap();
        app.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        let mut fresh = JsonlSink::create(&path).unwrap();
        fresh.record(r#"{"b": 1}"#).unwrap();
        drop(fresh); // drop flushes too
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"b\": 1}\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
