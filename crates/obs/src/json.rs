//! Minimal JSON support for the JSONL exporter and its tests: string
//! escaping, number formatting, and a small recursive-descent parser. No
//! external dependencies — the whole crate stays std-only.

use std::fmt::Write as _;

/// Appends a JSON string literal (with quotes) to `out`, escaping `"`, `\`,
/// control characters and newlines per RFC 8259.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become `null` (JSON has
/// no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` prints the shortest representation that round-trips exactly.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to consume the whole input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?} at {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex =
                            b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "he said \"hi\\there\"\nnew\tline\u{1}é";
        let mut doc = String::new();
        write_str(&mut doc, nasty);
        assert_eq!(parse(&doc).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [0.0, -1.5, 1e-9, 123456789.123, f64::MAX, 2.0f64.powi(-40)] {
            let mut doc = String::new();
            write_f64(&mut doc, v);
            assert_eq!(parse(&doc).unwrap().as_f64().unwrap(), v, "{v}");
        }
        let mut doc = String::new();
        write_f64(&mut doc, f64::NAN);
        assert_eq!(doc, "null");
    }

    #[test]
    fn objects_and_arrays_parse() {
        let j = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(
            j.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Str("x".into())]))
        );
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
