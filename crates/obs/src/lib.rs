//! # graf-obs
//!
//! Framework-wide telemetry for the GRAF control loop: structured spans, a
//! metrics registry, and exporters (JSONL event log, Prometheus text
//! exposition, human-readable summary).
//!
//! The paper's GRAF consumes observability (Jaeger traces, Prometheus and
//! cAdvisor metrics) but our reproduction had none *of itself*: solver
//! iteration counts, training curves, Algorithm-1 probe counts and
//! instance-creation behaviour were invisible, which made scaling work
//! unmeasurable. This crate is the substrate every performance PR reports
//! against.
//!
//! ## Design
//!
//! Everything hangs off an [`Obs`] handle — a cheap clonable
//! `Option<Arc<..>>`. A **disabled** handle (the default everywhere) costs
//! one branch per instrumentation point: no allocation, no locking, no
//! clock reads, so hot paths are unaffected and simulation results are
//! bit-identical with telemetry on or off (telemetry never feeds back into
//! control decisions).
//!
//! * [`Obs::span`] returns an [`ObsSpan`] scoped guard recording name,
//!   wall-clock duration, optional simulated time and key/value attributes
//!   into a bounded event sink on drop.
//! * [`Obs::point`] records an instantaneous event the same way.
//! * [`Obs::counter_add`] / [`Obs::gauge_set`] / [`Obs::hist_record`]
//!   maintain named, labelled series in the metrics registry; histograms
//!   reuse [`graf_metrics::Histogram`]'s log-bucketed internals.
//! * [`Obs::write_jsonl`], [`Obs::render_prometheus`] and [`Obs::summary`]
//!   export everything (see [`export`]).
//!
//! ## Naming conventions
//!
//! Dotted lowercase paths, `graf.<component>.<thing>`:
//! `graf.controller.tick`, `graf.solver.solve`, `graf.solver.iterations`,
//! `graf.train.eval`, `graf.sample.bounds`, `graf.cluster.creations_started`,
//! `graf.sim.events`. Exporters map dots to underscores where the target
//! format requires it.
//!
//! **Invariants.** Telemetry is strictly write-only: no instrumented
//! component ever reads a counter, gauge or span back to make a decision,
//! so enabling or disabling observation cannot change simulation results.
//! A disabled handle ([`Obs::disabled`]) short-circuits before formatting
//! or allocating, keeping instrumented hot paths allocation-free.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod flight;
pub mod json;
pub mod registry;

pub use export::JsonlSink;
pub use flight::FlightRecorder;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use registry::Registry;

/// Default bound on retained events; newer events beyond it are counted as
/// dropped rather than growing the log without limit.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 20;

/// An attribute or metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Floating-point value.
    F64(f64),
    /// Signed integer value.
    I64(i64),
    /// Unsigned integer value.
    U64(u64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(String),
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// What an [`Event`] records.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A completed span with its wall-clock duration in microseconds.
    Span {
        /// Wall-clock duration, µs.
        dur_us: u64,
    },
    /// An instantaneous event.
    Point,
}

/// One recorded telemetry event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotone sequence number (unique per handle).
    pub seq: u64,
    /// Wall-clock microseconds since the handle was created (monotone).
    pub wall_us: u64,
    /// Simulated time in seconds, when the instrumentation point knows it.
    pub sim_s: Option<f64>,
    /// Event name (`graf.controller.tick`, …).
    pub name: &'static str,
    /// Span or point.
    pub kind: EventKind,
    /// Key/value attributes.
    pub attrs: Vec<(&'static str, Value)>,
}

struct Sink {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
    last_wall_us: u64,
}

struct Inner {
    start: Instant,
    seq: AtomicU64,
    sink: Mutex<Sink>,
    registry: Mutex<Registry>,
}

impl Inner {
    /// Wall-clock µs since handle creation, guaranteed non-decreasing across
    /// recorded events (enforced under the sink lock).
    fn record(&self, mut ev: Event) {
        let mut sink = self.sink.lock().expect("obs sink");
        ev.wall_us = ev.wall_us.max(sink.last_wall_us);
        sink.last_wall_us = ev.wall_us;
        if sink.events.len() >= sink.capacity {
            sink.dropped += 1;
        } else {
            sink.events.push(ev);
        }
    }
}

/// The telemetry handle. Clones share the same sink and registry.
///
/// A disabled handle (from [`Obs::disabled`] or `Obs::default()`) makes every
/// operation a cheap no-op.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => {
                let sink = i.sink.lock().expect("obs sink");
                write!(
                    f,
                    "Obs {{ enabled, events: {}, dropped: {} }}",
                    sink.events.len(),
                    sink.dropped
                )
            }
            None => write!(f, "Obs {{ disabled }}"),
        }
    }
}

impl Obs {
    /// A disabled handle: every instrumentation point is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with the default event capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                seq: AtomicU64::new(0),
                sink: Mutex::new(Sink {
                    events: Vec::new(),
                    capacity: capacity.max(1),
                    dropped: 0,
                    last_wall_us: 0,
                }),
                registry: Mutex::new(Registry::new()),
            })),
        }
    }

    /// `true` when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a scoped span; its duration and attributes are recorded when
    /// the returned guard drops. No-op (no allocation) when disabled.
    pub fn span(&self, name: &'static str) -> ObsSpan {
        match &self.inner {
            Some(inner) => ObsSpan {
                state: Some(SpanState {
                    inner: Arc::clone(inner),
                    name,
                    start_us: inner.start.elapsed().as_micros() as u64,
                    sim_s: None,
                    attrs: Vec::new(),
                    kind_is_span: true,
                }),
            },
            None => ObsSpan { state: None },
        }
    }

    /// Starts an instantaneous event; recorded (with its attributes, no
    /// duration) when the returned guard drops.
    pub fn point(&self, name: &'static str) -> ObsSpan {
        let mut s = self.span(name);
        if let Some(state) = &mut s.state {
            state.kind_is_span = false;
        }
        s
    }

    /// Adds `n` to the counter `name` with the given labels.
    pub fn counter_add(&self, name: &'static str, labels: &[(&'static str, &str)], n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().expect("obs registry").counter_add(name, labels, n);
        }
    }

    /// Sets the gauge `name` with the given labels to `v`.
    pub fn gauge_set(&self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().expect("obs registry").gauge_set(name, labels, v);
        }
    }

    /// Records `value` into the log-bucketed histogram `name` with the given
    /// labels.
    pub fn hist_record(&self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().expect("obs registry").hist_record(name, labels, value);
        }
    }

    /// Snapshot of all recorded events, in record order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.sink.lock().expect("obs sink").events.clone(),
            None => Vec::new(),
        }
    }

    /// Number of events dropped because the sink was full.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.sink.lock().expect("obs sink").dropped,
            None => 0,
        }
    }

    /// Runs `f` over the metrics registry snapshot (None when disabled).
    pub(crate) fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| f(&inner.registry.lock().expect("obs registry")))
    }

    pub(crate) fn wall_us_now(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_micros() as u64,
            None => 0,
        }
    }
}

struct SpanState {
    inner: Arc<Inner>,
    name: &'static str,
    start_us: u64,
    sim_s: Option<f64>,
    attrs: Vec<(&'static str, Value)>,
    kind_is_span: bool,
}

/// Scoped span (or point-event) guard returned by [`Obs::span`] /
/// [`Obs::point`]; records on drop. All methods are no-ops when the parent
/// handle is disabled.
pub struct ObsSpan {
    state: Option<SpanState>,
}

impl ObsSpan {
    /// Attaches an attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<Value>) -> &mut Self {
        if let Some(s) = &mut self.state {
            s.attrs.push((key, value.into()));
        }
        self
    }

    /// Tags the span with the simulated time it covers.
    pub fn sim_time_s(&mut self, t_s: f64) -> &mut Self {
        if let Some(s) = &mut self.state {
            s.sim_s = Some(t_s);
        }
        self
    }

    /// `true` when this span will actually record (cheap guard for attribute
    /// computations that are themselves costly).
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }
}

impl Drop for ObsSpan {
    fn drop(&mut self) {
        if let Some(s) = self.state.take() {
            let end_us = s.inner.start.elapsed().as_micros() as u64;
            let kind = if s.kind_is_span {
                EventKind::Span { dur_us: end_us.saturating_sub(s.start_us) }
            } else {
                EventKind::Point
            };
            let seq = s.inner.seq.fetch_add(1, Ordering::AcqRel);
            let (wall_us, name, sim_s, attrs, inner) = (end_us, s.name, s.sim_s, s.attrs, s.inner);
            inner.record(Event { seq, wall_us, sim_s, name, kind, attrs });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        {
            let mut s = obs.span("graf.test");
            s.attr("k", 1.0).sim_time_s(2.0);
            assert!(!s.is_recording());
        }
        obs.counter_add("c", &[], 1);
        obs.gauge_set("g", &[], 1.0);
        obs.hist_record("h", &[], 1);
        assert!(obs.events().is_empty());
        assert_eq!(obs.dropped_events(), 0);
    }

    #[test]
    fn span_records_on_drop_with_attrs() {
        let obs = Obs::enabled();
        {
            let mut s = obs.span("graf.test.span");
            s.attr("x", 41u64).attr("y", "hello").sim_time_s(12.5);
        }
        obs.point("graf.test.point").attr("z", true);
        let evs = obs.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "graf.test.span");
        assert!(matches!(evs[0].kind, EventKind::Span { .. }));
        assert_eq!(evs[0].sim_s, Some(12.5));
        assert_eq!(evs[0].attrs[0], ("x", Value::U64(41)));
        assert_eq!(evs[0].attrs[1], ("y", Value::Str("hello".into())));
        assert_eq!(evs[1].kind, EventKind::Point);
        assert_eq!(evs[1].attrs[0], ("z", Value::Bool(true)));
    }

    #[test]
    fn wall_clock_is_monotone_across_events() {
        let obs = Obs::enabled();
        for _ in 0..100 {
            obs.point("e");
        }
        let evs = obs.events();
        let mut prev = 0u64;
        for e in &evs {
            assert!(e.wall_us >= prev, "wall_us must be monotone");
            prev = e.wall_us;
        }
    }

    #[test]
    fn sink_capacity_bounds_memory() {
        let obs = Obs::with_capacity(4);
        for _ in 0..10 {
            obs.point("e");
        }
        assert_eq!(obs.events().len(), 4);
        assert_eq!(obs.dropped_events(), 6);
    }

    #[test]
    fn clones_share_the_sink() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.point("from-clone");
        assert_eq!(obs.events().len(), 1);
        clone.counter_add("c", &[], 3);
        obs.counter_add("c", &[], 2);
        assert!(obs.render_prometheus().contains("c 5"));
    }
}
