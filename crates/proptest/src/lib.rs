//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of proptest's API its property tests use: the [`proptest!`] macro,
//! range and [`collection::vec`] strategies, `prop_assert!`/`prop_assert_eq!`,
//! and [`test_runner::ProptestConfig`].
//!
//! Semantics: each test body runs `cases` times against inputs sampled from
//! the strategies with a deterministic per-test RNG (seeded from the test
//! name, so failures reproduce). There is **no shrinking** — a failing case
//! reports the sampled inputs as-is via the panic message.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A source of random test inputs (a drastically reduced `proptest`
/// strategy: sampling only, no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.gen_range(self.start as u64..=(self.end - 1) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(*self.start() as u64..=*self.end() as u64) as $t
            }
        }
    )+};
}
int_range_strategy!(u64, u32, u16, usize, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        // Uniform over [lo, hi]: include the endpoint occasionally by
        // sampling the closed unit interval on 53-bit grid resolution.
        let u = (rng.gen::<u64>() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + (self.end() - self.start()) * u
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A / 0, B / 1), (A / 0, B / 1, C / 2), (A / 0, B / 1, C / 2, D / 3));

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: elements from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.gen_range(self.len.start as u64..=(self.len.end - 1) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest default is 256; keep CI fast but meaningful.
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Deterministic per-test RNG seed: FNV-1a over the test path so each
/// property gets a distinct but reproducible stream.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[doc(hidden)]
pub use rand as __rand;

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, failing the case (with the
/// sampled inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..cfg.cases {
                $(let $arg = ($strat).sample(&mut rng);)+
                let dump = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, cfg.cases, e, dump,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -2.0f64..2.0, n in 1usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0u64..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuple_strategies_sample_componentwise(
            pair in (0u8..4, 10u64..20),
            v in collection::vec((0u32..3, -1.0f64..1.0), 1..5),
        ) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            prop_assert!(v.iter().all(|&(k, x)| k < 3 && (-1.0..1.0).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_is_honored(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let result = std::panic::catch_unwind(always_fails);
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("inputs:"), "message carries inputs: {msg}");
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
