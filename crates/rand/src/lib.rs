//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *exact* subset of `rand` 0.8 it uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (what rand 0.8 uses on 64-bit
//!   targets), with rand's SplitMix64-based [`SeedableRng::seed_from_u64`].
//! * [`Rng::gen`] for `f64`/`u64`/`u32` via the `Standard` distribution
//!   (f64 = top 53 bits of one `u64` draw, scaled by 2⁻⁵³).
//! * [`Rng::gen_range`] over integer ranges (Lemire widening-multiply with
//!   rand 0.8's exact rejection zone).
//!
//! Every algorithm matches rand 0.8.5 bit for bit (known-answer tests
//! below), so seeded simulations produce identical draw sequences to builds
//! against the real crate. Only the APIs the workspace calls are provided.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random-number generator core: raw integer draws.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (rand's generic
    /// PCG32-based expansion; concrete RNGs may override).
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6's default: PCG32 output fills the seed 4 bytes at a
        // time. SmallRng overrides this with SplitMix64 (see below).
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling a value of type `T` from a distribution.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard (uniform) distribution over a type's natural range;
/// `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8's multiply-based method: 53 most-significant bits.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// 128-bit widening multiply returning `(high, low)` 64-bit halves.
fn wmul(x: u64, y: u64) -> (u64, u64) {
    let p = x as u128 * y as u128;
    ((p >> 64) as u64, p as u64)
}

/// Uniform draw from `[low, high]` inclusive — rand 0.8's
/// `sample_single_inclusive` (Lemire's method with the exact rejection
/// zone), bit-for-bit.
fn sample_u64_inclusive<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    assert!(low <= high, "cannot sample empty range");
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        // Full u64 range.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul(v, range);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        sample_u64_inclusive(*self.start(), *self.end(), rng)
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        sample_u64_inclusive(self.start, self.end - 1, rng)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        sample_u64_inclusive(self.start as u64, (self.end - 1) as u64, rng) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        sample_u64_inclusive(*self.start() as u64, *self.end() as u64, rng) as usize
    }
}

/// Convenience extension over [`RngCore`]: typed draws and ranges.
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The non-cryptographic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// rand 0.8's `SmallRng` on 64-bit targets: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256++ have weak linear structure; rand
            // takes the high half.
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            SmallRng { s }
        }

        /// SplitMix64 seed expansion, exactly as rand 0.8's
        /// `Xoshiro256PlusPlus::seed_from_u64`.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e3779b97f4a7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    /// rand 0.8.5's own xoshiro256++ known-answer test (seed words 1,2,3,4).
    #[test]
    fn xoshiro256plusplus_reference_vector() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected = [
            41943041u64,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_splitmix_expansion() {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        let mut state = 7u64;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix(&mut state).to_le_bytes());
        }
        let mut direct = SmallRng::seed_from_u64(7);
        let mut expanded = SmallRng::from_seed(seed);
        for _ in 0..16 {
            assert_eq!(direct.next_u64(), expanded.next_u64());
        }
    }

    #[test]
    fn f64_is_top_53_bits() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = a.clone();
        for _ in 0..1000 {
            let f = a.gen::<f64>();
            let bits = b.gen::<u64>() >> 11;
            assert_eq!(f, bits as f64 * (1.0 / (1u64 << 53) as f64));
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_inclusive_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..=13);
            assert!((10..=13).contains(&v));
        }
        // Degenerate single-point range.
        assert_eq!(rng.gen_range(7u64..=7), 7);
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0u64..=3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SmallRng::seed_from_u64(1234);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
