//! Deployments and the cluster control plane.

use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::ServiceId;
use graf_sim::world::World;

use crate::creation::CreationModel;

/// A Kubernetes-style deployment: one service, a fixed CPU unit per instance,
/// a desired replica count and bounds.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Managed service.
    pub service: ServiceId,
    /// CPU quota per instance in millicores (the paper's "CPU unit" of
    /// eq. 7: instances = ceil(quota / unit)).
    pub cpu_unit_mc: f64,
    /// Current desired replicas.
    pub desired: usize,
    /// Lower bound on replicas.
    pub min_replicas: usize,
    /// Upper bound on replicas.
    pub max_replicas: usize,
}

impl Deployment {
    /// Creates a deployment with bounds `[1, 1000]` and the given initial size.
    pub fn new(service: ServiceId, cpu_unit_mc: f64, initial: usize) -> Self {
        assert!(cpu_unit_mc > 0.0);
        Self { service, cpu_unit_mc, desired: initial, min_replicas: 1, max_replicas: 1000 }
    }

    /// Sets replica bounds.
    pub fn bounds(mut self, min: usize, max: usize) -> Self {
        assert!(min <= max);
        self.min_replicas = min;
        self.max_replicas = max;
        self
    }
}

/// The control plane: a simulated world plus its deployments and the
/// instance-creation latency model.
pub struct Cluster {
    world: World,
    deployments: Vec<Deployment>,
    creation: CreationModel,
    /// Ready times of in-flight creations (pruned lazily).
    inflight_creations: Vec<SimTime>,
    /// Fault engine for creation failures / slow-start, when chaos is armed.
    chaos: Option<graf_chaos::ChaosEngine>,
    obs: graf_obs::Obs,
}

impl Cluster {
    /// Creates a cluster and immediately starts the initial replicas (ready
    /// without startup delay — experiments begin from a warm deployment, as
    /// the paper's do).
    pub fn new(mut world: World, deployments: Vec<Deployment>, creation: CreationModel) -> Self {
        for d in &deployments {
            assert!(
                (d.service.0 as usize) < world.topology().num_services(),
                "deployment references unknown service"
            );
            world.add_instances(d.service, d.desired, d.cpu_unit_mc, world.now());
        }
        // Make the initial instances ready by processing their events "now".
        let now = world.now();
        world.run_until(now);
        Self {
            world,
            deployments,
            creation,
            inflight_creations: Vec::new(),
            chaos: None,
            obs: graf_obs::Obs::disabled(),
        }
    }

    /// Arms a chaos schedule: world-level faults (trace-span drops,
    /// contention spikes) are installed into the simulated world and the
    /// cluster keeps an engine for the creation faults (batch failures,
    /// slow-start). Arming an empty schedule changes nothing — runs stay
    /// bit-identical to a cluster that never armed chaos.
    pub fn arm_chaos(&mut self, schedule: &graf_chaos::ChaosSchedule) {
        schedule.install_world(&mut self.world);
        self.chaos = Some(schedule.engine(graf_chaos::stream::CLUSTER));
    }

    /// Attaches a telemetry handle to the cluster and its world. The cluster
    /// reports instance-creation lifecycle metrics
    /// (`graf.cluster.creations_started` / `creations_completed`, the
    /// `creation_batch` size histogram and the `pending_creations` gauge).
    pub fn set_obs(&mut self, obs: graf_obs::Obs) {
        self.world.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Drops inflight entries whose ready time has passed, crediting them to
    /// the completion counter.
    fn prune_inflight(&mut self, now: SimTime) {
        let before = self.inflight_creations.len();
        self.inflight_creations.retain(|&t| t > now);
        let completed = before - self.inflight_creations.len();
        if completed > 0 {
            self.obs.counter_add("graf.cluster.creations_completed", &[], completed as u64);
        }
    }

    /// The simulated world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the simulated world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The deployments, in construction order.
    pub fn deployments(&self) -> &[Deployment] {
        &self.deployments
    }

    /// The deployment managing `service`.
    pub fn deployment(&self, service: ServiceId) -> &Deployment {
        self.deployments.iter().find(|d| d.service == service).expect("service has a deployment")
    }

    /// Number of creations currently in flight cluster-wide.
    pub fn inflight_creations(&mut self) -> usize {
        let now = self.world.now();
        self.prune_inflight(now);
        self.inflight_creations.len()
    }

    /// Sets the desired replica count of `service`, clamped to the
    /// deployment's bounds. Added instances become ready after the
    /// creation-latency curve; removals drain immediately.
    ///
    /// Returns the applied (clamped) desired count.
    pub fn set_desired(&mut self, service: ServiceId, replicas: usize) -> usize {
        let now = self.world.now();
        let d = self
            .deployments
            .iter_mut()
            .find(|d| d.service == service)
            .expect("service has a deployment");
        let target = replicas.clamp(d.min_replicas, d.max_replicas);
        let unit = d.cpu_unit_mc;
        d.desired = target;
        let (starting, ready, _draining) = self.world.instance_counts(service);
        let current = starting + ready;
        if target > current {
            let add = target - current;
            // Chaos: an armed creation-failure fault loses the whole batch —
            // no instances start, and no rng is drawn unless a window is
            // active. `desired` stays at the target, so a retrying controller
            // re-attempts the batch on its next tick.
            if let Some(engine) = self.chaos.as_mut() {
                if engine.creation_fails(now) {
                    self.obs.counter_add("graf.chaos.creations_failed", &[], add as u64);
                    return target;
                }
            }
            self.prune_inflight(now);
            let concurrent = self.inflight_creations.len() + add;
            let mut delay = self.creation.delay(concurrent);
            if let Some(engine) = self.chaos.as_ref() {
                let factor = engine.slow_start_factor(now);
                if factor > 1.0 {
                    delay = SimDuration::from_micros((delay.as_micros() as f64 * factor) as u64);
                    self.obs.counter_add("graf.chaos.creations_slowed", &[], add as u64);
                }
            }
            let ready_at = now + delay;
            self.world.add_instances(service, add, unit, ready_at);
            for _ in 0..add {
                self.inflight_creations.push(ready_at);
            }
            if self.obs.is_enabled() {
                self.obs.counter_add("graf.cluster.creations_started", &[], add as u64);
                self.obs.hist_record("graf.cluster.creation_batch", &[], add as u64);
                self.obs.gauge_set(
                    "graf.cluster.pending_creations",
                    &[],
                    self.inflight_creations.len() as f64,
                );
            }
        } else if target < current {
            self.world.remove_instances(service, current - target);
        }
        target
    }

    /// Desired replicas needed to provide `quota_mc` at this service's CPU
    /// unit (the paper's eq. 7: `ceil(quota / unit)`).
    pub fn replicas_for_quota(&self, service: ServiceId, quota_mc: f64) -> usize {
        let unit = self.deployment(service).cpu_unit_mc;
        (quota_mc / unit).ceil().max(0.0) as usize
    }

    /// Live (starting + ready + draining) instance count of `service`.
    pub fn live_instances(&self, service: ServiceId) -> usize {
        let (s, r, d) = self.world.instance_counts(service);
        s + r + d
    }

    /// Total live instances across all deployments.
    pub fn total_instances(&self) -> usize {
        self.deployments.iter().map(|d| self.live_instances(d.service)).sum()
    }

    /// Total ready CPU quota across all deployments, millicores.
    pub fn total_ready_quota_mc(&self) -> f64 {
        self.deployments.iter().map(|d| self.world.ready_quota_mc(d.service)).sum()
    }

    /// Mean CPU utilization of `service` over the trailing `dur`.
    pub fn utilization(&self, service: ServiceId, dur: SimDuration) -> Option<f64> {
        self.world.service_utilization(service, dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graf_sim::topology::{ApiSpec, AppTopology, CallNode, ChildMode, ServiceSpec};
    use graf_sim::world::SimConfig;

    fn topo() -> AppTopology {
        AppTopology::new(
            "t",
            vec![ServiceSpec::new("a", 1.0, 100).cv(0.0), ServiceSpec::new("b", 2.0, 100).cv(0.0)],
            vec![ApiSpec::new(
                "get",
                CallNode::new(0).children_mode(ChildMode::Sequential, vec![CallNode::new(1)]),
            )],
        )
    }

    fn cluster() -> Cluster {
        let world = World::new(topo(), SimConfig::default(), 11);
        Cluster::new(
            world,
            vec![Deployment::new(ServiceId(0), 500.0, 2), Deployment::new(ServiceId(1), 500.0, 1)],
            CreationModel::default(),
        )
    }

    #[test]
    fn initial_replicas_are_ready_immediately() {
        let c = cluster();
        let (_, ready_a, _) = c.world().instance_counts(ServiceId(0));
        let (_, ready_b, _) = c.world().instance_counts(ServiceId(1));
        assert_eq!((ready_a, ready_b), (2, 1));
        assert_eq!(c.total_instances(), 3);
        assert!((c.total_ready_quota_mc() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn scale_up_takes_creation_time() {
        let mut c = cluster();
        c.set_desired(ServiceId(0), 3);
        let (starting, ready, _) = c.world().instance_counts(ServiceId(0));
        assert_eq!((starting, ready), (1, 2));
        // Single creation: ready after 5.5 s.
        c.world_mut().run_until(SimTime::from_secs(5.0));
        assert_eq!(c.world().instance_counts(ServiceId(0)).1, 2, "not ready yet");
        c.world_mut().run_until(SimTime::from_secs(6.0));
        assert_eq!(c.world().instance_counts(ServiceId(0)).1, 3, "ready after 5.5s");
    }

    #[test]
    fn batch_creation_is_slower() {
        let mut c = cluster();
        c.set_desired(ServiceId(0), 10); // batch of 8 new
        c.world_mut().run_until(SimTime::from_secs(10.0));
        assert_eq!(c.world().instance_counts(ServiceId(0)).1, 2, "8-batch takes 23.6s");
        c.world_mut().run_until(SimTime::from_secs(24.0));
        assert_eq!(c.world().instance_counts(ServiceId(0)).1, 10);
    }

    #[test]
    fn scale_down_is_immediate() {
        let mut c = cluster();
        c.set_desired(ServiceId(0), 1);
        let (starting, ready, draining) = c.world().instance_counts(ServiceId(0));
        assert_eq!(starting, 0);
        assert_eq!(ready + draining, 1, "idle instances removed instantly");
    }

    #[test]
    fn bounds_are_enforced() {
        let world = World::new(topo(), SimConfig::default(), 1);
        let mut c = Cluster::new(
            world,
            vec![
                Deployment::new(ServiceId(0), 500.0, 2).bounds(2, 4),
                Deployment::new(ServiceId(1), 500.0, 1),
            ],
            CreationModel::instant(),
        );
        assert_eq!(c.set_desired(ServiceId(0), 0), 2);
        assert_eq!(c.set_desired(ServiceId(0), 100), 4);
    }

    #[test]
    fn replicas_for_quota_rounds_up() {
        let c = cluster();
        assert_eq!(c.replicas_for_quota(ServiceId(0), 1.0), 1);
        assert_eq!(c.replicas_for_quota(ServiceId(0), 500.0), 1);
        assert_eq!(c.replicas_for_quota(ServiceId(0), 500.1), 2);
        assert_eq!(c.replicas_for_quota(ServiceId(0), 1700.0), 4);
    }

    #[test]
    fn inflight_creations_prune() {
        let mut c = cluster();
        c.set_desired(ServiceId(0), 3);
        assert_eq!(c.inflight_creations(), 1);
        c.world_mut().run_until(SimTime::from_secs(10.0));
        assert_eq!(c.inflight_creations(), 0);
    }

    #[test]
    fn telemetry_tracks_creation_lifecycle() {
        let obs = graf_obs::Obs::enabled();
        let mut c = cluster();
        c.set_obs(obs.clone());
        c.set_desired(ServiceId(0), 5); // 3 new instances in one batch
        c.world_mut().run_until(SimTime::from_secs(30.0));
        assert_eq!(c.inflight_creations(), 0);
        let prom = obs.render_prometheus();
        assert!(prom.contains("graf_cluster_creations_started 3"), "{prom}");
        assert!(prom.contains("graf_cluster_creations_completed 3"), "{prom}");
        assert!(prom.contains("graf_cluster_creation_batch_count 1"), "{prom}");
        assert!(prom.contains("graf_sim_events"), "world shares the handle: {prom}");
    }
}
