//! Instance-creation latency model (paper Figure 1).
//!
//! The paper measures the time to create microservice instances on one worker
//! node, network image pulls excluded: 5.5 s for a single instance, growing
//! to 45.6 s when 16 are created at once (contention on the node's container
//! runtime). We reproduce that exact curve by interpolating the measured
//! points linearly in `log2(batch size)`.

use graf_sim::time::SimDuration;

/// The measured `(batch size, seconds)` points of Figure 1.
pub const FIGURE1_POINTS: [(usize, f64); 5] =
    [(1, 5.5), (2, 8.7), (4, 12.5), (8, 23.6), (16, 45.6)];

/// Computes instance-creation delays from concurrent batch sizes.
#[derive(Clone, Debug)]
pub struct CreationModel {
    /// Multiplier on the Figure-1 curve (1.0 = paper-measured; 0.0 = instant).
    pub scale: f64,
}

impl Default for CreationModel {
    fn default() -> Self {
        Self { scale: 1.0 }
    }
}

impl CreationModel {
    /// A model with instant creation (for experiments isolating other effects).
    pub fn instant() -> Self {
        Self { scale: 0.0 }
    }

    /// Time until instances become ready when `concurrent` creations are in
    /// flight cluster-wide (including the new ones).
    ///
    /// Between measured points the curve is interpolated linearly in
    /// `log2(n)`; beyond 16 it extrapolates with the last segment's slope.
    pub fn delay(&self, concurrent: usize) -> SimDuration {
        if concurrent == 0 || self.scale == 0.0 {
            return SimDuration::ZERO;
        }
        let secs = Self::curve_secs(concurrent) * self.scale;
        SimDuration::from_secs(secs)
    }

    fn curve_secs(n: usize) -> f64 {
        let x = (n as f64).log2();
        let pts: Vec<(f64, f64)> =
            FIGURE1_POINTS.iter().map(|&(n, s)| ((n as f64).log2(), s)).collect();
        if x <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x <= x1 {
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        // Extrapolate beyond 16 with the last slope.
        let (x0, y0) = pts[pts.len() - 2];
        let (x1, y1) = pts[pts.len() - 1];
        y1 + (y1 - y0) * (x - x1) / (x1 - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_points_are_exact() {
        let m = CreationModel::default();
        for &(n, s) in &FIGURE1_POINTS {
            let d = m.delay(n).as_secs_f64();
            assert!((d - s).abs() < 1e-9, "batch {n}: {d} vs {s}");
        }
    }

    #[test]
    fn curve_is_monotone() {
        let m = CreationModel::default();
        let mut prev = SimDuration::ZERO;
        for n in 1..=64 {
            let d = m.delay(n);
            assert!(d >= prev, "creation time must not decrease with batch size");
            prev = d;
        }
    }

    #[test]
    fn interpolation_between_points() {
        let m = CreationModel::default();
        let d3 = m.delay(3).as_secs_f64();
        assert!(d3 > 8.7 && d3 < 12.5, "3-instance batch between 2 and 4: {d3}");
    }

    #[test]
    fn extrapolation_beyond_16() {
        let m = CreationModel::default();
        assert!(m.delay(32).as_secs_f64() > 45.6);
    }

    #[test]
    fn instant_model_is_zero() {
        let m = CreationModel::instant();
        assert_eq!(m.delay(8), SimDuration::ZERO);
        assert_eq!(CreationModel::default().delay(0), SimDuration::ZERO);
    }

    #[test]
    fn scale_multiplies() {
        let m = CreationModel { scale: 0.5 };
        assert!((m.delay(1).as_secs_f64() - 2.75).abs() < 1e-9);
    }
}
