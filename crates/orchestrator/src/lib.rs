//! # graf-orchestrator
//!
//! A Kubernetes-like control plane over the `graf-sim` world: deployments,
//! replica management with realistic instance-creation latency, the
//! autoscaler baselines GRAF is compared against, and the experiment driver
//! that interleaves load generation, simulation and control.
//!
//! Components:
//!
//! * [`creation`] — the instance-creation latency model, reproducing the
//!   measured curve of the paper's Figure 1 (5.5 s for one instance, rising
//!   to 45.6 s when 16 are created at once). This delay is what turns
//!   chain-oblivious autoscaling into the cascading effect of §2.1.
//! * [`cluster`] — [`Cluster`]: deployments (service + CPU unit per instance
//!   + replica bounds) and the `set_desired`/apply machinery.
//! * [`autoscaler`] — the [`Autoscaler`] trait and baselines: the
//!   threshold-based Kubernetes HPA (15 s interval, 5-minute scale-down
//!   stabilization, §2.1/§5.3), the FIRM-like p95/p50-ratio scaler (§5.3),
//!   a proactive manual scaler (§2.1's "Opportunity"), and a static no-op.
//! * [`experiment`] — the driver loop gluing a [`Cluster`], a
//!   `graf_loadgen::LoadGen` and an [`Autoscaler`] together.
//!
//! **Invariants.** The control plane is deterministic: scaling decisions
//! depend only on simulated state, never on wall-clock or ambient
//! randomness, so a run is bit-reproducible per seed. Injected failures
//! (creation failure/slow-start via [`Cluster::arm_chaos`]) draw from the
//! chaos schedule's own seeded stream and an empty schedule draws nothing —
//! arming it leaves a run bit-identical to never arming it. Telemetry
//! ([`Cluster::set_obs`]) is write-only and never feeds back into decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscaler;
pub mod cluster;
pub mod creation;
pub mod experiment;

pub use autoscaler::{Autoscaler, FirmLike, HpaConfig, KubernetesHpa, ProactiveOnce, StaticScaler};
pub use cluster::{Cluster, Deployment};
pub use creation::CreationModel;
pub use experiment::{run_experiment, ExperimentHooks};
