//! Autoscaler baselines.
//!
//! * [`KubernetesHpa`] — the threshold-based horizontal pod autoscaler GRAF is
//!   compared against throughout the paper: per-service
//!   `desired = ceil(replicas × utilization / threshold)` every 15 s, with the
//!   default 10 % tolerance band and the 5-minute scale-down stabilization
//!   window ("K8s autoscaler records the scale recommendations of the past
//!   5 minutes and chooses the highest one", §5.3).
//! * [`FirmLike`] — the paper's FIRM-like baseline (§5.3): scale a service up
//!   when its p95/p50 latency ratio exceeds a threshold.
//! * [`ProactiveOnce`] — §2.1's "Opportunity": at a configured time, jump all
//!   services to a preset replica vector at once.
//! * [`StaticScaler`] — does nothing (fixed provisioning).

use std::collections::VecDeque;

use graf_sim::time::{SimDuration, SimTime};
use graf_sim::topology::ServiceId;

use crate::cluster::Cluster;

/// A controller invoked at a fixed interval by the experiment driver.
pub trait Autoscaler {
    /// How often [`Autoscaler::tick`] runs.
    fn interval(&self) -> SimDuration;

    /// Observes the cluster and applies scaling decisions.
    fn tick(&mut self, cluster: &mut Cluster);
}

/// Configuration of the Kubernetes HPA baseline.
#[derive(Clone, Debug)]
pub struct HpaConfig {
    /// Target CPU utilization in `(0, 1]` — the knob the paper hand-tunes.
    pub threshold: f64,
    /// Control interval (paper/production default: 15 s).
    pub interval: SimDuration,
    /// Tolerance band: no action when `|util/threshold − 1| <` this (k8s
    /// default 0.1).
    pub tolerance: f64,
    /// Scale-down stabilization window (k8s default 5 minutes).
    pub stabilization: SimDuration,
}

impl Default for HpaConfig {
    fn default() -> Self {
        Self {
            threshold: 0.5,
            interval: SimDuration::from_secs(15.0),
            tolerance: 0.1,
            stabilization: SimDuration::from_secs(300.0),
        }
    }
}

impl HpaConfig {
    /// Config with the given utilization threshold and defaults otherwise.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(threshold > 0.0 && threshold <= 1.0);
        Self { threshold, ..Self::default() }
    }
}

/// The Kubernetes horizontal pod autoscaler baseline.
pub struct KubernetesHpa {
    cfg: HpaConfig,
    /// Per-service recent recommendations: `(time, desired)`.
    recommendations: Vec<VecDeque<(SimTime, usize)>>,
}

impl KubernetesHpa {
    /// Creates an HPA for a cluster with `num_services` services.
    pub fn new(cfg: HpaConfig, num_services: usize) -> Self {
        Self { cfg, recommendations: vec![VecDeque::new(); num_services] }
    }
}

impl Autoscaler for KubernetesHpa {
    fn interval(&self) -> SimDuration {
        self.cfg.interval
    }

    fn tick(&mut self, cluster: &mut Cluster) {
        let now = cluster.world().now();
        let services: Vec<ServiceId> = cluster.deployments().iter().map(|d| d.service).collect();
        for service in services {
            let (starting, ready, _) = cluster.world().instance_counts(service);
            let live = starting + ready;
            if ready == 0 {
                continue; // no utilization signal yet
            }
            let Some(util) = cluster.utilization(service, self.cfg.interval) else {
                continue;
            };
            let ratio = util / self.cfg.threshold;
            // Raw recommendation from the current observation. Utilization is
            // measured against *ready* quota; starting pods will add capacity
            // soon, so recommend relative to ready and treat live as current.
            let mut desired = if (ratio - 1.0).abs() <= self.cfg.tolerance {
                live
            } else {
                (ready as f64 * ratio).ceil() as usize
            };
            desired = desired.max(1);

            // Scale-down stabilization: use the max recommendation over the
            // trailing window.
            let recs = &mut self.recommendations[service.0 as usize];
            recs.push_back((now, desired));
            let horizon = now
                .since(SimTime::ZERO)
                .as_micros()
                .saturating_sub(self.cfg.stabilization.as_micros());
            while let Some(&(t, _)) = recs.front() {
                if t.as_micros() < horizon {
                    recs.pop_front();
                } else {
                    break;
                }
            }
            let stabilized = recs.iter().map(|&(_, d)| d).max().unwrap_or(desired);
            let target =
                if stabilized > desired { stabilized.max(live.min(stabilized)) } else { desired };
            if target != live {
                cluster.set_desired(service, target);
            }
        }
    }
}

/// The FIRM-like baseline: per-service latency-anomaly triggered scaling.
///
/// The paper's comparison implements FIRM's detection as "increase the CPU
/// quota of a microservice when a ratio between median and 95 %-tile latency
/// for the microservice exceeds a pre-determined threshold". Under sustained
/// overload the median inflates along with the tail (queueing delays every
/// request), which would blind a pure ratio trigger, so — like FIRM's
/// SLO-driven critical-component detection — a per-service latency ceiling
/// also triggers scale-up. Scaling is one instance per violating service per
/// tick, reproducing the incremental ramps of Figure 21.
pub struct FirmLike {
    /// Scale up when p95/p50 exceeds this (paper: "a pre-determined threshold").
    pub ratio_threshold: f64,
    /// Scale up when per-service p95 exceeds this.
    pub latency_ceiling: SimDuration,
    /// Control interval.
    pub interval: SimDuration,
    /// Scale down one step when latency is calm and utilization below this.
    pub scale_down_util: f64,
}

impl Default for FirmLike {
    fn default() -> Self {
        Self {
            ratio_threshold: 4.0,
            latency_ceiling: SimDuration::from_millis(500.0),
            interval: SimDuration::from_secs(15.0),
            scale_down_util: 0.25,
        }
    }
}

impl Autoscaler for FirmLike {
    fn interval(&self) -> SimDuration {
        self.interval
    }

    fn tick(&mut self, cluster: &mut Cluster) {
        let k = (self.interval.as_micros() / cluster.world().config().window_us).max(1) as usize;
        let services: Vec<ServiceId> = cluster.deployments().iter().map(|d| d.service).collect();
        for service in services {
            let (starting, ready, _) = cluster.world().instance_counts(service);
            let live = starting + ready;
            let p50 = cluster.world().service_percentile(service, k, 0.50);
            let p95 = cluster.world().service_percentile(service, k, 0.95);
            let (Some(p50), Some(p95)) = (p50, p95) else { continue };
            let ratio = p95.as_micros().max(1) as f64 / p50.as_micros().max(1) as f64;
            let violating = ratio > self.ratio_threshold || p95 > self.latency_ceiling;
            if violating {
                // SLO-violation suspect: grow this microservice's CPU quota.
                cluster.set_desired(service, live + 1);
            } else if ratio < self.ratio_threshold * 0.5 && p95 < self.latency_ceiling {
                if let Some(util) = cluster.utilization(service, self.interval) {
                    if util < self.scale_down_util && live > 1 {
                        cluster.set_desired(service, live - 1);
                    }
                }
            }
        }
    }
}

/// Applies a fixed replica vector once at a configured time — the manual
/// proactive scaling of §2.1 ("we manually create the heuristically
/// determined number of instances for each microservice").
pub struct ProactiveOnce {
    /// When to apply the target.
    pub at: SimTime,
    /// `(service, replicas)` to apply.
    pub targets: Vec<(ServiceId, usize)>,
    /// Driver cadence (how often the trigger is checked).
    pub interval: SimDuration,
    applied: bool,
}

impl ProactiveOnce {
    /// Creates the one-shot scaler.
    pub fn new(at: SimTime, targets: Vec<(ServiceId, usize)>) -> Self {
        Self { at, targets, interval: SimDuration::from_secs(1.0), applied: false }
    }
}

impl Autoscaler for ProactiveOnce {
    fn interval(&self) -> SimDuration {
        self.interval
    }

    fn tick(&mut self, cluster: &mut Cluster) {
        if self.applied || cluster.world().now() < self.at {
            return;
        }
        // Create instances for *all* services in the chain at once — the key
        // to avoiding the cascading effect.
        for &(service, replicas) in &self.targets {
            cluster.set_desired(service, replicas);
        }
        self.applied = true;
    }
}

/// No-op scaler (fixed provisioning).
pub struct StaticScaler;

impl Autoscaler for StaticScaler {
    fn interval(&self) -> SimDuration {
        SimDuration::from_secs(3600.0)
    }

    fn tick(&mut self, _cluster: &mut Cluster) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Deployment;
    use crate::creation::CreationModel;
    use graf_sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceSpec};
    use graf_sim::world::{SimConfig, World};

    fn one_service_cluster(creation: CreationModel) -> Cluster {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 5.0, 100).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let world = World::new(topo, SimConfig::default(), 21);
        Cluster::new(world, vec![Deployment::new(ServiceId(0), 500.0, 1)], creation)
    }

    /// Drives constant load and the scaler for `secs` seconds.
    fn drive(cluster: &mut Cluster, scaler: &mut dyn Autoscaler, qps: f64, secs: f64) {
        let mut next_tick = cluster.world().now() + scaler.interval();
        let gap = (1e6 / qps) as u64;
        let start = cluster.world().now();
        let end = SimTime(start.0 + (secs * 1e6) as u64);
        let mut t = start;
        let mut i = 0u64;
        while t < end {
            let seg_end = SimTime((t.0 + 100_000).min(end.0));
            while start.0 + i * gap < seg_end.0 {
                cluster.world_mut().inject(ApiId(0), SimTime(start.0 + i * gap));
                i += 1;
            }
            cluster.world_mut().run_until(seg_end);
            if seg_end >= next_tick {
                scaler.tick(cluster);
                next_tick += scaler.interval();
            }
            t = seg_end;
        }
    }

    #[test]
    fn hpa_scales_up_under_load() {
        let mut c = one_service_cluster(CreationModel::instant());
        let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 1);
        // 150 qps × 5 core·ms = 750 mc offered; at threshold 0.5 HPA needs
        // ≈ 1500 mc → 3 instances of 500 mc.
        drive(&mut c, &mut hpa, 150.0, 120.0);
        let live = c.live_instances(ServiceId(0));
        assert!((3..=5).contains(&live), "HPA converged to {live} instances");
    }

    #[test]
    fn hpa_respects_tolerance_band() {
        let mut c = one_service_cluster(CreationModel::instant());
        let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 1);
        // 50 qps × 5 = 250 mc over 500 mc → utilization 0.5 — exactly on
        // target: never scales.
        drive(&mut c, &mut hpa, 50.0, 60.0);
        assert_eq!(c.live_instances(ServiceId(0)), 1);
    }

    #[test]
    fn hpa_scale_down_waits_for_stabilization() {
        let mut c = one_service_cluster(CreationModel::instant());
        let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.5), 1);
        drive(&mut c, &mut hpa, 150.0, 90.0);
        let peak = c.live_instances(ServiceId(0));
        assert!(peak >= 3);
        // Load drops to near zero; within the 5-minute window the HPA must
        // not scale below the recent max recommendation.
        drive(&mut c, &mut hpa, 1.0, 120.0);
        let during_window = c.live_instances(ServiceId(0));
        assert!(during_window >= peak.min(3), "no fast scale-down: {during_window} vs peak {peak}");
        // After the stabilization window passes, it may shrink.
        drive(&mut c, &mut hpa, 1.0, 400.0);
        let after = c.live_instances(ServiceId(0));
        assert!(after < peak, "eventually scales down: {after} < {peak}");
    }

    #[test]
    fn firm_like_reacts_to_latency_ratio() {
        let mut c = one_service_cluster(CreationModel::instant());
        let mut firm = FirmLike::default();
        // Overload: 190 qps × 5 = 950 mc over 500 mc. Queueing inflates the
        // p95/p50 ratio → FIRM adds instances.
        drive(&mut c, &mut firm, 190.0, 120.0);
        assert!(c.live_instances(ServiceId(0)) > 1, "FIRM-like scaled up");
    }

    #[test]
    fn proactive_applies_once_at_time() {
        let mut c = one_service_cluster(CreationModel::instant());
        let mut p = ProactiveOnce::new(SimTime::from_secs(30.0), vec![(ServiceId(0), 7)]);
        drive(&mut c, &mut p, 10.0, 29.0);
        assert_eq!(c.live_instances(ServiceId(0)), 1);
        drive(&mut c, &mut p, 10.0, 10.0);
        assert_eq!(c.live_instances(ServiceId(0)), 7);
    }

    #[test]
    fn hpa_never_scales_below_one_replica() {
        let mut c = one_service_cluster(CreationModel::instant());
        let mut hpa = KubernetesHpa::new(HpaConfig::with_threshold(0.9), 1);
        // Near-zero load for long enough that the stabilization window expires.
        drive(&mut c, &mut hpa, 0.5, 700.0);
        assert_eq!(c.live_instances(ServiceId(0)), 1, "floor at one replica");
    }

    #[test]
    fn firm_like_scales_down_when_calm() {
        let mut c = one_service_cluster(CreationModel::instant());
        c.set_desired(ServiceId(0), 5);
        let mut firm = FirmLike::default();
        // Light load: ratio calm and utilization low → shrink toward 1.
        drive(&mut c, &mut firm, 10.0, 300.0);
        assert!(
            c.live_instances(ServiceId(0)) < 5,
            "FIRM-like releases idle capacity: {}",
            c.live_instances(ServiceId(0))
        );
    }

    #[test]
    fn static_scaler_never_moves() {
        let mut c = one_service_cluster(CreationModel::instant());
        let mut s = StaticScaler;
        drive(&mut c, &mut s, 400.0, 30.0);
        assert_eq!(c.live_instances(ServiceId(0)), 1);
    }
}
