//! The experiment driver: interleaves load generation, simulation, control
//! ticks and observation.

use graf_loadgen::LoadGen;
use graf_sim::time::{SimDuration, SimTime};
use graf_sim::world::Completion;

use crate::autoscaler::Autoscaler;
use crate::cluster::Cluster;

/// Per-segment observation callback: the cluster plus the segment's completions.
pub type SegmentHook<'a> = &'a mut dyn FnMut(&mut Cluster, &[Completion]);

/// Observation callbacks invoked by [`run_experiment`].
#[derive(Default)]
pub struct ExperimentHooks<'a> {
    /// Called after every load segment with the completions of that segment.
    pub on_segment: Option<SegmentHook<'a>>,
    /// Called after every autoscaler tick.
    pub on_control: Option<&'a mut dyn FnMut(&mut Cluster)>,
}

/// Load-segment width. Small enough that closed-loop generators pace
/// accurately against sub-second latencies, large enough to keep driver
/// overhead negligible.
pub const SEGMENT: SimDuration = SimDuration(100_000); // 100 ms

/// Runs the cluster until `until`: generates load per segment, advances the
/// world, feeds completions back to the generator, and ticks the autoscaler
/// at its own interval.
pub fn run_experiment(
    cluster: &mut Cluster,
    loadgen: &mut dyn LoadGen,
    scaler: &mut dyn Autoscaler,
    until: SimTime,
    hooks: &mut ExperimentHooks<'_>,
) {
    let mut next_control = cluster.world().now() + scaler.interval();
    // One completions buffer for the whole run: the per-segment drain swaps
    // it with the world's internal vector instead of allocating.
    let mut completions: Vec<Completion> = Vec::new();
    while cluster.world().now() < until {
        let now = cluster.world().now();
        let seg_end = SimTime((now + SEGMENT).0.min(until.0).min(next_control.0));
        for (t, api) in loadgen.arrivals(now, seg_end) {
            cluster.world_mut().inject(api, t);
        }
        cluster.world_mut().run_until(seg_end);
        cluster.world_mut().drain_completions_into(&mut completions);
        loadgen.on_completions(&completions);
        if let Some(cb) = hooks.on_segment.as_mut() {
            cb(cluster, &completions);
        }
        if seg_end >= next_control {
            scaler.tick(cluster);
            next_control += scaler.interval();
            if let Some(cb) = hooks.on_control.as_mut() {
                cb(cluster);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::StaticScaler;
    use crate::cluster::Deployment;
    use crate::creation::CreationModel;
    use graf_loadgen::OpenLoop;
    use graf_sim::topology::{ApiId, ApiSpec, AppTopology, CallNode, ServiceId, ServiceSpec};
    use graf_sim::world::{SimConfig, World};

    fn cluster() -> Cluster {
        let topo = AppTopology::new(
            "one",
            vec![ServiceSpec::new("s", 2.0, 100).cv(0.0)],
            vec![ApiSpec::new("get", CallNode::new(0))],
        );
        let world = World::new(topo, SimConfig::default(), 31);
        Cluster::new(
            world,
            vec![Deployment::new(ServiceId(0), 1000.0, 1)],
            CreationModel::instant(),
        )
    }

    #[test]
    fn driver_runs_load_through_the_world() {
        let mut c = cluster();
        let mut lg = OpenLoop::new(1).rate(ApiId(0), 100.0);
        let mut scaler = StaticScaler;
        let mut total = 0usize;
        let mut on_segment = |_c: &mut Cluster, comps: &[Completion]| {
            total += comps.len();
        };
        let mut hooks = ExperimentHooks { on_segment: Some(&mut on_segment), on_control: None };
        run_experiment(&mut c, &mut lg, &mut scaler, SimTime::from_secs(10.0), &mut hooks);
        // 100 qps for 10 s ≈ 1000 completions (a handful still in flight).
        assert!((980..=1000).contains(&total), "completed {total}");
        assert_eq!(c.world().now(), SimTime::from_secs(10.0));
    }

    #[test]
    fn control_hook_fires_at_interval() {
        struct CountingScaler(u32);
        impl Autoscaler for CountingScaler {
            fn interval(&self) -> SimDuration {
                SimDuration::from_secs(1.0)
            }
            fn tick(&mut self, _c: &mut Cluster) {
                self.0 += 1;
            }
        }
        let mut c = cluster();
        let mut lg = OpenLoop::new(1).rate(ApiId(0), 1.0);
        let mut scaler = CountingScaler(0);
        let mut hooks = ExperimentHooks::default();
        run_experiment(&mut c, &mut lg, &mut scaler, SimTime::from_secs(10.0), &mut hooks);
        assert_eq!(scaler.0, 10, "one tick per second");
    }
}
