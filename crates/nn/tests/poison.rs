//! NaN/Inf poison checks (debug builds).
//!
//! The invariant under test: a poisoned parameter is caught by the *first*
//! layer whose kernel touches it — the panic names that layer — instead of
//! surfacing pages later as a NaN loss. These tests rely on
//! `debug-assertions`, which are on in the test profile and compiled out in
//! release builds.

use graf_nn::{Matrix, Mlp, Mode};
use graf_sim::rng::DetRng;

fn mlp(widths: &[usize]) -> Mlp {
    let mut rng = DetRng::new(7);
    Mlp::new(widths, 0.0, &mut rng)
}

fn input(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| 0.1 * (r as f64) - 0.05 * (c as f64) + 0.2)
}

#[test]
#[should_panic(expected = "layer 0")]
fn poisoned_first_layer_weight_is_caught_at_layer_zero() {
    let mut net = mlp(&[4, 8, 8, 1]);
    // params_mut() yields weights in layer order, then biases.
    net.params_mut()[0].value.set(0, 0, f64::NAN);
    let x = input(2, 4);
    let _ = net.forward(&x, &mut Mode::Eval);
}

#[test]
#[should_panic(expected = "layer 2")]
fn poisoned_later_layer_names_its_own_layer() {
    let mut net = mlp(&[4, 8, 8, 1]);
    net.params_mut()[2].value.set(0, 0, f64::INFINITY);
    let x = input(2, 4);
    let _ = net.forward(&x, &mut Mode::Eval);
}

#[test]
#[should_panic(expected = "layer 1")]
fn poisoned_bias_is_caught_too() {
    let mut net = mlp(&[4, 8, 8, 1]);
    // Biases follow the three weight tensors in params_mut() order.
    net.params_mut()[3 + 1].value.set(0, 0, f64::NEG_INFINITY);
    let x = input(2, 4);
    let _ = net.forward(&x, &mut Mode::Eval);
}

#[test]
fn clean_forward_does_not_panic() {
    let net = mlp(&[4, 8, 8, 1]);
    let x = input(3, 4);
    let (y, _) = net.forward(&x, &mut Mode::Eval);
    assert!(y.data().iter().all(|v| v.is_finite()));
}

#[test]
#[should_panic(expected = "matmul_into output")]
fn kernel_output_check_catches_poisoned_operand() {
    let a = Matrix::from_fn(2, 2, |_, _| f64::NAN);
    let b = Matrix::from_fn(2, 2, |_, _| 1.0);
    let mut out = Matrix::default();
    a.matmul_into(&b, &mut out);
}
