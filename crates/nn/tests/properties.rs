//! Property-based tests: backprop correctness and loss-function invariants
//! on randomized inputs.

use graf_nn::{AsymmetricHuber, Matrix, Mlp, Mode};
use graf_sim::rng::DetRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Input gradients of a randomly shaped/initialized MLP match central
    /// finite differences.
    #[test]
    fn mlp_input_gradients_match_fd(
        seed in 0u64..5_000,
        hidden in 2usize..24,
        input_dim in 1usize..6,
        rows in 1usize..4,
    ) {
        let mut rng = DetRng::new(seed);
        let mlp = Mlp::new(&[input_dim, hidden, 1], 0.0, &mut rng);
        let mut data_rng = DetRng::new(seed ^ 0xF00);
        let x = Matrix::from_fn(rows, input_dim, |_, _| data_rng.uniform(-1.0, 1.0));

        let (y, trace) = mlp.forward(&x, &mut Mode::Eval);
        let ones = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let mut m = mlp.clone();
        let gx = m.backward(&trace, &ones);

        let eps = 1e-6;
        for r in 0..rows {
            for c in 0..input_dim {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let (yp, _) = mlp.forward(&xp, &mut Mode::Eval);
                let (ym, _) = mlp.forward(&xm, &mut Mode::Eval);
                let num = (yp.data().iter().sum::<f64>() - ym.data().iter().sum::<f64>()) / (2.0 * eps);
                let ana = gx.get(r, c);
                // ReLU kinks can land on the FD stencil; allow a loose bound.
                prop_assert!(
                    (num - ana).abs() < 1e-3 * (1.0 + num.abs()),
                    "({r},{c}): fd {num} vs analytic {ana}"
                );
            }
        }
    }

    /// The asymmetric Hüber loss is non-negative, zero only at zero error,
    /// continuous, and penalizes underestimation more than overestimation of
    /// the same relative magnitude (beyond both thresholds).
    #[test]
    fn asymmetric_huber_invariants(x in -5.0f64..5.0) {
        let h = AsymmetricHuber::default();
        let (l, _) = h.at(x);
        prop_assert!(l >= 0.0);
        if x.abs() > 1e-9 {
            prop_assert!(l > 0.0);
        }
        // Continuity probe.
        let (l2, _) = h.at(x + 1e-9);
        prop_assert!((l - l2).abs() < 1e-6);
        // Asymmetry beyond the thresholds.
        if x > h.theta_r {
            let (over, _) = h.at(-x);
            prop_assert!(l > over, "under {l} > over {over} at |x|={x}");
        }
    }

    /// Loss gradient sign pushes predictions toward labels.
    #[test]
    fn huber_gradient_points_at_label(pred in 1.0f64..500.0, label in 1.0f64..500.0) {
        let h = AsymmetricHuber::default();
        let (_, g) = h.batch(&[pred], &[label]);
        if (pred - label).abs() > 1e-6 {
            prop_assert!(
                (g[0] > 0.0) == (pred > label),
                "gradient {g:?} must point from pred {pred} toward label {label}"
            );
        }
    }

    /// Training mode with dropout never changes output shape and eval mode is
    /// deterministic.
    #[test]
    fn dropout_shape_and_determinism(seed in 0u64..1_000, rows in 1usize..8) {
        let mut rng = DetRng::new(seed);
        let mlp = Mlp::new(&[3, 16, 2], 0.5, &mut rng);
        let x = Matrix::from_fn(rows, 3, |r, c| (r + c) as f64 * 0.1);
        let mut drop_rng = DetRng::new(seed ^ 1);
        let (y_train, _) = mlp.forward(&x, &mut Mode::Train(&mut drop_rng));
        prop_assert_eq!((y_train.rows(), y_train.cols()), (rows, 2));
        let (a, _) = mlp.forward(&x, &mut Mode::Eval);
        let (b, _) = mlp.forward(&x, &mut Mode::Eval);
        prop_assert_eq!(a.data(), b.data());
    }
}
