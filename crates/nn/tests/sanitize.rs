//! Allocation-free steady state, proven by the counting allocator
//! (`--features sanitize`) rather than inferred from workspace statistics.
//!
//! A full MLP training step — forward with dropout, backward, ordered
//! gradient accumulation, Adam update — must perform **zero** heap
//! allocations once its buffers are warm.

#![cfg(feature = "sanitize")]

use graf_nn::mlp::MlpTrace;
use graf_nn::sanitize::{alloc_delta, assert_no_alloc};
use graf_nn::{Adam, Matrix, Mlp, MlpGrads, Mode, Workspace};
use graf_sim::rng::DetRng;

#[test]
fn mlp_train_step_is_allocation_free_in_steady_state() {
    let mut rng = DetRng::new(11);
    let mut mlp = Mlp::new(&[6, 16, 16, 1], 0.1, &mut rng);
    let x = Matrix::from_fn(8, 6, |r, c| 0.07 * (r as f64) - 0.03 * (c as f64) + 0.1);
    let grad_out = Matrix::from_fn(8, 1, |_, _| 1.0);

    let mut trace = MlpTrace::default();
    let mut out = Matrix::default();
    let mut grads = MlpGrads::zeroed_for(&mlp);
    let mut ws = Workspace::new();
    let mut dx = Matrix::default();
    let mut opt = Adam::new(1e-3);

    let mut step = |mlp: &mut Mlp, opt: &mut Adam, rng: &mut DetRng| {
        grads.prepare(mlp);
        mlp.forward_into(&x, &mut Mode::Train(rng), &mut trace, &mut out);
        mlp.backward_with(&trace, &grad_out, &mut grads, &mut ws, &mut dx);
        mlp.accumulate_grads(&grads);
        opt.begin_step();
        mlp.for_each_param_mut(|p| opt.update(p));
    };

    // Warm up: first steps size the trace, grads, and workspace buffers.
    for _ in 0..3 {
        step(&mut mlp, &mut opt, &mut rng);
    }
    assert_no_alloc("mlp train step", || step(&mut mlp, &mut opt, &mut rng));
}

#[test]
fn mlp_eval_forward_is_allocation_free_in_steady_state() {
    let mut rng = DetRng::new(12);
    let mlp = Mlp::new(&[4, 8, 1], 0.0, &mut rng);
    let x = Matrix::from_fn(5, 4, |r, c| 0.1 * (r as f64 + c as f64));
    let mut trace = MlpTrace::default();
    let mut out = Matrix::default();

    mlp.forward_into(&x, &mut Mode::Eval, &mut trace, &mut out);
    let y0 = out.get(0, 0);
    assert_no_alloc("mlp eval forward", || {
        mlp.forward_into(&x, &mut Mode::Eval, &mut trace, &mut out);
    });
    assert_eq!(out.get(0, 0), y0, "steady-state reuse must not change results");
}

#[test]
fn first_cold_step_does_allocate() {
    // Sanity check on the harness itself: the cold path is *supposed* to
    // allocate, so a zero reading there would mean the counter is broken.
    let mut rng = DetRng::new(13);
    let mlp = Mlp::new(&[4, 8, 1], 0.0, &mut rng);
    let x = Matrix::from_fn(5, 4, |r, c| 0.1 * (r as f64 + c as f64));
    let ((), n) = alloc_delta(|| {
        let mut trace = MlpTrace::default();
        let mut out = Matrix::default();
        mlp.forward_into(&x, &mut Mode::Eval, &mut trace, &mut out);
    });
    assert!(n > 0, "cold forward must allocate its buffers, counted {n}");
}
