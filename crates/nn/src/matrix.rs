//! Dense row-major matrices.
//!
//! Besides the allocating convenience ops, this module provides the
//! allocation-free `*_into` / `*_acc` kernels the training and solver hot
//! loops run on, all built on one dispatching product core
//! (`accumulate_matmul`):
//!
//! * **Wide outputs** (≥ `SKIP_MIN_WIDTH` columns, e.g. the 120-wide
//!   readout layers): each `A` row is compacted branchlessly into its
//!   nonzero (index, value) pairs per `KB`-sized k-block — ReLU + dropout
//!   leave most activations zero — and the compressed row is multiplied
//!   against an L1-resident slab of `B` into 32-column register tiles,
//!   with every product routed through `f64::mul_add` (FMA).
//! * **Narrow outputs** (the 20/22-wide φ/γ message nets): a const-generic
//!   two-row register-tile kernel (`narrow_tile_matmul`) that keeps both
//!   accumulator rows in vector registers across the whole k loop.
//! * Everything else falls back to blocked dense `mul_add` loops.
//!
//! On top of the core sit [`Matrix::matmul_into`] / [`Matrix::matmul_acc`],
//! the transposed variants [`Matrix::matmul_transb_into`] (`A·Bᵀ`,
//! contiguous dot products, no transpose materialised) and
//! [`Matrix::matmul_transa_acc`] (`out += Aᵀ·B`, the weight-gradient
//! shape), and the fused [`Matrix::affine_relu_into`] layer kernel. All of
//! them reshape their output in place; full-overwrite ops use
//! [`Matrix::reshape_for_overwrite`] to skip the pre-zeroing memset
//! entirely when the element count is unchanged.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix (no allocation) — the natural seed for the
    /// reshape-in-place kernels.
    fn default() -> Self {
        Self { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a generator over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element capacity of the backing allocation.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Raw data slice (row-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable data slice (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes in place to `rows × cols` and zeroes every entry, reusing
    /// the backing allocation whenever its capacity allows.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes in place to `rows × cols` without touching the contents when
    /// the element count already matches (the steady state for workspace
    /// buffers). The values are unspecified — callers must overwrite every
    /// element before reading any.
    pub fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.rows = rows;
        self.cols = cols;
        if self.data.len() != len {
            self.data.clear();
            self.data.resize(len, 0.0);
        }
    }

    /// Copies `src` into `self`, reshaping in place (allocation-free once
    /// capacity suffices).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self × rhs` (allocating convenience wrapper over
    /// [`Matrix::matmul_into`]).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `out = self × rhs`, reshaping `out` in place.
    ///
    /// ikj kernel with a contiguous inner axpy over `rhs` rows; zero entries
    /// of `self` skip their `rhs` row entirely (see `accumulate_matmul`).
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        out.reshape_for_overwrite(self.rows, rhs.cols);
        accumulate_matmul(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
            true,
        );
        out.debug_assert_finite("matmul_into output");
    }

    /// `out += self × rhs`, accumulating into an existing `rows × rhs.cols`
    /// matrix (same kernel as [`Matrix::matmul_into`], no reshape).
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, rhs.cols), "matmul_acc output shape");
        accumulate_matmul(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
            false,
        );
    }

    /// `out = self × rhsᵀ`, reshaping `out` in place.
    ///
    /// Both operands are walked row-contiguously (each output element is a
    /// dot product of two rows), so no transpose is ever materialised —
    /// this is the backward-pass `grad × Wᵀ` kernel.
    pub fn matmul_transb_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "matmul_transb shape mismatch");
        out.reshape_for_overwrite(self.rows, rhs.rows);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let orow = &mut out.data[r * rhs.rows..(r + 1) * rhs.rows];
            for (c, v) in orow.iter_mut().enumerate() {
                let brow = &rhs.data[c * rhs.cols..(c + 1) * rhs.cols];
                *v = dot(arow, brow);
            }
        }
        out.debug_assert_finite("matmul_transb_into output");
    }

    /// `out += selfᵀ × rhs`, accumulating into `out` (which must already be
    /// `self.cols × rhs.cols`).
    ///
    /// Rank-1 update per shared row — the weight-gradient kernel
    /// (`inputᵀ × grad`) without materialising the transpose. On wide
    /// updates, zero input activations (common after ReLU) skip their update
    /// row entirely; narrow updates stay branch-free (see
    /// `SKIP_MIN_WIDTH`).
    pub fn matmul_transa_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "matmul_transa shape mismatch");
        assert_eq!((out.rows, out.cols), (self.cols, rhs.cols), "matmul_transa output shape");
        let n = rhs.cols;
        let skip = n >= SKIP_MIN_WIDTH;
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &rhs.data[k * n..(k + 1) * n];
            for (r, &av) in arow.iter().enumerate() {
                if skip && av == 0.0 {
                    continue;
                }
                let orow = &mut out.data[r * n..(r + 1) * n];
                for (v, &bv) in orow.iter_mut().zip(brow) {
                    *v = av.mul_add(bv, *v);
                }
            }
        }
    }

    /// Fused affine layer: `out = self × w + bias` with the `1 × n` bias
    /// broadcast over rows. Reshapes `out` in place.
    pub fn affine_into(&self, w: &Matrix, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, w.rows, "affine shape mismatch");
        assert_eq!((bias.rows, bias.cols), (1, w.cols), "affine bias shape");
        out.reshape_for_overwrite(self.rows, w.cols);
        for r in 0..self.rows {
            out.data[r * w.cols..(r + 1) * w.cols].copy_from_slice(&bias.data);
        }
        // Accumulate the matmul on top of the bias-initialised output.
        accumulate_matmul(&self.data, self.rows, self.cols, &w.data, w.cols, &mut out.data, false);
        out.debug_assert_finite("affine_into output");
    }

    /// Fused affine + ReLU: `out = max(self × w + bias, 0)`.
    pub fn affine_relu_into(&self, w: &Matrix, bias: &Matrix, out: &mut Matrix) {
        self.affine_into(w, bias, out);
        for v in &mut out.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::default();
        self.transpose_into(&mut out);
        out
    }

    /// Transpose into an existing matrix (reshaped in place).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape_for_overwrite(self.cols, self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise sum with another matrix of the same shape.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }

    /// In-place element-wise accumulate.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise Hadamard product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// In-place Hadamard product.
    pub fn hadamard_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "hadamard shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds a `1 × cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast expects a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, &b) in out.data[r * out.cols..(r + 1) * out.cols].iter_mut().zip(&row.data) {
                *v += b;
            }
        }
        out
    }

    /// Sums rows into a `1 × cols` vector (gradient of row broadcast).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.sum_rows_acc(&mut out);
        out
    }

    /// Accumulates the per-column row sums into an existing `1 × cols`
    /// vector (the allocation-free bias-gradient kernel).
    pub fn sum_rows_acc(&self, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (1, self.cols), "sum_rows output shape");
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &x) in out.data.iter_mut().zip(row) {
                *v += x;
            }
        }
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        let mut out = Matrix::default();
        Matrix::hcat_into(parts, &mut out);
        out
    }

    /// Horizontal concatenation into an existing matrix (reshaped in place).
    pub fn hcat_into(parts: &[&Matrix], out: &mut Matrix) {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hcat row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        out.reshape_for_overwrite(rows, cols);
        for r in 0..rows {
            let orow = &mut out.data[r * cols..(r + 1) * cols];
            let mut off = 0;
            for p in parts {
                orow[off..off + p.cols].copy_from_slice(&p.data[r * p.cols..(r + 1) * p.cols]);
                off += p.cols;
            }
        }
    }

    /// Extracts columns `[from, to)`.
    pub fn slice_cols(&self, from: usize, to: usize) -> Matrix {
        assert!(from <= to && to <= self.cols, "column slice out of range");
        let w = to - from;
        let mut out = Matrix::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + from..r * self.cols + to]);
        }
        out
    }

    /// Extracts rows `[from, to)` (one contiguous copy).
    pub fn slice_rows(&self, from: usize, to: usize) -> Matrix {
        assert!(from <= to && to <= self.rows, "row slice out of range");
        Matrix {
            rows: to - from,
            cols: self.cols,
            data: self.data[from * self.cols..to * self.cols].to_vec(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Debug-build poison check: panics if any entry is NaN or ±∞.
    ///
    /// Wired into the compute kernels so a poisoned operand is caught at the
    /// first kernel that touches it, not pages later at the loss. Compiles to
    /// nothing in release builds; the message is formatted only on failure,
    /// so the check never allocates on the hot path.
    #[inline]
    pub fn debug_assert_finite(&self, context: &str) {
        if cfg!(debug_assertions) {
            for (i, &v) in self.data.iter().enumerate() {
                assert!(
                    v.is_finite(),
                    "{context}: non-finite value {v} at ({}, {})",
                    i / self.cols.max(1),
                    i % self.cols.max(1)
                );
            }
        }
    }

    /// Sets all entries to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

/// Row dot product with four independent accumulators (lets the compiler
/// vectorise the reduction without reassociating within a lane).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        acc[0] = xa[0].mul_add(xb[0], acc[0]);
        acc[1] = xa[1].mul_add(xb[1], acc[1]);
        acc[2] = xa[2].mul_add(xb[2], acc[2]);
        acc[3] = xa[3].mul_add(xb[3], acc[3]);
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (xa, xb) in ra.iter().zip(rb) {
        s = xa.mul_add(*xb, s);
    }
    s
}

/// Row width from which zero-skipping beats staying branch-free: a skipped
/// pass saves `n` FMAs but costs a data-dependent branch that mispredicts on
/// random ReLU/dropout sparsity, so narrow rows lose more to stalls than
/// they save in arithmetic.
const SKIP_MIN_WIDTH: usize = 48;

/// `out += a (m×k) × b (k×n)` (or `out = a × b` when `init` is true, with
/// `out`'s prior contents ignored) over raw row-major slices.
///
/// ikj order: the inner loop is a contiguous axpy over a `b` row
/// (element-wise, so the compiler vectorises it without reassociating
/// anything). Wide outputs take the k-blocked, nonzero-compacting path;
/// the common narrow widths get monomorphised register-tile kernels; other
/// narrow outputs take a branch-free 4-row-blocked fallback where each
/// loaded `b` row feeds four output rows.
fn accumulate_matmul(
    a: &[f64],
    m: usize,
    kd: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    init: bool,
) {
    if n >= SKIP_MIN_WIDTH {
        // Wide path. Three tricks:
        // * k is blocked so the active `b` slab (`KB × n` ≤ ~23 KB) stays
        //   L1-resident across every `a` row — unblocked, each row re-streams
        //   the whole `b` matrix (~113 KB for the readout weights) from L2,
        //   and that bandwidth, not FMA throughput, bounds the kernel.
        // * Each `a` row's nonzeros in the block are compacted branchlessly
        //   into (index, value) arrays — post-ReLU/dropout activations are
        //   mostly zeros, and a compressed loop drops that work without the
        //   data-dependent branch a skip would mispredict on.
        // * A fixed-width accumulator tile lives in SIMD registers across
        //   the block's k loop, so each output element is touched once per
        //   block instead of once per nonzero k.
        const TILE: usize = 32;
        const KB: usize = 48;
        let mut idx = [0u32; KB];
        let mut vals = [0.0f64; KB];
        let mut k0 = 0;
        while k0 < kd {
            let kb = KB.min(kd - k0);
            // On the first block an `init` call starts its accumulators at
            // zero instead of loading `out`, so callers need not pre-zero.
            let fresh = init && k0 == 0;
            for r in 0..m {
                let arow = &a[r * kd + k0..r * kd + k0 + kb];
                let mut cnt = 0usize;
                for (k, &s) in arow.iter().enumerate() {
                    idx[cnt] = (k0 + k) as u32;
                    vals[cnt] = s;
                    cnt += (s != 0.0) as usize;
                }
                if cnt == 0 && !fresh {
                    continue;
                }
                let mut c0 = 0;
                while c0 + TILE <= n {
                    let orow = &mut out[r * n + c0..r * n + c0 + TILE];
                    let mut acc = [0.0f64; TILE];
                    if !fresh {
                        acc.copy_from_slice(orow);
                    }
                    for (&k, &s) in idx[..cnt].iter().zip(&vals[..cnt]) {
                        let brow = &b[k as usize * n + c0..k as usize * n + c0 + TILE];
                        for (av, &bv) in acc.iter_mut().zip(brow) {
                            *av = s.mul_add(bv, *av);
                        }
                    }
                    orow.copy_from_slice(&acc);
                    c0 += TILE;
                }
                if c0 < n {
                    let w = n - c0;
                    let orow = &mut out[r * n + c0..r * n + c0 + w];
                    let mut acc = [0.0f64; TILE];
                    if !fresh {
                        acc[..w].copy_from_slice(orow);
                    }
                    for (&k, &s) in idx[..cnt].iter().zip(&vals[..cnt]) {
                        let brow = &b[k as usize * n + c0..k as usize * n + c0 + w];
                        for (av, &bv) in acc[..w].iter_mut().zip(brow) {
                            *av = s.mul_add(bv, *av);
                        }
                    }
                    orow.copy_from_slice(&acc[..w]);
                }
            }
            k0 += kb;
        }
        return;
    }
    // Monomorphise the common narrow widths (hidden/message dims of the
    // paper's φ/γ nets) so the accumulator tile below has a compile-time
    // size and lives entirely in SIMD registers.
    match n {
        20 => return narrow_tile_matmul::<20>(a, m, kd, b, out, init),
        22 => return narrow_tile_matmul::<22>(a, m, kd, b, out, init),
        _ => {}
    }
    if init {
        out.fill(0.0);
    }
    let mut r = 0;
    while r + 4 <= m {
        let (o01, o23) = out[r * n..(r + 4) * n].split_at_mut(2 * n);
        let (o0, o1) = o01.split_at_mut(n);
        let (o2, o3) = o23.split_at_mut(n);
        let a0 = &a[r * kd..(r + 1) * kd];
        let a1 = &a[(r + 1) * kd..(r + 2) * kd];
        let a2 = &a[(r + 2) * kd..(r + 3) * kd];
        let a3 = &a[(r + 3) * kd..(r + 4) * kd];
        for k in 0..kd {
            let (s0, s1, s2, s3) = (a0[k], a1[k], a2[k], a3[k]);
            let brow = &b[k * n..(k + 1) * n];
            let it = o0
                .iter_mut()
                .zip(o1.iter_mut())
                .zip(o2.iter_mut().zip(o3.iter_mut()))
                .zip(brow.iter());
            for (((v0, v1), (v2, v3)), &bv) in it {
                *v0 = s0.mul_add(bv, *v0);
                *v1 = s1.mul_add(bv, *v1);
                *v2 = s2.mul_add(bv, *v2);
                *v3 = s3.mul_add(bv, *v3);
            }
        }
        r += 4;
    }
    while r < m {
        let orow = &mut out[r * n..(r + 1) * n];
        let arow = &a[r * kd..(r + 1) * kd];
        for (k, &s) in arow.iter().enumerate() {
            let brow = &b[k * n..(k + 1) * n];
            for (v, &bv) in orow.iter_mut().zip(brow) {
                *v = s.mul_add(bv, *v);
            }
        }
        r += 1;
    }
}

/// Narrow-output matmul with a compile-time row width: four output rows of
/// `N` accumulators each stay in registers across the whole `k` loop, so the
/// inner body is pure broadcast-FMA with no output loads or stores.
fn narrow_tile_matmul<const N: usize>(
    a: &[f64],
    m: usize,
    kd: usize,
    b: &[f64],
    out: &mut [f64],
    init: bool,
) {
    let mut r = 0;
    while r + 2 <= m {
        let arow0 = &a[r * kd..(r + 1) * kd];
        let arow1 = &a[(r + 1) * kd..(r + 2) * kd];
        let mut acc0 = [0.0f64; N];
        let mut acc1 = [0.0f64; N];
        for ((&s0, &s1), brow) in arow0.iter().zip(arow1).zip(b.chunks_exact(N)) {
            for i in 0..N {
                acc0[i] = s0.mul_add(brow[i], acc0[i]);
                acc1[i] = s1.mul_add(brow[i], acc1[i]);
            }
        }
        let (o0, o1) = out[r * N..(r + 2) * N].split_at_mut(N);
        if init {
            o0.copy_from_slice(&acc0);
            o1.copy_from_slice(&acc1);
        } else {
            for (o, &av) in o0.iter_mut().zip(&acc0) {
                *o += av;
            }
            for (o, &av) in o1.iter_mut().zip(&acc1) {
                *o += av;
            }
        }
        r += 2;
    }
    while r < m {
        let arow = &a[r * kd..(r + 1) * kd];
        let mut acc = [0.0f64; N];
        for (&s, brow) in arow.iter().zip(b.chunks_exact(N)) {
            for i in 0..N {
                acc[i] = s.mul_add(brow[i], acc[i]);
            }
        }
        let orow = &mut out[r * N..(r + 1) * N];
        if init {
            orow.copy_from_slice(&acc);
        } else {
            for (o, &av) in orow.iter_mut().zip(&acc) {
                *o += av;
            }
        }
        r += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn blocked_matmul_matches_reference_on_all_row_remainders() {
        // Exercise the 4-row block and every remainder path (m % 4 ∈ 0..4).
        for m in 1..=9 {
            let a = Matrix::from_fn(m, 5, |r, c| (r as f64 + 1.0) * 0.5 - c as f64 * 0.25);
            let b = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f64 * 0.125 - 1.0);
            let fast = a.matmul(&b);
            let slow = Matrix::from_fn(m, 7, |r, c| {
                (0..5).map(|k| a.get(r, k) * b.get(k, c)).sum::<f64>()
            });
            for i in 0..m * 7 {
                assert!((fast.data()[i] - slow.data()[i]).abs() < 1e-12, "m={m} i={i}");
            }
        }
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 6, |r, c| (r * 6 + c) as f64 * 0.3 - 2.0);
        let b = Matrix::from_fn(5, 6, |r, c| 1.0 / (1.0 + (r + c) as f64));
        let mut fast = Matrix::default();
        a.matmul_transb_into(&b, &mut fast);
        let slow = a.matmul(&b.transpose());
        assert_eq!((fast.rows(), fast.cols()), (3, 5));
        for i in 0..15 {
            assert!((fast.data()[i] - slow.data()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_transa_acc_matches_explicit_transpose_and_accumulates() {
        let a = Matrix::from_fn(4, 3, |r, c| if (r + c) % 3 == 0 { 0.0 } else { (r + c) as f64 });
        let b = Matrix::from_fn(4, 5, |r, c| (r as f64 - c as f64) * 0.5);
        let mut out = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64); // pre-seeded
        a.matmul_transa_acc(&b, &mut out);
        let expect =
            Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64).add(&a.transpose().matmul(&b));
        for i in 0..15 {
            assert!((out.data()[i] - expect.data()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn affine_kernels_match_composed_ops() {
        let x = Matrix::from_fn(6, 3, |r, c| (r as f64 - 2.0) * (c as f64 + 0.5));
        let w = Matrix::from_fn(3, 4, |r, c| 0.25 * (r as f64 + 1.0) - 0.4 * c as f64);
        let bias = Matrix::row_vector(vec![0.1, -0.2, 0.3, -5.0]);
        let mut aff = Matrix::default();
        x.affine_into(&w, &bias, &mut aff);
        let ref_aff = x.matmul(&w).add_row_broadcast(&bias);
        for i in 0..24 {
            assert!((aff.data()[i] - ref_aff.data()[i]).abs() < 1e-12);
        }
        let mut relu = Matrix::default();
        x.affine_relu_into(&w, &bias, &mut relu);
        for i in 0..24 {
            assert_eq!(relu.data()[i], aff.data()[i].max(0.0), "relu clamps the affine output");
        }
    }

    #[test]
    fn reshape_zeroed_reuses_capacity() {
        let mut m = Matrix::zeros(10, 10);
        let cap = m.capacity();
        m.reshape_zeroed(5, 7);
        assert_eq!((m.rows(), m.cols()), (5, 7));
        assert!(m.data().iter().all(|&v| v == 0.0));
        assert_eq!(m.capacity(), cap, "shrinking keeps the allocation");
    }

    #[test]
    fn copy_from_matches_source() {
        let src = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let mut dst = Matrix::zeros(50, 2);
        dst.copy_from(&src);
        assert_eq!((dst.rows(), dst.cols()), (3, 4));
        assert_eq!(dst.data(), src.data());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(2, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose().data(), a.data());
        assert_eq!(a.transpose().get(3, 1), a.get(1, 3));
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let b = Matrix::row_vector(vec![10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.get(2, 1), 3.0 + 20.0);
        let g = Matrix::from_fn(3, 2, |_, _| 1.0);
        assert_eq!(g.sum_rows().data(), &[3.0, 3.0]);
    }

    #[test]
    fn hcat_and_slice_cols_invert() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(2, 3, |r, c| 100.0 + (r * 3 + c) as f64);
        let cat = Matrix::hcat(&[&a, &b]);
        assert_eq!(cat.cols(), 5);
        assert_eq!(cat.slice_cols(0, 2).data(), a.data());
        assert_eq!(cat.slice_cols(2, 5).data(), b.data());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![2., 2., 2.]);
        assert_eq!(a.add(&b).data(), &[3., 0., 5.]);
        assert_eq!(a.hadamard(&b).data(), &[2., -4., 6.]);
        assert_eq!(a.scale(-1.0).data(), &[-1., 2., -3.]);
        assert_eq!(a.map(f64::abs).data(), &[1., 2., 3.]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[3., 0., 5.]);
        let mut h = a.clone();
        h.hadamard_assign(&b);
        assert_eq!(h.data(), &[2., -4., 6.]);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_associativity_numerically() {
        let a = Matrix::from_fn(2, 3, |r, c| (r as f64 + 1.0) * (c as f64 - 1.0));
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64 * 0.5 - 1.0);
        let c = Matrix::from_fn(4, 2, |r, c| 0.25 * (r + c) as f64);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..left.rows() * left.cols() {
            assert!((left.data()[i] - right.data()[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_matmul_identity() {
        // (AB)^T = B^T A^T
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f64);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_eq!(lhs.data(), rhs.data());
    }

    #[test]
    fn slice_rows_extracts() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.data(), &[2., 3., 4., 5.]);
    }
}
