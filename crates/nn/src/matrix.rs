//! Dense row-major matrices.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a generator over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        let cols = data.len();
        Self { rows: 1, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable data slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self × rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise sum with another matrix of the same shape.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }

    /// In-place element-wise accumulate.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise Hadamard product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds a `1 × cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast expects a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self.get(r, c) + row.get(0, c))
    }

    /// Sums rows into a `1 × cols` vector (gradient of row broadcast).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hcat row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                for c in 0..p.cols {
                    out.data[r * cols + off + c] = p.get(r, c);
                }
                off += p.cols;
            }
        }
        out
    }

    /// Extracts columns `[from, to)`.
    pub fn slice_cols(&self, from: usize, to: usize) -> Matrix {
        assert!(from <= to && to <= self.cols, "column slice out of range");
        Matrix::from_fn(self.rows, to - from, |r, c| self.get(r, from + c))
    }

    /// Extracts rows `[from, to)`.
    pub fn slice_rows(&self, from: usize, to: usize) -> Matrix {
        assert!(from <= to && to <= self.rows, "row slice out of range");
        Matrix::from_fn(to - from, self.cols, |r, c| self.get(from + r, c))
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sets all entries to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(2, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose().data(), a.data());
        assert_eq!(a.transpose().get(3, 1), a.get(1, 3));
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let b = Matrix::row_vector(vec![10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.get(2, 1), 3.0 + 20.0);
        let g = Matrix::from_fn(3, 2, |_, _| 1.0);
        assert_eq!(g.sum_rows().data(), &[3.0, 3.0]);
    }

    #[test]
    fn hcat_and_slice_cols_invert() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(2, 3, |r, c| 100.0 + (r * 3 + c) as f64);
        let cat = Matrix::hcat(&[&a, &b]);
        assert_eq!(cat.cols(), 5);
        assert_eq!(cat.slice_cols(0, 2).data(), a.data());
        assert_eq!(cat.slice_cols(2, 5).data(), b.data());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![2., 2., 2.]);
        assert_eq!(a.add(&b).data(), &[3., 0., 5.]);
        assert_eq!(a.hadamard(&b).data(), &[2., -4., 6.]);
        assert_eq!(a.scale(-1.0).data(), &[-1., 2., -3.]);
        assert_eq!(a.map(f64::abs).data(), &[1., 2., 3.]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[3., 0., 5.]);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_associativity_numerically() {
        let a = Matrix::from_fn(2, 3, |r, c| (r as f64 + 1.0) * (c as f64 - 1.0));
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64 * 0.5 - 1.0);
        let c = Matrix::from_fn(4, 2, |r, c| 0.25 * (r + c) as f64);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..left.rows() * left.cols() {
            assert!((left.data()[i] - right.data()[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_matmul_identity() {
        // (AB)^T = B^T A^T
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f64);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_eq!(lhs.data(), rhs.data());
    }

    #[test]
    fn slice_rows_extracts() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.data(), &[2., 3., 4., 5.]);
    }
}
