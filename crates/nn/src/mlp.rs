//! Multi-layer perceptrons with trace-based backpropagation.
//!
//! An [`Mlp`] owns its parameters but keeps no per-call activation state:
//! `forward` returns an [`MlpTrace`] capturing everything `backward` needs.
//! This lets the GNN apply the same network to every node of a graph (message
//! passing shares φ/γ across nodes) and back-propagate each application,
//! accumulating parameter gradients.
//!
//! The hot-loop entry points are the allocation-free pair
//! [`Mlp::forward_into`] / [`Mlp::backward_with`]: the trace stores only the
//! per-layer *inputs* (layer `i`'s post-activation output doubles as layer
//! `i+1`'s input, and the ReLU gate is recovered from the sign of that
//! output) plus the dropout masks, every buffer is reshaped in place, and
//! gradients land in an external [`MlpGrads`] sink so the network itself can
//! be shared immutably across training workers.

use graf_sim::rng::DetRng;

use crate::matrix::Matrix;
use crate::param::Param;
use crate::workspace::Workspace;

/// Forward-pass mode.
pub enum Mode<'a> {
    /// Training: dropout active, masks drawn from the RNG.
    Train(&'a mut DetRng),
    /// Inference: dropout disabled (inverted-dropout needs no rescale).
    Eval,
}

/// Captured forward state of one MLP application.
///
/// `inputs[i]` is the input to layer `i`; for `i ≥ 1` it is also layer
/// `i-1`'s post-activation (post-dropout) output, which is all `backward`
/// needs: the ReLU gate is `inputs[i+1] > 0` (dropout-zeroed positions get a
/// zero gate, but their gradient is already zeroed by the mask). No
/// pre-activation copy is stored.
#[derive(Clone, Debug, Default)]
pub struct MlpTrace {
    inputs: Vec<Matrix>,
    dropout: Vec<Option<Matrix>>,
}

/// External gradient sink for [`Mlp::backward_with`].
///
/// Keeping gradients out of the network lets several workers back-propagate
/// through one shared `&Mlp` concurrently, each into its own `MlpGrads`,
/// with a deterministic ordered reduction afterwards.
#[derive(Clone, Debug, Default)]
pub struct MlpGrads {
    weights: Vec<Matrix>,
    biases: Vec<Matrix>,
}

impl MlpGrads {
    /// Gradient buffers shaped for `mlp`, zero-filled.
    pub fn zeroed_for(mlp: &Mlp) -> Self {
        let mut g = Self::default();
        g.prepare(mlp);
        g
    }

    /// Reshapes the buffers to match `mlp`'s parameters (reusing
    /// allocations) and zeroes every entry.
    pub fn prepare(&mut self, mlp: &Mlp) {
        self.weights.resize_with(mlp.weights.len(), Matrix::default);
        self.biases.resize_with(mlp.biases.len(), Matrix::default);
        for (g, p) in self.weights.iter_mut().zip(&mlp.weights) {
            g.reshape_zeroed(p.value.rows(), p.value.cols());
        }
        for (g, p) in self.biases.iter_mut().zip(&mlp.biases) {
            g.reshape_zeroed(1, p.value.cols());
        }
    }
}

/// A fully connected network: affine layers with ReLU on all but the last,
/// and optional dropout after each ReLU (the paper applies dropout "to every
/// layer except for the last", §4).
#[derive(Clone, Debug)]
pub struct Mlp {
    weights: Vec<Param>,
    biases: Vec<Param>,
    dropout_p: f64,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `[4, 20, 20, 1]`.
    /// Weights use He initialization from `rng`.
    pub fn new(widths: &[usize], dropout_p: f64, rng: &mut DetRng) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        assert!((0.0..1.0).contains(&dropout_p), "dropout in [0,1)");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in widths.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let std = (2.0 / fan_in as f64).sqrt();
            let weight = Matrix::from_fn(fan_in, fan_out, |_, _| rng.std_normal() * std);
            weights.push(Param::new(weight));
            biases.push(Param::new(Matrix::zeros(1, fan_out)));
        }
        Self { weights, biases, dropout_p }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weights[0].value.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weights.last().expect("non-empty").value.cols()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Param::len).sum::<usize>()
            + self.biases.iter().map(Param::len).sum::<usize>()
    }

    /// Applies the network to a batch `x` (`B × input_dim`), writing the
    /// output (`B × output_dim`) into `out` and the forward state into
    /// `trace`, both reshaped in place. Steady-state calls with a reused
    /// trace/output do not allocate.
    pub fn forward_into(
        &self,
        x: &Matrix,
        mode: &mut Mode<'_>,
        trace: &mut MlpTrace,
        out: &mut Matrix,
    ) {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let l = self.weights.len();
        let last = l - 1;
        trace.inputs.resize_with(l, Matrix::default);
        trace.dropout.resize_with(l, || None);
        trace.inputs[0].copy_from(x);
        for i in 0..last {
            self.debug_check_layer(i);
            let (head, tail) = trace.inputs.split_at_mut(i + 1);
            let (src, dst) = (&head[i], &mut tail[0]);
            src.affine_relu_into(&self.weights[i].value, &self.biases[i].value, dst);
            let mut masked = false;
            if self.dropout_p > 0.0 {
                if let Mode::Train(rng) = mode {
                    let keep = 1.0 - self.dropout_p;
                    let inv_keep = 1.0 / keep;
                    let mut mask = trace.dropout[i].take().unwrap_or_default();
                    mask.reshape_for_overwrite(dst.rows(), dst.cols());
                    // Generate and apply the mask in one fused pass. The keep
                    // test compares the draw's 53 significand bits against an
                    // integer threshold — decision-for-decision identical to
                    // `rng.unit() < keep` (pinned by a DetRng test) while
                    // skipping unit()'s int→float conversion per activation.
                    let thresh = (keep * (1u64 << 53) as f64).ceil() as u64;
                    for (mv, dv) in mask.data_mut().iter_mut().zip(dst.data_mut()) {
                        let k = if rng.bits64() >> 11 < thresh { inv_keep } else { 0.0 };
                        *mv = k;
                        *dv *= k;
                    }
                    trace.dropout[i] = Some(mask);
                    masked = true;
                }
            }
            if !masked {
                trace.dropout[i] = None;
            }
        }
        self.debug_check_layer(last);
        trace.inputs[last].affine_into(&self.weights[last].value, &self.biases[last].value, out);
    }

    /// Applies the network to a batch `x` (`B × input_dim`).
    ///
    /// Returns the output (`B × output_dim`) and the trace for `backward`.
    /// Allocating convenience wrapper over [`Mlp::forward_into`].
    pub fn forward(&self, x: &Matrix, mode: &mut Mode<'_>) -> (Matrix, MlpTrace) {
        let mut trace = MlpTrace::default();
        let mut out = Matrix::default();
        self.forward_into(x, mode, &mut trace, &mut out);
        (out, trace)
    }

    /// Writes each layer's transposed weight matrix into `out` (reusing
    /// allocations). Feed the result to [`Mlp::backward_with_wt`] to share
    /// one set of transposes across every backward pass between two
    /// parameter updates instead of re-materialising them per call.
    pub fn transpose_weights_into(&self, out: &mut Vec<Matrix>) {
        out.resize_with(self.weights.len(), Matrix::default);
        for (t, p) in out.iter_mut().zip(&self.weights) {
            p.value.transpose_into(t);
        }
    }

    /// Back-propagates `grad_out` (`B × output_dim`) through the traced
    /// application without touching the network: parameter gradients
    /// *accumulate* into `grads` (shape them with [`MlpGrads::prepare`]),
    /// scratch comes from `ws`, and the input-batch gradient lands in `dx`.
    /// Steady-state calls with a warm workspace do not allocate.
    pub fn backward_with(
        &self,
        trace: &MlpTrace,
        grad_out: &Matrix,
        grads: &mut MlpGrads,
        ws: &mut Workspace,
        dx: &mut Matrix,
    ) {
        self.backward_impl(trace, grad_out, grads, ws, dx, None);
    }

    /// [`Mlp::backward_with`] with caller-provided weight transposes (from
    /// [`Mlp::transpose_weights_into`]), for hot loops that run many backward
    /// passes against frozen parameters.
    pub fn backward_with_wt(
        &self,
        trace: &MlpTrace,
        grad_out: &Matrix,
        grads: &mut MlpGrads,
        ws: &mut Workspace,
        dx: &mut Matrix,
        wts: &[Matrix],
    ) {
        assert_eq!(wts.len(), self.weights.len(), "transpose cache/network mismatch");
        self.backward_impl(trace, grad_out, grads, ws, dx, Some(wts));
    }

    fn backward_impl(
        &self,
        trace: &MlpTrace,
        grad_out: &Matrix,
        grads: &mut MlpGrads,
        ws: &mut Workspace,
        dx: &mut Matrix,
        wts: Option<&[Matrix]>,
    ) {
        let l = self.weights.len();
        assert_eq!(trace.inputs.len(), l, "trace/network mismatch");
        assert_eq!(grads.weights.len(), l, "grads/network mismatch");
        let last = l - 1;
        let mut g = ws.take(grad_out.rows(), grad_out.cols());
        g.copy_from(grad_out);
        for i in (0..l).rev() {
            if i < last {
                // ReLU gate from the sign of the stored post-activation,
                // fused with the dropout mask in a single pass over `g`.
                if let Some(mask) = &trace.dropout[i] {
                    let it = g
                        .data_mut()
                        .iter_mut()
                        .zip(trace.inputs[i + 1].data().iter().zip(mask.data()));
                    for (gv, (&av, &mv)) in it {
                        *gv = if av <= 0.0 { 0.0 } else { *gv * mv };
                    }
                } else {
                    for (gv, &av) in g.data_mut().iter_mut().zip(trace.inputs[i + 1].data()) {
                        if av <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                }
            }
            // dW += xᵀ × g. Materialising the (small) transposes routes both
            // gradient products through the tiled, sparsity-skipping matmul
            // kernel instead of rank-1 sweeps over the whole output.
            let x = &trace.inputs[i];
            let mut xt = ws.take(x.cols(), x.rows());
            x.transpose_into(&mut xt);
            xt.matmul_acc(&g, &mut grads.weights[i]);
            ws.give(xt);
            g.sum_rows_acc(&mut grads.biases[i]);
            // dx = g × Wᵀ — the gated `g` is far sparser than the weights.
            let w = &self.weights[i].value;
            let mut wt_scratch: Option<Matrix> = None;
            let wt: &Matrix = match wts {
                Some(ts) => &ts[i],
                None => {
                    let mut t = ws.take(w.cols(), w.rows());
                    w.transpose_into(&mut t);
                    &*wt_scratch.insert(t)
                }
            };
            if i > 0 {
                let mut gp = ws.take(g.rows(), w.rows());
                g.matmul_into(wt, &mut gp);
                std::mem::swap(&mut g, &mut gp);
                ws.give(gp);
            } else {
                g.matmul_into(wt, dx);
            }
            if let Some(t) = wt_scratch {
                ws.give(t);
            }
        }
        ws.give(g);
    }

    /// Back-propagates `grad_out` through the traced application,
    /// accumulating parameter gradients into the params and returning the
    /// input-batch gradient (allocating wrapper over
    /// [`Mlp::backward_with`]).
    pub fn backward(&mut self, trace: &MlpTrace, grad_out: &Matrix) -> Matrix {
        let mut grads = MlpGrads::zeroed_for(self);
        let mut ws = Workspace::new();
        let mut dx = Matrix::default();
        self.backward_with(trace, grad_out, &mut grads, &mut ws, &mut dx);
        self.accumulate_grads(&grads);
        dx
    }

    /// Adds an external gradient sink into the params' own gradients (the
    /// ordered-reduction step of data-parallel training).
    pub fn accumulate_grads(&mut self, grads: &MlpGrads) {
        for (p, g) in self.weights.iter_mut().zip(&grads.weights) {
            p.accumulate(g);
        }
        for (p, g) in self.biases.iter_mut().zip(&grads.biases) {
            p.accumulate(g);
        }
    }

    /// Mutable references to every parameter, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.weights.iter_mut().chain(self.biases.iter_mut()).collect()
    }

    /// Visits every parameter (same order as [`Mlp::params_mut`]) without
    /// collecting references into a `Vec` — the allocation-free path for
    /// `Adam::begin_step` + `Adam::update` loops.
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(&mut Param)) {
        for p in self.weights.iter_mut() {
            f(p);
        }
        for p in self.biases.iter_mut() {
            f(p);
        }
    }

    /// Debug-build poison check for layer `i`'s weights and biases. Panics
    /// naming the first poisoned layer, so corruption is caught where it
    /// lives rather than at the final loss. Free in release builds; never
    /// allocates unless it fails.
    #[inline]
    fn debug_check_layer(&self, i: usize) {
        if cfg!(debug_assertions) {
            for &v in self.weights[i].value.data() {
                assert!(v.is_finite(), "poisoned weight in layer {i}: {v} is not finite");
            }
            for &v in self.biases[i].value.data() {
                assert!(v.is_finite(), "poisoned bias in layer {i}: {v} is not finite");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn finite_diff_check(widths: &[usize], seed: u64) {
        let mut rng = DetRng::new(seed);
        let mlp = Mlp::new(widths, 0.0, &mut rng);
        let x = Matrix::from_fn(3, widths[0], |r, c| 0.3 * (r as f64) - 0.2 * (c as f64) + 0.1);

        // Loss = sum of outputs; analytic input gradient via backward.
        let (y, trace) = mlp.forward(&x, &mut Mode::Eval);
        let ones = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let mut mlp_mut = mlp.clone();
        let gx = mlp_mut.backward(&trace, &ones);

        // Numeric gradient.
        let eps = 1e-6;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let (yp, _) = mlp.forward(&xp, &mut Mode::Eval);
                let (ym, _) = mlp.forward(&xm, &mut Mode::Eval);
                let num =
                    (yp.data().iter().sum::<f64>() - ym.data().iter().sum::<f64>()) / (2.0 * eps);
                let ana = gx.get(r, c);
                assert!(
                    (num - ana).abs() < 1e-5 * (1.0 + num.abs()),
                    "input grad mismatch at ({r},{c}): {num} vs {ana}"
                );
            }
        }

        // Parameter gradient check on the first weight.
        let mut mlp2 = mlp.clone();
        let (_, trace2) = mlp2.forward(&x, &mut Mode::Eval);
        mlp2.backward(&trace2, &ones);
        let ana_w = mlp2.weights[0].grad.clone();
        for (r, c) in [(0, 0), (widths[0] - 1, 0)] {
            let orig = mlp.weights[0].value.get(r, c);
            let mut mp = mlp.clone();
            mp.weights[0].value.set(r, c, orig + eps);
            let mut mm = mlp.clone();
            mm.weights[0].value.set(r, c, orig - eps);
            let (yp, _) = mp.forward(&x, &mut Mode::Eval);
            let (ym, _) = mm.forward(&x, &mut Mode::Eval);
            let num = (yp.data().iter().sum::<f64>() - ym.data().iter().sum::<f64>()) / (2.0 * eps);
            let ana = ana_w.get(r, c);
            assert!(
                (num - ana).abs() < 1e-5 * (1.0 + num.abs()),
                "weight grad mismatch at ({r},{c}): {num} vs {ana}"
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(&[2, 20, 20, 1], 5);
        finite_diff_check(&[4, 8, 3], 6);
    }

    #[test]
    fn reused_trace_and_workspace_do_not_allocate_in_steady_state() {
        let mut rng = DetRng::new(42);
        let mlp = Mlp::new(&[4, 16, 16, 1], 0.25, &mut rng);
        let x = Matrix::from_fn(8, 4, |r, c| 0.1 * (r as f64) - 0.05 * (c as f64));
        let mut drop_rng = DetRng::new(1);
        let mut trace = MlpTrace::default();
        let mut out = Matrix::default();
        let mut grads = MlpGrads::zeroed_for(&mlp);
        let mut ws = Workspace::new();
        let mut dx = Matrix::default();
        let dy = Matrix::from_fn(8, 1, |_, _| 1.0);
        // Warm up, then confirm the workspace serves takes from its pool.
        for _ in 0..3 {
            mlp.forward_into(&x, &mut Mode::Train(&mut drop_rng), &mut trace, &mut out);
            grads.prepare(&mlp);
            mlp.backward_with(&trace, &dy, &mut grads, &mut ws, &mut dx);
        }
        let (_, allocated_warm) = ws.stats();
        for _ in 0..5 {
            mlp.forward_into(&x, &mut Mode::Train(&mut drop_rng), &mut trace, &mut out);
            grads.prepare(&mlp);
            mlp.backward_with(&trace, &dy, &mut grads, &mut ws, &mut dx);
        }
        let (reused, allocated) = ws.stats();
        assert_eq!(allocated, allocated_warm, "steady state never allocates scratch");
        assert!(reused >= 5 * 3, "takes are served from the pool ({reused} reuses)");
    }

    #[test]
    fn backward_with_matches_backward() {
        let mut rng = DetRng::new(13);
        let mut mlp = Mlp::new(&[3, 12, 12, 2], 0.0, &mut rng);
        let x = Matrix::from_fn(5, 3, |r, c| (r as f64 - 2.0) * 0.3 + c as f64 * 0.1);
        let dy = Matrix::from_fn(5, 2, |r, c| if (r + c) % 2 == 0 { 1.0 } else { -0.5 });
        let (_, trace) = mlp.forward(&x, &mut Mode::Eval);
        let dx_old = mlp.backward(&trace, &dy);
        let expected: Vec<Matrix> = mlp.weights.iter().map(|p| p.grad.clone()).collect();
        let mut grads = MlpGrads::zeroed_for(&mlp);
        let mut ws = Workspace::new();
        let mut dx_new = Matrix::default();
        mlp.backward_with(&trace, &dy, &mut grads, &mut ws, &mut dx_new);
        assert_eq!(dx_old.data(), dx_new.data(), "input gradients bit-identical");
        for (e, g) in expected.iter().zip(&grads.weights) {
            assert_eq!(e.data(), g.data(), "weight gradients bit-identical");
        }
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = DetRng::new(7);
        let mut mlp = Mlp::new(&[2, 16, 1], 0.0, &mut rng);
        let mut opt = Adam::new(0.01);
        // y = 3a - 2b + 1
        let xs = Matrix::from_fn(64, 2, |r, c| {
            let t = r as f64 / 64.0;
            if c == 0 {
                t
            } else {
                1.0 - 2.0 * t
            }
        });
        let ys = Matrix::from_fn(64, 1, |r, _| 3.0 * xs.get(r, 0) - 2.0 * xs.get(r, 1) + 1.0);
        let mut last_loss = f64::INFINITY;
        for _ in 0..800 {
            let (pred, trace) = mlp.forward(&xs, &mut Mode::Eval);
            let diff = pred.add(&ys.scale(-1.0));
            last_loss = diff.norm().powi(2) / 64.0;
            mlp.backward(&trace, &diff.scale(2.0 / 64.0));
            opt.step(&mut mlp.params_mut());
        }
        assert!(last_loss < 1e-3, "loss {last_loss}");
    }

    #[test]
    fn dropout_zeroes_activations_in_training_only() {
        let mut rng = DetRng::new(8);
        let mlp = Mlp::new(&[4, 64, 1], 0.5, &mut rng);
        let x = Matrix::from_fn(1, 4, |_, c| c as f64 + 1.0);
        let mut drop_rng = DetRng::new(9);
        let (y1, _) = mlp.forward(&x, &mut Mode::Train(&mut drop_rng));
        let (y2, _) = mlp.forward(&x, &mut Mode::Eval);
        let (y3, _) = mlp.forward(&x, &mut Mode::Eval);
        assert_eq!(y2.data(), y3.data(), "eval is deterministic");
        assert_ne!(y1.data(), y2.data(), "dropout perturbs training output");
    }

    #[test]
    fn shapes_and_param_counts() {
        let mut rng = DetRng::new(10);
        let mlp = Mlp::new(&[3, 20, 20, 1], 0.25, &mut rng);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(mlp.num_params(), 3 * 20 + 20 + 20 * 20 + 20 + 20 + 1);
        let x = Matrix::zeros(5, 3);
        let (y, _) = mlp.forward(&x, &mut Mode::Eval);
        assert_eq!((y.rows(), y.cols()), (5, 1));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn input_width_is_checked() {
        let mut rng = DetRng::new(11);
        let mlp = Mlp::new(&[3, 4, 1], 0.0, &mut rng);
        let x = Matrix::zeros(1, 5);
        let _ = mlp.forward(&x, &mut Mode::Eval);
    }
}
