//! Multi-layer perceptrons with trace-based backpropagation.
//!
//! An [`Mlp`] owns its parameters but keeps no per-call activation state:
//! `forward` returns an [`MlpTrace`] capturing everything `backward` needs.
//! This lets the GNN apply the same network to every node of a graph (message
//! passing shares φ/γ across nodes) and back-propagate each application,
//! accumulating parameter gradients.

use graf_sim::rng::DetRng;

use crate::matrix::Matrix;
use crate::param::Param;

/// Forward-pass mode.
pub enum Mode<'a> {
    /// Training: dropout active, masks drawn from the RNG.
    Train(&'a mut DetRng),
    /// Inference: dropout disabled (inverted-dropout needs no rescale).
    Eval,
}

/// One hidden/output layer's cached forward state.
#[derive(Debug)]
struct LayerTrace {
    /// Layer input.
    input: Matrix,
    /// Pre-activation output (after affine, before ReLU).
    pre: Matrix,
    /// Dropout keep-mask scaled by 1/keep (inverted dropout), if applied.
    dropout: Option<Matrix>,
}

/// Captured forward state of one MLP application.
#[derive(Debug)]
pub struct MlpTrace {
    layers: Vec<LayerTrace>,
}

/// A fully connected network: affine layers with ReLU on all but the last,
/// and optional dropout after each ReLU (the paper applies dropout "to every
/// layer except for the last", §4).
#[derive(Clone, Debug)]
pub struct Mlp {
    weights: Vec<Param>,
    biases: Vec<Param>,
    dropout_p: f64,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `[4, 20, 20, 1]`.
    /// Weights use He initialization from `rng`.
    pub fn new(widths: &[usize], dropout_p: f64, rng: &mut DetRng) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        assert!((0.0..1.0).contains(&dropout_p), "dropout in [0,1)");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in widths.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let std = (2.0 / fan_in as f64).sqrt();
            let weight = Matrix::from_fn(fan_in, fan_out, |_, _| rng.std_normal() * std);
            weights.push(Param::new(weight));
            biases.push(Param::new(Matrix::zeros(1, fan_out)));
        }
        Self { weights, biases, dropout_p }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weights[0].value.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weights.last().expect("non-empty").value.cols()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Param::len).sum::<usize>()
            + self.biases.iter().map(Param::len).sum::<usize>()
    }

    /// Applies the network to a batch `x` (`B × input_dim`).
    ///
    /// Returns the output (`B × output_dim`) and the trace for `backward`.
    pub fn forward(&self, x: &Matrix, mode: &mut Mode<'_>) -> (Matrix, MlpTrace) {
        assert_eq!(x.cols(), self.input_dim(), "input width mismatch");
        let mut layers = Vec::with_capacity(self.weights.len());
        let mut cur = x.clone();
        let last = self.weights.len() - 1;
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let pre = cur.matmul(&w.value).add_row_broadcast(&b.value);
            let mut out = if i < last { pre.map(|v| v.max(0.0)) } else { pre.clone() };
            let dropout = if i < last && self.dropout_p > 0.0 {
                match mode {
                    Mode::Train(rng) => {
                        let keep = 1.0 - self.dropout_p;
                        let mask = Matrix::from_fn(out.rows(), out.cols(), |_, _| {
                            if rng.unit() < keep {
                                1.0 / keep
                            } else {
                                0.0
                            }
                        });
                        out = out.hadamard(&mask);
                        Some(mask)
                    }
                    Mode::Eval => None,
                }
            } else {
                None
            };
            layers.push(LayerTrace { input: cur, pre, dropout });
            cur = out;
        }
        (cur, MlpTrace { layers })
    }

    /// Back-propagates `grad_out` (`B × output_dim`) through the traced
    /// application. Parameter gradients accumulate into the params; the
    /// gradient with respect to the input batch is returned.
    pub fn backward(&mut self, trace: &MlpTrace, grad_out: &Matrix) -> Matrix {
        assert_eq!(trace.layers.len(), self.weights.len(), "trace/network mismatch");
        let last = self.weights.len() - 1;
        let mut grad = grad_out.clone();
        for i in (0..self.weights.len()).rev() {
            let lt = &trace.layers[i];
            if i < last {
                if let Some(mask) = &lt.dropout {
                    grad = grad.hadamard(mask);
                }
                // ReLU gate on the pre-activation.
                let gate = lt.pre.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                grad = grad.hadamard(&gate);
            }
            let gw = lt.input.transpose().matmul(&grad);
            let gb = grad.sum_rows();
            self.weights[i].accumulate(&gw);
            self.biases[i].accumulate(&gb);
            grad = grad.matmul(&self.weights[i].value.transpose());
        }
        grad
    }

    /// Mutable references to every parameter, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.weights.iter_mut().chain(self.biases.iter_mut()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn finite_diff_check(widths: &[usize], seed: u64) {
        let mut rng = DetRng::new(seed);
        let mlp = Mlp::new(widths, 0.0, &mut rng);
        let x = Matrix::from_fn(3, widths[0], |r, c| 0.3 * (r as f64) - 0.2 * (c as f64) + 0.1);

        // Loss = sum of outputs; analytic input gradient via backward.
        let (y, trace) = mlp.forward(&x, &mut Mode::Eval);
        let ones = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let mut mlp_mut = mlp.clone();
        let gx = mlp_mut.backward(&trace, &ones);

        // Numeric gradient.
        let eps = 1e-6;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let (yp, _) = mlp.forward(&xp, &mut Mode::Eval);
                let (ym, _) = mlp.forward(&xm, &mut Mode::Eval);
                let num =
                    (yp.data().iter().sum::<f64>() - ym.data().iter().sum::<f64>()) / (2.0 * eps);
                let ana = gx.get(r, c);
                assert!(
                    (num - ana).abs() < 1e-5 * (1.0 + num.abs()),
                    "input grad mismatch at ({r},{c}): {num} vs {ana}"
                );
            }
        }

        // Parameter gradient check on the first weight.
        let mut mlp2 = mlp.clone();
        let (_, trace2) = mlp2.forward(&x, &mut Mode::Eval);
        mlp2.backward(&trace2, &ones);
        let ana_w = mlp2.weights[0].grad.clone();
        for (r, c) in [(0, 0), (widths[0] - 1, 0)] {
            let orig = mlp.weights[0].value.get(r, c);
            let mut mp = mlp.clone();
            mp.weights[0].value.set(r, c, orig + eps);
            let mut mm = mlp.clone();
            mm.weights[0].value.set(r, c, orig - eps);
            let (yp, _) = mp.forward(&x, &mut Mode::Eval);
            let (ym, _) = mm.forward(&x, &mut Mode::Eval);
            let num = (yp.data().iter().sum::<f64>() - ym.data().iter().sum::<f64>()) / (2.0 * eps);
            let ana = ana_w.get(r, c);
            assert!(
                (num - ana).abs() < 1e-5 * (1.0 + num.abs()),
                "weight grad mismatch at ({r},{c}): {num} vs {ana}"
            );
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(&[2, 20, 20, 1], 5);
        finite_diff_check(&[4, 8, 3], 6);
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = DetRng::new(7);
        let mut mlp = Mlp::new(&[2, 16, 1], 0.0, &mut rng);
        let mut opt = Adam::new(0.01);
        // y = 3a - 2b + 1
        let xs = Matrix::from_fn(64, 2, |r, c| {
            let t = r as f64 / 64.0;
            if c == 0 {
                t
            } else {
                1.0 - 2.0 * t
            }
        });
        let ys = Matrix::from_fn(64, 1, |r, _| 3.0 * xs.get(r, 0) - 2.0 * xs.get(r, 1) + 1.0);
        let mut last_loss = f64::INFINITY;
        for _ in 0..800 {
            let (pred, trace) = mlp.forward(&xs, &mut Mode::Eval);
            let diff = pred.add(&ys.scale(-1.0));
            last_loss = diff.norm().powi(2) / 64.0;
            mlp.backward(&trace, &diff.scale(2.0 / 64.0));
            opt.step(&mut mlp.params_mut());
        }
        assert!(last_loss < 1e-3, "loss {last_loss}");
    }

    #[test]
    fn dropout_zeroes_activations_in_training_only() {
        let mut rng = DetRng::new(8);
        let mlp = Mlp::new(&[4, 64, 1], 0.5, &mut rng);
        let x = Matrix::from_fn(1, 4, |_, c| c as f64 + 1.0);
        let mut drop_rng = DetRng::new(9);
        let (y1, _) = mlp.forward(&x, &mut Mode::Train(&mut drop_rng));
        let (y2, _) = mlp.forward(&x, &mut Mode::Eval);
        let (y3, _) = mlp.forward(&x, &mut Mode::Eval);
        assert_eq!(y2.data(), y3.data(), "eval is deterministic");
        assert_ne!(y1.data(), y2.data(), "dropout perturbs training output");
    }

    #[test]
    fn shapes_and_param_counts() {
        let mut rng = DetRng::new(10);
        let mlp = Mlp::new(&[3, 20, 20, 1], 0.25, &mut rng);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.num_layers(), 3);
        assert_eq!(mlp.num_params(), 3 * 20 + 20 + 20 * 20 + 20 + 20 + 1);
        let x = Matrix::zeros(5, 3);
        let (y, _) = mlp.forward(&x, &mut Mode::Eval);
        assert_eq!((y.rows(), y.cols()), (5, 1));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn input_width_is_checked() {
        let mut rng = DetRng::new(11);
        let mlp = Mlp::new(&[3, 4, 1], 0.0, &mut rng);
        let x = Matrix::zeros(1, 5);
        let _ = mlp.forward(&x, &mut Mode::Eval);
    }
}
