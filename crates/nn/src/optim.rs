//! The Adam optimizer (Kingma & Ba, 2014), as used by the paper for both
//! model training and the configuration solver (§3.5, reference \[45\]).

use crate::param::Param;

/// Adam with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate (paper: 2 × 10⁻⁴ for training, Table 1).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    t: u64,
    // Bias corrections for the step in progress, cached by `begin_step` so
    // `update` is a pure per-tensor pass (no per-call `powi`).
    bc1: f64,
    bc2: f64,
}

impl Adam {
    /// Creates Adam with the standard betas.
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, bc1: 1.0, bc2: 1.0 }
    }

    /// Opens optimizer step `t + 1`: advances time and caches the bias
    /// corrections. Follow with one [`Adam::update`] per parameter tensor.
    ///
    /// The split exists so callers holding parameters spread across several
    /// networks can step them without first collecting `&mut Param`s into a
    /// temporary `Vec` — the allocation-free training path.
    pub fn begin_step(&mut self) {
        self.t += 1;
        self.bc1 = 1.0 - self.beta1.powi(self.t as i32);
        self.bc2 = 1.0 - self.beta2.powi(self.t as i32);
    }

    /// Steps one parameter against its accumulated gradient, then zeroes the
    /// gradient. Must be preceded by [`Adam::begin_step`] for this step.
    ///
    /// One fused pass over the tensor — moments, bias-corrected update, and
    /// gradient reset happen in place, with no temporaries.
    pub fn update(&mut self, p: &mut Param) {
        debug_assert!(self.t > 0, "Adam::begin_step must run before update");
        let it = p
            .value
            .data_mut()
            .iter_mut()
            .zip(p.grad.data_mut())
            .zip(p.m.data_mut().iter_mut().zip(p.v.data_mut()));
        for ((value, grad), (m, v)) in it {
            let g = *grad;
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * (g * g);
            let mhat = *m / self.bc1;
            let vhat = *v / self.bc2;
            *value += -self.lr * mhat / (vhat.sqrt() + self.eps);
            *grad = 0.0;
        }
    }

    /// Steps every parameter against its accumulated gradient, then zeroes
    /// the gradients ([`Adam::begin_step`] + [`Adam::update`] fused).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.begin_step();
        for p in params.iter_mut() {
            self.update(p);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Minimizes f(x) = (x - 3)² from x = 0; Adam must converge to 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            opt.step(&mut [&mut p]);
        }
        let x = p.value.get(0, 0);
        assert!((x - 3.0).abs() < 1e-3, "x={x}");
        assert_eq!(opt.steps(), 500);
    }

    /// Rosenbrock-ish 2-parameter test: both coordinates move.
    #[test]
    fn adam_handles_multiple_params() {
        let mut a = Param::new(Matrix::from_vec(1, 1, vec![5.0]));
        let mut b = Param::new(Matrix::from_vec(1, 1, vec![-5.0]));
        let mut opt = Adam::new(0.2);
        for _ in 0..800 {
            let (x, y) = (a.value.get(0, 0), b.value.get(0, 0));
            a.grad.set(0, 0, 2.0 * x);
            b.grad.set(0, 0, 2.0 * (y - 1.0));
            opt.step(&mut [&mut a, &mut b]);
        }
        assert!(a.value.get(0, 0).abs() < 1e-2);
        assert!((b.value.get(0, 0) - 1.0).abs() < 1e-2);
    }

    /// Bias correction makes the very first step ≈ lr in the gradient
    /// direction, independent of gradient magnitude.
    #[test]
    fn first_step_is_learning_rate_sized() {
        for &g in &[1e-4, 1.0, 1e4] {
            let mut p = Param::new(Matrix::zeros(1, 1));
            p.grad.set(0, 0, g);
            Adam::new(0.05).step(&mut [&mut p]);
            let moved = -p.value.get(0, 0);
            assert!((moved - 0.05).abs() < 1e-3, "grad {g}: first Adam step ≈ lr, moved {moved}");
        }
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.set(0, 0, 1.0);
        Adam::new(0.01).step(&mut [&mut p]);
        assert_eq!(p.grad.get(0, 0), 0.0);
    }
}
