//! Reusable scratch-buffer pool for the allocation-free kernels.

use crate::matrix::Matrix;

/// A LIFO pool of [`Matrix`] scratch buffers.
///
/// The forward/backward hot loops `take` a buffer (reshaped in place to the
/// requested dimensions, zero-filled) and `give` it back when done; once the
/// pool has warmed up over the first iteration, steady-state takes reuse
/// existing allocations and the heap is never touched. The `(reused,
/// allocated)` counters feed the graf-obs allocation-avoidance telemetry.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Matrix>,
    reused: u64,
    allocated: u64,
}

impl Workspace {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed `rows × cols` buffer, reusing a pooled allocation
    /// when one is available and large enough.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        match self.pool.pop() {
            Some(mut m) => {
                if m.capacity() >= rows * cols {
                    self.reused += 1;
                } else {
                    self.allocated += 1;
                }
                m.reshape_zeroed(rows, cols);
                m
            }
            None => {
                self.allocated += 1;
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn give(&mut self, m: Matrix) {
        self.pool.push(m);
    }

    /// `(reused, allocated)` take counts since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.reused, self.allocated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_takes_reuse_allocations() {
        let mut ws = Workspace::new();
        let a = ws.take(8, 8);
        ws.give(a);
        let b = ws.take(4, 4); // smaller: fits the pooled capacity
        assert_eq!((b.rows(), b.cols()), (4, 4));
        assert!(b.data().iter().all(|&v| v == 0.0));
        assert_eq!(ws.stats(), (1, 1), "one cold alloc, one warm reuse");
    }

    #[test]
    fn growing_takes_count_as_allocations() {
        let mut ws = Workspace::new();
        let a = ws.take(2, 2);
        ws.give(a);
        let _big = ws.take(100, 100);
        assert_eq!(ws.stats(), (0, 2));
    }
}
